//! # lattice-bench
//!
//! The paper-reproduction harness: one binary per table/figure of the
//! paper's evaluation (see EXPERIMENTS.md for the index), plus criterion
//! micro-benchmarks of the underlying kernels.
//!
//! Every binary prints a [`Table`] in markdown (default) or CSV
//! (`--csv`), with the paper's reported values alongside ours where the
//! paper gives numbers.
//!
//! | binary | experiment |
//! |--------|------------|
//! | `fig_wsa_design_space`       | E1 — §6.1 design curves, WSA corner |
//! | `fig_spa_design_space`       | E2 — §6.2 design curves, SPA corner |
//! | `tab_architecture_comparison`| E3 — §6.3 optimized comparison |
//! | `tab_wsae_vs_spa`            | E4 — §6.3 WSA-E vs SPA scaling |
//! | `tab_span_bounds`            | E5 — Theorem 1 span bounds |
//! | `fig_pebbling_bound`         | E6 — §7 `R = O(B·S^{1/d})` |
//! | `tab_prototype`              | E7 — §8 prototype derating |
//! | `tab_model_vs_sim`           | E8 — analytical vs measured |
//! | `tab_farm_scaling`           | E9 — board-farm scaling vs links-per-board model |
//! | `tab_tech_scaling`           | ablation — §8 feature-size scaling |

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt::Display;

/// Output format for experiment tables.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Format {
    /// GitHub-flavored markdown (default).
    Markdown,
    /// Comma-separated values.
    Csv,
}

/// Parses the standard experiment-binary CLI: `[--csv]`.
pub fn format_from_args() -> Format {
    if std::env::args().any(|a| a == "--csv") {
        Format::Csv
    } else {
        Format::Markdown
    }
}

/// A simple experiment table.
#[derive(Debug, Clone)]
pub struct Table {
    title: String,
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
    notes: Vec<String>,
}

impl Table {
    /// Creates a table with a title and column headers.
    pub fn new(title: impl Into<String>, headers: &[&str]) -> Self {
        Table {
            title: title.into(),
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
            notes: Vec::new(),
        }
    }

    /// Appends a row (must match the header count).
    pub fn row(&mut self, cells: &[&dyn Display]) -> &mut Self {
        assert_eq!(cells.len(), self.headers.len(), "row width mismatch");
        self.rows.push(cells.iter().map(|c| c.to_string()).collect());
        self
    }

    /// Appends a pre-formatted row of strings.
    pub fn row_strings(&mut self, cells: Vec<String>) -> &mut Self {
        assert_eq!(cells.len(), self.headers.len(), "row width mismatch");
        self.rows.push(cells);
        self
    }

    /// Adds a footnote line.
    pub fn note(&mut self, note: impl Into<String>) -> &mut Self {
        self.notes.push(note.into());
        self
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True when the table has no rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders in the requested format.
    pub fn render(&self, fmt: Format) -> String {
        match fmt {
            Format::Markdown => self.markdown(),
            Format::Csv => self.csv(),
        }
    }

    /// Renders as markdown with aligned columns.
    pub fn markdown(&self) -> String {
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (w, cell) in widths.iter_mut().zip(row) {
                *w = (*w).max(cell.len());
            }
        }
        let mut out = format!("## {}\n\n", self.title);
        let fmt_row = |cells: &[String], widths: &[usize]| {
            let mut line = String::from("|");
            for (c, w) in cells.iter().zip(widths) {
                line.push_str(&format!(" {c:<w$} |"));
            }
            line.push('\n');
            line
        };
        out.push_str(&fmt_row(&self.headers, &widths));
        out.push('|');
        for w in &widths {
            out.push_str(&format!("{:-<1$}|", "", w + 2));
        }
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row, &widths));
        }
        for n in &self.notes {
            out.push_str(&format!("\n*{n}*\n"));
        }
        out
    }

    /// Renders as CSV (title and notes as `#` comments).
    pub fn csv(&self) -> String {
        let esc = |s: &str| {
            if s.contains(',') || s.contains('"') {
                format!("\"{}\"", s.replace('"', "\"\""))
            } else {
                s.to_string()
            }
        };
        let mut out = format!("# {}\n", self.title);
        out.push_str(&self.headers.iter().map(|h| esc(h)).collect::<Vec<_>>().join(","));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&row.iter().map(|c| esc(c)).collect::<Vec<_>>().join(","));
            out.push('\n');
        }
        for n in &self.notes {
            out.push_str(&format!("# {n}\n"));
        }
        out
    }

    /// Prints to stdout in the requested format.
    pub fn print(&self, fmt: Format) {
        print!("{}", self.render(fmt));
        println!();
    }
}

/// Formats a float with `digits` significant decimals, trimming noise.
pub fn fnum(v: f64, digits: usize) -> String {
    format!("{v:.digits$}")
}

/// Fits the slope of `log(y)` against `log(x)` by least squares — used
/// by the pebbling experiment to recover the `1/d` exponent.
pub fn loglog_slope(points: &[(f64, f64)]) -> f64 {
    assert!(points.len() >= 2);
    let logs: Vec<(f64, f64)> = points.iter().map(|&(x, y)| (x.ln(), y.ln())).collect();
    let n = logs.len() as f64;
    let sx: f64 = logs.iter().map(|p| p.0).sum();
    let sy: f64 = logs.iter().map(|p| p.1).sum();
    let sxx: f64 = logs.iter().map(|p| p.0 * p.0).sum();
    let sxy: f64 = logs.iter().map(|p| p.0 * p.1).sum();
    (n * sxy - sx * sy) / (n * sxx - sx * sx)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn markdown_rendering() {
        let mut t = Table::new("Demo", &["a", "bb"]);
        t.row(&[&1, &"x"]);
        t.row(&[&22, &"yy"]);
        t.note("a note");
        let md = t.markdown();
        assert!(md.contains("## Demo"));
        assert!(md.contains("| a  | bb |"));
        assert!(md.contains("| 22 | yy |"));
        assert!(md.contains("*a note*"));
        assert_eq!(t.len(), 2);
        assert!(!t.is_empty());
    }

    #[test]
    fn csv_rendering_escapes() {
        let mut t = Table::new("T", &["x", "y"]);
        t.row_strings(vec!["a,b".into(), "q\"q".into()]);
        let csv = t.csv();
        assert!(csv.contains("\"a,b\""));
        assert!(csv.contains("\"q\"\"q\""));
        assert!(csv.starts_with("# T\n"));
    }

    #[test]
    #[should_panic(expected = "row width mismatch")]
    fn row_width_checked() {
        Table::new("T", &["x", "y"]).row(&[&1]);
    }

    #[test]
    fn loglog_slope_recovers_exponents() {
        let half: Vec<(f64, f64)> = (1..=10).map(|i| (i as f64, (i as f64).sqrt() * 3.0)).collect();
        assert!((loglog_slope(&half) - 0.5).abs() < 1e-9);
        let cube: Vec<(f64, f64)> =
            (1..=10).map(|i| (i as f64, (i as f64).powf(1.0 / 3.0))).collect();
        assert!((loglog_slope(&cube) - 1.0 / 3.0).abs() < 1e-9);
    }

    #[test]
    fn fnum_formats() {
        assert_eq!(fnum(1.23456, 2), "1.23");
        assert_eq!(fnum(2.0, 0), "2");
    }

    #[test]
    fn render_dispatch() {
        let mut t = Table::new("T", &["x"]);
        t.row(&[&5]);
        assert_eq!(t.render(Format::Csv), t.csv());
        assert_eq!(t.render(Format::Markdown), t.markdown());
    }
}
