//! Theorem 1 as a universal property: the span bound holds for *every*
//! bijection, not just the named embeddings — proptest throws random
//! permutations at it.

use lattice_embed::rect::{rect_span, RectEmbedding};
use lattice_embed::span::verify_bijection;
use lattice_embed::{hex_window_span, span, window_span, Embedding};
use proptest::prelude::*;

/// An arbitrary bijection of the n×n array onto 0..n², from a shuffled
/// position table.
struct RandomEmbedding {
    n: usize,
    pos: Vec<usize>,
}

impl Embedding for RandomEmbedding {
    fn n(&self) -> usize {
        self.n
    }
    fn position(&self, row: usize, col: usize) -> usize {
        self.pos[row * self.n + col]
    }
    fn name(&self) -> &'static str {
        "random"
    }
}

struct RandomRect {
    rows: usize,
    cols: usize,
    pos: Vec<usize>,
}

impl RectEmbedding for RandomRect {
    fn rows(&self) -> usize {
        self.rows
    }
    fn cols(&self) -> usize {
        self.cols
    }
    fn position(&self, row: usize, col: usize) -> usize {
        self.pos[row * self.cols + col]
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Theorem 1: span ≥ n for every bijection of the n×n array.
    #[test]
    fn any_bijection_has_span_at_least_n(
        n in 2usize..10,
        seed in any::<u64>(),
    ) {
        let pos = shuffled(n * n, seed);
        let e = RandomEmbedding { n, pos };
        prop_assert!(verify_bijection(&e));
        prop_assert!(span(&e) >= n, "span {} < n {}", span(&e), n);
    }

    /// The window spans dominate the plain span for every bijection.
    #[test]
    fn window_spans_dominate_span(n in 2usize..9, seed in any::<u64>()) {
        let e = RandomEmbedding { n, pos: shuffled(n * n, seed) };
        prop_assert!(window_span(&e) >= span(&e));
        prop_assert!(hex_window_span(&e) <= window_span(&e));
    }

    /// Rectangular Theorem 1: span ≥ min(m, n) for every bijection of
    /// the m×n array.
    #[test]
    fn any_rect_bijection_has_span_at_least_short_side(
        m in 2usize..7,
        n in 2usize..7,
        seed in any::<u64>(),
    ) {
        let e = RandomRect { rows: m, cols: n, pos: shuffled(m * n, seed) };
        prop_assert!(rect_span(&e) >= m.min(n));
    }

    /// Random bijections are far from optimal: expected span is Θ(n²),
    /// so they exceed row-major's n for any n ≥ 4 with overwhelming
    /// probability — quantifying "no clever shuffle helps a pipeline".
    #[test]
    fn random_bijections_are_much_worse_than_raster(
        n in 4usize..10,
        seed in any::<u64>(),
    ) {
        let e = RandomEmbedding { n, pos: shuffled(n * n, seed) };
        prop_assert!(span(&e) > n, "a random shuffle matching row-major would be astonishing");
    }
}

/// Deterministic Fisher–Yates from a seed (keeps the tests replayable).
fn shuffled(len: usize, seed: u64) -> Vec<usize> {
    let mut v: Vec<usize> = (0..len).collect();
    let mut state = seed | 1;
    let mut next = || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        state
    };
    for i in (1..len).rev() {
        let j = (next() % (i as u64 + 1)) as usize;
        v.swap(i, j);
    }
    v
}
