//! Rectangular and prism arrays.
//!
//! §3 notes that a fixed-span chip "will only work for a single problem
//! size … (one can actually process a prism array, finite in all but one
//! dimension)": a serial pipeline sized for width `n` handles any
//! `m × n` array with `m` unbounded, because the span of the row-major
//! embedding depends only on the *width*. This module generalizes the
//! square-array span theory to `m × n` rectangles:
//!
//! * row-major span of an `m × n` array = `n` (the width), independent
//!   of `m` — the prism property;
//! * the *minimum* span over all embeddings is `min(m, n)` (lay the
//!   array out along its short side), verified exhaustively for small
//!   cases by the same branch-and-bound as Theorem 1.

/// A bijective embedding of an `m × n` rectangle into `0..m·n`.
pub trait RectEmbedding {
    /// Rows.
    fn rows(&self) -> usize;
    /// Columns.
    fn cols(&self) -> usize;
    /// Stream position of `(row, col)`.
    fn position(&self, row: usize, col: usize) -> usize;
}

/// Row-major on a rectangle: `pos = row·n + col`.
#[derive(Debug, Clone, Copy)]
pub struct RectRowMajor {
    rows: usize,
    cols: usize,
}

impl RectRowMajor {
    /// Creates the embedding.
    pub fn new(rows: usize, cols: usize) -> Self {
        RectRowMajor { rows, cols }
    }
}

impl RectEmbedding for RectRowMajor {
    fn rows(&self) -> usize {
        self.rows
    }
    fn cols(&self) -> usize {
        self.cols
    }
    fn position(&self, row: usize, col: usize) -> usize {
        row * self.cols + col
    }
}

/// Column-major: scanning along the *short* side when `rows < cols`
/// achieves the optimal rectangular span `min(m, n)`.
#[derive(Debug, Clone, Copy)]
pub struct RectColMajor {
    rows: usize,
    cols: usize,
}

impl RectColMajor {
    /// Creates the embedding.
    pub fn new(rows: usize, cols: usize) -> Self {
        RectColMajor { rows, cols }
    }
}

impl RectEmbedding for RectColMajor {
    fn rows(&self) -> usize {
        self.rows
    }
    fn cols(&self) -> usize {
        self.cols
    }
    fn position(&self, row: usize, col: usize) -> usize {
        col * self.rows + row
    }
}

/// Span of a rectangular embedding (max stream distance over
/// orthogonally adjacent cells).
pub fn rect_span(e: &(impl RectEmbedding + ?Sized)) -> usize {
    let (m, n) = (e.rows(), e.cols());
    let mut max = 0usize;
    for r in 0..m {
        for c in 0..n {
            let p = e.position(r, c);
            if r + 1 < m {
                max = max.max(p.abs_diff(e.position(r + 1, c)));
            }
            if c + 1 < n {
                max = max.max(p.abs_diff(e.position(r, c + 1)));
            }
        }
    }
    max
}

/// Exact decision: does an embedding of the `m × n` rectangle with span
/// ≤ `bound` exist? Same branch-and-bound as the square case.
pub fn rect_min_span_exists(m: usize, n: usize, bound: usize) -> bool {
    if m == 0 || n == 0 {
        return true;
    }
    if bound >= m.min(n) {
        return true; // short-side-major achieves min(m, n)
    }
    let cells = m * n;
    let mut pos = vec![usize::MAX; cells];
    fn neighbors(m: usize, n: usize, cell: usize) -> impl Iterator<Item = usize> {
        let (r, c) = (cell / n, cell % n);
        [
            (r > 0).then(|| cell - n),
            (r + 1 < m).then(|| cell + n),
            (c > 0).then(|| cell - 1),
            (c + 1 < n).then(|| cell + 1),
        ]
        .into_iter()
        .flatten()
    }
    fn place(m: usize, n: usize, bound: usize, pos: &mut [usize], t: usize) -> bool {
        let cells = m * n;
        if t == cells {
            return true;
        }
        for cell in 0..cells {
            let p = pos[cell];
            if p != usize::MAX
                && p + bound < t
                && neighbors(m, n, cell).any(|nb| pos[nb] == usize::MAX)
            {
                return false;
            }
        }
        for cell in 0..cells {
            if pos[cell] != usize::MAX {
                continue;
            }
            if !neighbors(m, n, cell).all(|nb| pos[nb] == usize::MAX || t - pos[nb] <= bound) {
                continue;
            }
            pos[cell] = t;
            if place(m, n, bound, pos, t + 1) {
                return true;
            }
            pos[cell] = usize::MAX;
        }
        false
    }
    place(m, n, bound, &mut pos, 0)
}

/// PE storage for streaming an *unbounded prism* of width `n` (rows
/// arrive forever): the Moore-window span `2n + 3` cells, independent of
/// the prism's length — §3's observation that a chip of fixed span
/// processes arbitrarily long strips.
pub fn prism_pe_cells(width: usize) -> usize {
    2 * width + 3
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn row_major_rect_span_is_width() {
        for (m, n) in [(3usize, 7usize), (100, 5), (2, 9)] {
            assert_eq!(rect_span(&RectRowMajor::new(m, n)), n, "{m}x{n}");
        }
    }

    #[test]
    fn col_major_rect_span_is_height() {
        for (m, n) in [(3usize, 7usize), (100, 5), (2, 9)] {
            assert_eq!(rect_span(&RectColMajor::new(m, n)), m, "{m}x{n}");
        }
    }

    #[test]
    fn prism_property() {
        // Width fixed, length unbounded: span constant in m.
        let w = 11;
        for m in [5usize, 50, 500] {
            assert_eq!(rect_span(&RectRowMajor::new(m, w)), w);
        }
        assert_eq!(prism_pe_cells(w), 25);
    }

    #[test]
    fn rect_minimum_span_is_short_side() {
        // Exhaustive: no embedding beats min(m, n) on small rectangles.
        for (m, n) in [(2usize, 3usize), (2, 4), (3, 4), (2, 5), (3, 5)] {
            let k = m.min(n);
            assert!(!rect_min_span_exists(m, n, k - 1), "{m}x{n}: span {} claimed", k - 1);
            assert!(rect_min_span_exists(m, n, k), "{m}x{n}");
        }
    }

    #[test]
    fn rect_search_degenerate_cases() {
        assert!(rect_min_span_exists(0, 5, 0));
        assert!(rect_min_span_exists(1, 9, 1)); // a path has span 1
        assert!(!rect_min_span_exists(1, 3, 0));
    }

    #[test]
    fn square_case_agrees_with_theorem_1() {
        assert!(!rect_min_span_exists(3, 3, 2));
        assert!(rect_min_span_exists(3, 3, 3));
    }
}
