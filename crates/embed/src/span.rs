//! Span and neighborhood-diameter measurement.
//!
//! Theorem 1 (§3): for numbers `1..n²` placed in a square array,
//! `span = max{ |a(i+1,j) − a(i,j)|, |a(i,j+1) − a(i,j)| } ≥ n`. In our
//! formulation, "the numbers in the array" are the stream positions of an
//! [`Embedding`], so the span is the largest stream distance between
//! orthogonally adjacent array cells — the graph bandwidth of the grid
//! under the embedding's inverse.
//!
//! A serial PE's local memory must cover the *window span* — the stream
//! distance between the first and last member of a site's neighborhood —
//! for every site it updates: `2n − 2` for the hex 2-neighborhood under
//! row-major (§3), `2n + 2` for the full 3×3 Moore window.

use crate::Embedding;

/// Checks that `e` is a bijection onto `0..n²`.
pub fn verify_bijection(e: &(impl Embedding + ?Sized)) -> bool {
    let n = e.n();
    let mut seen = vec![false; n * n];
    for r in 0..n {
        for c in 0..n {
            let p = e.position(r, c);
            if p >= n * n || seen[p] {
                return false;
            }
            seen[p] = true;
        }
    }
    true
}

/// The span of an embedding: maximum stream distance over orthogonally
/// adjacent array cells (Theorem 1's quantity).
///
/// ```
/// use lattice_embed::{span, Hilbert, RowMajor};
/// assert_eq!(span(&RowMajor::new(32)), 32);     // optimal (Theorem 1)
/// assert!(span(&Hilbert::new(32)) > 32);        // curves can't beat it
/// ```
pub fn span(e: &(impl Embedding + ?Sized)) -> usize {
    let n = e.n();
    let mut max = 0usize;
    for r in 0..n {
        for c in 0..n {
            let p = e.position(r, c);
            if r + 1 < n {
                max = max.max(p.abs_diff(e.position(r + 1, c)));
            }
            if c + 1 < n {
                max = max.max(p.abs_diff(e.position(r, c + 1)));
            }
        }
    }
    max
}

/// The window span of an embedding under the 3×3 Moore neighborhood:
/// the largest stream-position spread of any interior site's window.
/// A serial PE needs `window_span + 1` sites of local storage to update
/// sites in stream order.
pub fn window_span(e: &(impl Embedding + ?Sized)) -> usize {
    let n = e.n();
    let mut max = 0usize;
    for r in 0..n {
        for c in 0..n {
            let mut lo = usize::MAX;
            let mut hi = 0usize;
            for dr in -1isize..=1 {
                for dc in -1isize..=1 {
                    let (nr, nc) = (r as isize + dr, c as isize + dc);
                    if nr < 0 || nc < 0 || nr >= n as isize || nc >= n as isize {
                        continue;
                    }
                    let p = e.position(nr as usize, nc as usize);
                    lo = lo.min(p);
                    hi = hi.max(p);
                }
            }
            max = max.max(hi - lo);
        }
    }
    max
}

/// The window span under the hexagonal 2-neighborhood (paper figure 2):
/// a site, its six hex neighbors, and their hex neighbors two traversals
/// away along the row axis — the neighborhood the paper measures as
/// having diameter `2n − 2` under row-major.
pub fn hex_window_span(e: &(impl Embedding + ?Sized)) -> usize {
    let n = e.n();
    let mut max = 0usize;
    for r in 0..n {
        for c in 0..n {
            let mut lo = usize::MAX;
            let mut hi = 0usize;
            // Hex neighborhood on the brick embedding: row r−1..r+1 with
            // parity-dependent column extent; union over both parities is
            // contained in the 3×3 window minus two corners.
            let parity = r % 2;
            let deltas: [(isize, isize); 7] = if parity == 0 {
                [(0, 0), (0, 1), (0, -1), (-1, 0), (-1, -1), (1, 0), (1, -1)]
            } else {
                [(0, 0), (0, 1), (0, -1), (-1, 1), (-1, 0), (1, 1), (1, 0)]
            };
            for (dr, dc) in deltas {
                let (nr, nc) = (r as isize + dr, c as isize + dc);
                if nr < 0 || nc < 0 || nr >= n as isize || nc >= n as isize {
                    continue;
                }
                let p = e.position(nr as usize, nc as usize);
                lo = lo.min(p);
                hi = hi.max(p);
            }
            max = max.max(hi - lo);
        }
    }
    max
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::maps::{BlockRowMajor, Boustrophedon, Hilbert, Morton, RowMajor};

    #[test]
    fn row_major_span_is_exactly_n() {
        for n in [2usize, 3, 5, 8, 17, 32] {
            assert_eq!(span(&RowMajor::new(n)), n, "n={n}");
        }
    }

    #[test]
    fn row_major_moore_window_span_is_2n_plus_2() {
        for n in [4usize, 8, 16] {
            assert_eq!(window_span(&RowMajor::new(n)), 2 * n + 2);
        }
    }

    #[test]
    fn row_major_hex_window_span_is_two_rows_plus_o1() {
        // Measured spread of {a} ∪ N(a) under the brick-wall hex
        // embedding: 2n + 1 — consistent with (and within O(1) of) the
        // paper's "at least 2n − 2 positions apart" lower bound, and the
        // reason WSA stages budget two full rows of shift register.
        for n in [4usize, 8, 16, 33] {
            let s = hex_window_span(&RowMajor::new(n));
            assert_eq!(s, 2 * n + 1, "n={n}");
            assert!(s >= 2 * n - 2);
        }
    }

    #[test]
    fn snake_span_is_worse_than_row_major() {
        for n in [4usize, 8, 16] {
            let s = span(&Boustrophedon::new(n));
            assert_eq!(s, 2 * n - 1, "n={n}");
            assert!(s > span(&RowMajor::new(n)));
        }
    }

    #[test]
    fn block_span_grows_with_block_side() {
        let n = 16;
        let s2 = span(&BlockRowMajor::new(n, 2));
        let s4 = span(&BlockRowMajor::new(n, 4));
        let s8 = span(&BlockRowMajor::new(n, 8));
        assert!(s2 < s4 && s4 < s8, "{s2} {s4} {s8}");
        assert!(s2 > n, "blocking cannot beat Theorem 1");
    }

    #[test]
    fn space_filling_curves_have_larger_worst_case_span() {
        // Good average locality, bad worst case: the quantitative sense
        // in which raster order is optimal for a serial pipeline.
        for n in [8usize, 16, 32] {
            let rm = span(&RowMajor::new(n));
            assert!(span(&Morton::new(n)) > rm, "morton n={n}");
            assert!(span(&Hilbert::new(n)) > rm, "hilbert n={n}");
        }
    }

    #[test]
    fn all_spans_respect_theorem_1() {
        // span ≥ n for every embedding we can construct (Theorem 1).
        for n in [2usize, 4, 8, 16] {
            assert!(span(&RowMajor::new(n)) >= n);
            assert!(span(&Boustrophedon::new(n)) >= n);
            assert!(span(&Morton::new(n)) >= n);
            assert!(span(&Hilbert::new(n)) >= n);
            if n >= 4 {
                assert!(span(&BlockRowMajor::new(n, 2)) >= n);
            }
        }
    }

    #[test]
    fn window_span_upper_bounds_span() {
        // The Moore window contains every orthogonal neighbor pair, so
        // window_span ≥ span.
        for n in [4usize, 8, 16] {
            let e = Hilbert::new(n);
            assert!(window_span(&e) >= span(&e));
            let e = RowMajor::new(n);
            assert!(window_span(&e) >= span(&e));
        }
    }

    #[test]
    fn degenerate_one_by_one() {
        let e = RowMajor::new(1);
        assert!(verify_bijection(&e));
        assert_eq!(span(&e), 0);
        assert_eq!(window_span(&e), 0);
        assert_eq!(hex_window_span(&e), 0);
    }
}
