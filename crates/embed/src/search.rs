//! Exact minimum-span search (grid-graph bandwidth) by branch-and-bound.
//!
//! Theorem 1 says no embedding of the `n × n` array has span < `n`.
//! Row-major shows span `n` is achievable, so the minimum span *is* `n` —
//! i.e. the bandwidth of the `n × n` grid graph is `n` (Supowit & Young,
//! the paper's ref \[19\]). This module decides, exactly, whether an
//! embedding with span ≤ `bound` exists, by enumerating stream positions
//! `0, 1, 2, …` and choosing which cell receives each position, with two
//! prunings:
//!
//! 1. *adjacency*: a cell may only receive position `t` if all its
//!    already-placed neighbors have positions ≥ `t − bound`;
//! 2. *deadline*: once a cell is placed at position `s`, each unplaced
//!    neighbor must be placed by `s + bound`; if the earliest deadline
//!    passes, the branch dies.
//!
//! Exhaustive verification is feasible to `n = 5` in a debug test run;
//! the bench harness sweeps further.

/// Decides whether an embedding of the `n × n` array with span ≤ `bound`
/// exists (exact search).
pub fn min_span_exists(n: usize, bound: usize) -> bool {
    if n == 0 {
        return true;
    }
    if bound >= n {
        return true; // row-major achieves n
    }
    let cells = n * n;
    let mut pos = vec![usize::MAX; cells]; // cell -> stream position
    let mut search = Search { n, bound, pos: &mut pos };
    search.place(0)
}

struct Search<'a> {
    n: usize,
    bound: usize,
    pos: &'a mut Vec<usize>,
}

impl Search<'_> {
    fn neighbors(&self, cell: usize) -> impl Iterator<Item = usize> {
        let n = self.n;
        let (r, c) = (cell / n, cell % n);
        [
            (r > 0).then(|| cell - n),
            (r + 1 < n).then(|| cell + n),
            (c > 0).then(|| cell - 1),
            (c + 1 < n).then(|| cell + 1),
        ]
        .into_iter()
        .flatten()
    }

    /// Tries to assign stream position `t` to some cell; true if a
    /// complete assignment exists.
    fn place(&mut self, t: usize) -> bool {
        let cells = self.n * self.n;
        if t == cells {
            return true;
        }
        // Deadline prune: every placed cell with an unplaced neighbor
        // must still be within `bound` of t.
        for cell in 0..cells {
            let p = self.pos[cell];
            if p != usize::MAX
                && p + self.bound < t
                && self.neighbors(cell).any(|nb| self.pos[nb] == usize::MAX)
            {
                return false;
            }
        }
        for cell in 0..cells {
            if self.pos[cell] != usize::MAX {
                continue;
            }
            // Adjacency prune: placed neighbors must be within bound.
            let ok = self
                .neighbors(cell)
                .all(|nb| self.pos[nb] == usize::MAX || t - self.pos[nb] <= self.bound);
            if !ok {
                continue;
            }
            // Symmetry breaking at the root: the grid has an 8-fold
            // symmetry group; restrict position 0 to the upper-left
            // triangular octant.
            if t == 0 {
                let (r, c) = (cell / self.n, cell % self.n);
                if !(r <= (self.n - 1) / 2 && c <= (self.n - 1) / 2 && r <= c) {
                    continue;
                }
            }
            self.pos[cell] = t;
            if self.place(t + 1) {
                return true;
            }
            self.pos[cell] = usize::MAX;
        }
        false
    }
}

/// The exact minimum span for the `n × n` array, found by binary search
/// over [`min_span_exists`]. By Theorem 1 the answer is always `n` (for
/// `n ≥ 2`); this function *derives* it rather than assuming it.
pub fn min_span(n: usize) -> usize {
    if n <= 1 {
        return 0;
    }
    let mut b = 1;
    while !min_span_exists(n, b) {
        b += 1;
    }
    b
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trivial_cases() {
        assert!(min_span_exists(0, 0));
        assert!(min_span_exists(1, 0));
        assert_eq!(min_span(1), 0);
    }

    #[test]
    fn two_by_two_minimum_is_two() {
        assert!(!min_span_exists(2, 1));
        assert!(min_span_exists(2, 2));
        assert_eq!(min_span(2), 2);
    }

    #[test]
    fn three_by_three_minimum_is_three() {
        assert!(!min_span_exists(3, 2));
        assert!(min_span_exists(3, 3));
        assert_eq!(min_span(3), 3);
    }

    #[test]
    fn four_by_four_minimum_is_four() {
        // Exhaustive confirmation of Theorem 1 at n = 4: no span-3
        // embedding of the 4×4 array exists, and span 4 is achievable.
        assert!(!min_span_exists(4, 3));
        assert!(min_span_exists(4, 4));
    }

    #[test]
    fn bound_at_or_above_n_is_always_feasible() {
        for n in 2..6 {
            assert!(min_span_exists(n, n));
            assert!(min_span_exists(n, n + 3));
        }
    }
}
