//! Canonical array→stream embeddings.

use crate::Embedding;

/// Row-major ("natural" / raster) embedding: `pos = row·n + col`.
///
/// §3: "the natural row-major embedding of the array into a list
/// preserves 2-neighborhoods with diameter 2n − 2 … the 2n − 2 embedding
/// is optimal." Its span is exactly `n`, matching Theorem 1's bound.
#[derive(Debug, Clone, Copy)]
pub struct RowMajor {
    n: usize,
}

impl RowMajor {
    /// Creates a row-major embedding of the `n × n` array.
    pub fn new(n: usize) -> Self {
        RowMajor { n }
    }
}

impl Embedding for RowMajor {
    fn n(&self) -> usize {
        self.n
    }
    fn position(&self, row: usize, col: usize) -> usize {
        row * self.n + col
    }
    fn name(&self) -> &'static str {
        "row-major"
    }
}

/// Boustrophedon ("snake") embedding: odd rows run right-to-left.
///
/// Improves same-row locality at row turns but *worsens* the worst-case
/// span to `2n − 1` (vertical neighbors near row ends).
#[derive(Debug, Clone, Copy)]
pub struct Boustrophedon {
    n: usize,
}

impl Boustrophedon {
    /// Creates a snake embedding of the `n × n` array.
    pub fn new(n: usize) -> Self {
        Boustrophedon { n }
    }
}

impl Embedding for Boustrophedon {
    fn n(&self) -> usize {
        self.n
    }
    fn position(&self, row: usize, col: usize) -> usize {
        let c = if row.is_multiple_of(2) { col } else { self.n - 1 - col };
        row * self.n + c
    }
    fn name(&self) -> &'static str {
        "boustrophedon"
    }
}

/// Block row-major: the array is tiled into `b × b` blocks; blocks are
/// visited row-major and cells within a block row-major.
///
/// The layout SPA's memory uses when slices are buffered block-wise;
/// span grows to `Θ(b·n)` across block seams, illustrating why slicing
/// pays with *bandwidth*, not stream locality.
#[derive(Debug, Clone, Copy)]
pub struct BlockRowMajor {
    n: usize,
    b: usize,
}

impl BlockRowMajor {
    /// Creates a block embedding with blocks of side `b` (must divide `n`).
    ///
    /// # Panics
    /// Panics if `b` is zero or does not divide `n`.
    pub fn new(n: usize, b: usize) -> Self {
        assert!(b > 0 && n.is_multiple_of(b), "block side must divide n");
        BlockRowMajor { n, b }
    }
}

impl Embedding for BlockRowMajor {
    fn n(&self) -> usize {
        self.n
    }
    fn position(&self, row: usize, col: usize) -> usize {
        let blocks_per_row = self.n / self.b;
        let (br, bc) = (row / self.b, col / self.b);
        let (ir, ic) = (row % self.b, col % self.b);
        ((br * blocks_per_row + bc) * self.b + ir) * self.b + ic
    }
    fn name(&self) -> &'static str {
        "block-row-major"
    }
}

/// Morton (Z-order) embedding: interleave the bits of row and column.
/// Requires `n` to be a power of two.
#[derive(Debug, Clone, Copy)]
pub struct Morton {
    n: usize,
}

impl Morton {
    /// Creates a Morton embedding (`n` must be a power of two).
    ///
    /// # Panics
    /// Panics if `n` is not a power of two.
    pub fn new(n: usize) -> Self {
        assert!(n.is_power_of_two(), "Morton order needs a power-of-two side");
        Morton { n }
    }
}

fn interleave(x: usize, y: usize, bits: u32) -> usize {
    let mut out = 0usize;
    for b in 0..bits {
        out |= ((x >> b) & 1) << (2 * b);
        out |= ((y >> b) & 1) << (2 * b + 1);
    }
    out
}

impl Embedding for Morton {
    fn n(&self) -> usize {
        self.n
    }
    fn position(&self, row: usize, col: usize) -> usize {
        interleave(col, row, self.n.trailing_zeros())
    }
    fn name(&self) -> &'static str {
        "morton"
    }
}

/// Hilbert-curve embedding. Requires `n` to be a power of two.
///
/// Hilbert order has excellent *average* locality but its worst-case
/// span is still `Ω(n)` (Theorem 1) — and empirically much worse than
/// row-major's, because grid neighbors straddling the top-level
/// subdivision are nearly `n²/2` curve steps apart. This is the
/// quantitative sense in which "no embedding beats raster scan" for a
/// serial pipeline.
#[derive(Debug, Clone, Copy)]
pub struct Hilbert {
    n: usize,
}

impl Hilbert {
    /// Creates a Hilbert embedding (`n` must be a power of two).
    ///
    /// # Panics
    /// Panics if `n` is not a power of two.
    pub fn new(n: usize) -> Self {
        assert!(n.is_power_of_two(), "Hilbert order needs a power-of-two side");
        Hilbert { n }
    }
}

impl Embedding for Hilbert {
    fn n(&self) -> usize {
        self.n
    }
    fn position(&self, row: usize, col: usize) -> usize {
        // Standard xy→d conversion, iterative: at each scale s, classify
        // the quadrant, accumulate its curve offset, and rotate/reflect
        // the coordinates into the sub-square's frame. High bits left
        // over after reflection are never re-examined (later iterations
        // mask with smaller s), so plain `n-1-x` reflection is safe.
        let (mut x, mut y) = (col, row);
        let mut d = 0usize;
        let mut s = self.n / 2;
        while s > 0 {
            let rx = usize::from(x & s > 0);
            let ry = usize::from(y & s > 0);
            d += s * s * ((3 * rx) ^ ry);
            if ry == 0 {
                if rx == 1 {
                    x = self.n - 1 - x;
                    y = self.n - 1 - y;
                }
                std::mem::swap(&mut x, &mut y);
            }
            s /= 2;
        }
        d
    }
    fn name(&self) -> &'static str {
        "hilbert"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::span::verify_bijection;

    #[test]
    fn row_major_positions() {
        let e = RowMajor::new(4);
        assert_eq!(e.position(0, 0), 0);
        assert_eq!(e.position(1, 0), 4);
        assert_eq!(e.position(3, 3), 15);
        assert!(verify_bijection(&e));
    }

    #[test]
    fn boustrophedon_reverses_odd_rows() {
        let e = Boustrophedon::new(4);
        assert_eq!(e.position(0, 3), 3);
        assert_eq!(e.position(1, 3), 4); // snake turns
        assert_eq!(e.position(1, 0), 7);
        assert!(verify_bijection(&e));
    }

    #[test]
    fn block_row_major_layout() {
        let e = BlockRowMajor::new(4, 2);
        assert_eq!(e.position(0, 0), 0);
        assert_eq!(e.position(0, 1), 1);
        assert_eq!(e.position(1, 0), 2);
        assert_eq!(e.position(1, 1), 3);
        assert_eq!(e.position(0, 2), 4); // next block
        assert!(verify_bijection(&e));
    }

    #[test]
    #[should_panic(expected = "divide")]
    fn block_requires_divisibility() {
        let _ = BlockRowMajor::new(4, 3);
    }

    #[test]
    fn morton_interleaves() {
        let e = Morton::new(4);
        assert_eq!(e.position(0, 0), 0);
        assert_eq!(e.position(0, 1), 1);
        assert_eq!(e.position(1, 0), 2);
        assert_eq!(e.position(1, 1), 3);
        assert_eq!(e.position(0, 2), 4);
        assert!(verify_bijection(&e));
        assert!(verify_bijection(&Morton::new(16)));
    }

    #[test]
    fn hilbert_is_a_bijection_with_unit_steps() {
        for n in [2usize, 4, 8, 16, 32] {
            let e = Hilbert::new(n);
            assert!(verify_bijection(&e), "n={n}");
            // Consecutive curve positions are grid neighbors (the
            // defining property of the Hilbert curve).
            let mut by_pos = vec![(0usize, 0usize); n * n];
            for r in 0..n {
                for c in 0..n {
                    by_pos[e.position(r, c)] = (r, c);
                }
            }
            for w in by_pos.windows(2) {
                let d = w[0].0.abs_diff(w[1].0) + w[0].1.abs_diff(w[1].1);
                assert_eq!(d, 1, "n={n}, {:?} -> {:?}", w[0], w[1]);
            }
        }
    }

    #[test]
    #[should_panic(expected = "power-of-two")]
    fn morton_requires_power_of_two() {
        let _ = Morton::new(5);
    }
}
