//! # lattice-embed
//!
//! Embeddings of 2-D arrays into linear streams, and the storage lower
//! bounds they impose on serial pipelined lattice engines.
//!
//! §3 of the paper: a serial pipeline must present sites to each PE in a
//! fixed linear order, and "the lattice gas automaton can require a large
//! amount of local memory per PE because there is no sublinear embedding
//! of an array into a list \[12\]". The paper proves (Theorem 1, credited
//! to Supowit & Young \[19\]) that **any** placement of `1..n²` into an
//! `n × n` array has *span* ≥ `n`, where the span is the largest
//! first-difference along rows or columns — equivalently, the bandwidth
//! of the `n × n` grid graph under the inverse labeling. Row-major
//! achieves span exactly `n`, hence is optimal, and a full hex
//! 2-neighborhood is spread over `2n − 2` stream positions, which is the
//! shift-register length the WSA architecture pays for.
//!
//! This crate provides:
//!
//! * [`Embedding`] — a bijection `array ↔ stream position` with span and
//!   neighborhood-diameter measurement ([`span`], [`window_span`]);
//! * canonical embeddings ([`maps`]): row-major, boustrophedon, block
//!   row-major, Morton (Z-order), and Hilbert;
//! * an exact branch-and-bound decision procedure ([`search`]) verifying
//!   Theorem 1 exhaustively for small `n`: no embedding of span `n − 1`
//!   exists.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod maps;
pub mod rect;
pub mod search;
pub mod span;

pub use maps::{BlockRowMajor, Boustrophedon, Hilbert, Morton, RowMajor};
pub use rect::{rect_min_span_exists, rect_span, RectColMajor, RectEmbedding, RectRowMajor};
pub use search::min_span_exists;
pub use span::{hex_window_span, span, window_span};

/// A bijective embedding of the `n × n` array into stream positions
/// `0..n²`.
///
/// Implementations must be bijections; [`span::verify_bijection`] checks
/// this and the unit-test suites call it for every map.
pub trait Embedding {
    /// Side length of the array.
    fn n(&self) -> usize;

    /// Stream position of array cell `(row, col)`; must be `< n²` and
    /// unique per cell.
    fn position(&self, row: usize, col: usize) -> usize;

    /// Short name for reports.
    fn name(&self) -> &'static str;
}
