//! Stage composition: the cytocomputer's pipeline-of-operations.
//!
//! Sternberg's machines chained *different* operations stage to stage
//! (erode, erode, dilate, …) rather than iterating one rule — ref
//! \[18\]'s "pipeline architectures for image processing". The paper's
//! engines iterate a single rule per pass, so heterogeneous chains run
//! as one host pass per stage; [`run_stages`] is that loop, and the
//! tests confirm it matches running each stage on a hardware pipeline.

use lattice_core::{evolve, Boundary, Grid, Rule, State};

/// Applies a sequence of same-state-type stages, one generation each,
/// under the given boundary. Returns the final image.
pub fn run_stages<S: State>(
    img: &Grid<S>,
    stages: &[&dyn Rule<S = S>],
    boundary: Boundary<S>,
) -> Grid<S> {
    let mut cur = img.clone();
    for (t, stage) in stages.iter().enumerate() {
        cur = evolve(&cur, stage, boundary, t as u64, 1);
    }
    cur
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::filter::{BoxBlur, Median3, Threshold};
    use crate::morphology::{Dilate, Erode, StructuringElement};
    use lattice_core::{Coord, Shape};

    #[test]
    fn heterogeneous_grayscale_chain() {
        // Denoise → blur → threshold: a classic segmentation front-end.
        let shape = Shape::grid2(10, 10).unwrap();
        let mut img: Grid<u8> = Grid::from_fn(shape, |c| if c.col() >= 5 { 180 } else { 20 });
        img.set(Coord::c2(4, 2), 255); // noise speck in the dark half
        let out = run_stages(&img, &[&Median3, &BoxBlur, &Threshold(100)], Boundary::Periodic);
        // Binary output, speck gone, halves separated.
        assert!(out.as_slice().iter().all(|&p| p == 0 || p == 255));
        assert_eq!(out.get(Coord::c2(4, 2)), 0);
        assert_eq!(out.get(Coord::c2(4, 7)), 255);
    }

    #[test]
    fn morphology_chain_is_opening() {
        let shape = Shape::grid2(9, 9).unwrap();
        let mut img: Grid<bool> = Grid::new(shape);
        for r in 3..6 {
            for c in 3..6 {
                img.set(Coord::c2(r, c), true);
            }
        }
        img.set(Coord::c2(0, 0), true); // isolated speck: opening kills it
        let se = StructuringElement::box3();
        let chained = run_stages(
            &img,
            &[&Erode(se) as &dyn Rule<S = bool>, &Dilate(se)],
            Boundary::Fixed(false),
        );
        assert_eq!(chained, crate::morphology::open(&img, se));
        assert!(!chained.get(Coord::c2(0, 0)));
        assert!(chained.get(Coord::c2(4, 4)));
    }

    #[test]
    fn chain_matches_per_stage_hardware_passes() {
        use lattice_engines_sim::Pipeline;
        let shape = Shape::grid2(8, 12).unwrap();
        let img: Grid<u8> = Grid::from_fn(shape, |c| (c.row() * 13 + c.col() * 7) as u8);
        let host = run_stages(&img, &[&Median3, &BoxBlur], Boundary::Fixed(0));
        // Hardware path: one single-stage pipeline pass per operation.
        let p1 = Pipeline::wide(2, 1).run(&Median3, &img, 0).unwrap();
        let p2 = Pipeline::wide(2, 1).run(&BoxBlur, &p1.grid, 1).unwrap();
        assert_eq!(p2.grid, host);
    }

    #[test]
    fn empty_chain_is_identity() {
        let shape = Shape::grid2(3, 3).unwrap();
        let img: Grid<u8> = Grid::from_fn(shape, |c| c.col() as u8);
        let out = run_stages(&img, &[], Boundary::Fixed(0));
        assert_eq!(out, img);
    }
}
