//! # lattice-image
//!
//! Image-processing rules for the lattice engines — the paper's *other*
//! workload class.
//!
//! §1: "A familiar example of lattice-based computational tasks is
//! two-dimensional image processing. Many useful algorithms, such as
//! linear filtering and median filtering, recompute values the same way
//! everywhere on the image" — and the serial-pipeline technique itself
//! "has been used for image processing where the size of the
//! two-dimensional grid is small and fixed \[6,13,17\]". Sternberg, the
//! SPA's namesake, built exactly such machines (the *cytocomputer*) for
//! mathematical morphology \[17,18\].
//!
//! Every operation here is a `lattice_core::Rule`, so it runs unchanged
//! on the reference engine and on every architectural simulator in
//! `lattice-engines-sim` — bit-exactly, which the tests enforce. A
//! multi-stage pipeline of these rules is precisely what a cytocomputer
//! pipeline stage chain computed.
//!
//! * [`morphology`] — binary erosion, dilation, opening, closing under
//!   3×3 structuring elements (with the duality and idempotence laws
//!   property-tested);
//! * [`filter`] — box blur, median, threshold, and Sobel edge magnitude
//!   on 8-bit images;
//! * [`compose`] — run a sequence of heterogeneous stages, host-side or
//!   through a pipelined engine.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod compose;
pub mod filter;
pub mod morphology;

pub use compose::run_stages;
pub use filter::{BoxBlur, Median3, Sobel, Threshold};
pub use morphology::{Dilate, Erode, StructuringElement};
