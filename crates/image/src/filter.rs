//! Grayscale filters: the §1 "linear filtering and median filtering"
//! examples, as engine-ready rules on 8-bit images.

use lattice_core::{Rule, Window};

/// 3×3 box blur (mean filter), rounding to nearest.
#[derive(Debug, Clone, Copy, Default)]
pub struct BoxBlur;

impl Rule for BoxBlur {
    type S = u8;
    fn update(&self, w: &Window<u8>) -> u8 {
        let sum: u32 = w.cells().iter().map(|&c| c as u32).sum();
        ((sum + 4) / 9) as u8
    }
    fn name(&self) -> &str {
        "box-blur"
    }
}

/// 3×3 median filter — the classic edge-preserving denoiser, §1's
/// example of a nonlinear local rule.
#[derive(Debug, Clone, Copy, Default)]
pub struct Median3;

impl Rule for Median3 {
    type S = u8;
    fn update(&self, w: &Window<u8>) -> u8 {
        let mut v = [0u8; 9];
        v.copy_from_slice(w.cells());
        v.sort_unstable();
        v[4]
    }
    fn name(&self) -> &str {
        "median3"
    }
}

/// Binary threshold at a fixed level: `out = 255·[in ≥ level]`.
#[derive(Debug, Clone, Copy)]
pub struct Threshold(pub u8);

impl Rule for Threshold {
    type S = u8;
    fn update(&self, w: &Window<u8>) -> u8 {
        if w.center() >= self.0 {
            255
        } else {
            0
        }
    }
    fn name(&self) -> &str {
        "threshold"
    }
}

/// Sobel gradient magnitude (|Gx| + |Gy|, clamped to 255).
#[derive(Debug, Clone, Copy, Default)]
pub struct Sobel;

impl Rule for Sobel {
    type S = u8;
    fn update(&self, w: &Window<u8>) -> u8 {
        let p = |dr: isize, dc: isize| w.at2(dr, dc) as i32;
        let gx = (p(-1, 1) + 2 * p(0, 1) + p(1, 1)) - (p(-1, -1) + 2 * p(0, -1) + p(1, -1));
        let gy = (p(1, -1) + 2 * p(1, 0) + p(1, 1)) - (p(-1, -1) + 2 * p(-1, 0) + p(-1, 1));
        (gx.abs() + gy.abs()).min(255) as u8
    }
    fn name(&self) -> &str {
        "sobel"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lattice_core::{evolve, Boundary, Coord, Grid, Shape};

    fn gradient_image() -> Grid<u8> {
        let shape = Shape::grid2(8, 8).unwrap();
        Grid::from_fn(shape, |c| (c.col() * 30) as u8)
    }

    #[test]
    fn blur_of_uniform_is_uniform() {
        let shape = Shape::grid2(6, 6).unwrap();
        let img: Grid<u8> = Grid::filled(shape, 90);
        let out = evolve(&img, &BoxBlur, Boundary::Periodic, 0, 1);
        assert!(out.as_slice().iter().all(|&p| p == 90));
    }

    #[test]
    fn blur_smooths_an_impulse() {
        let shape = Shape::grid2(5, 5).unwrap();
        let mut img: Grid<u8> = Grid::new(shape);
        img.set(Coord::c2(2, 2), 90);
        let out = evolve(&img, &BoxBlur, Boundary::Fixed(0), 0, 1);
        assert_eq!(out.get(Coord::c2(2, 2)), 10);
        assert_eq!(out.get(Coord::c2(1, 1)), 10);
        assert_eq!(out.get(Coord::c2(0, 0)), 0);
    }

    #[test]
    fn median_kills_salt_noise_blur_does_not() {
        let shape = Shape::grid2(7, 7).unwrap();
        let mut img: Grid<u8> = Grid::filled(shape, 100);
        img.set(Coord::c2(3, 3), 255); // salt speck
        let med = evolve(&img, &Median3, Boundary::Fixed(100), 0, 1);
        assert!(med.as_slice().iter().all(|&p| p == 100), "median removes the speck");
        let blur = evolve(&img, &BoxBlur, Boundary::Fixed(100), 0, 1);
        assert!(blur.get(Coord::c2(3, 3)) > 100, "blur only spreads it");
    }

    #[test]
    fn median_preserves_edges() {
        let img = gradient_image();
        // A step edge: left half 0, right half 200.
        let shape = Shape::grid2(8, 8).unwrap();
        let step = Grid::from_fn(shape, |c| if c.col() < 4 { 0u8 } else { 200 });
        let out = evolve(&step, &Median3, Boundary::Periodic, 0, 1);
        // Interior edge columns keep their levels (median of 3/6 split).
        assert_eq!(out.get(Coord::c2(4, 2)), 0);
        assert_eq!(out.get(Coord::c2(4, 5)), 200);
        drop(img);
    }

    #[test]
    fn threshold_binarizes() {
        let img = gradient_image();
        let out = evolve(&img, &Threshold(100), Boundary::Fixed(0), 0, 1);
        for c in 0..8 {
            let expect = if c * 30 >= 100 { 255 } else { 0 };
            assert_eq!(out.get(Coord::c2(3, c)), expect, "col {c}");
        }
    }

    #[test]
    fn sobel_fires_on_edges_only() {
        let shape = Shape::grid2(8, 8).unwrap();
        let step = Grid::from_fn(shape, |c| if c.col() < 4 { 0u8 } else { 200 });
        let out = evolve(&step, &Sobel, Boundary::Periodic, 0, 1);
        // Strong response at the edge columns…
        assert_eq!(out.get(Coord::c2(3, 3)), 255);
        assert_eq!(out.get(Coord::c2(3, 4)), 255);
        // …none in the flat interior.
        assert_eq!(out.get(Coord::c2(3, 1)), 0);
        assert_eq!(out.get(Coord::c2(3, 6)), 0);
    }

    #[test]
    fn filters_run_bit_exact_on_engines() {
        use lattice_engines_sim::{Pipeline, SpaEngine};
        let img = gradient_image();
        for depth in [1usize, 2] {
            let reference = evolve(&img, &Median3, Boundary::Fixed(0), 0, depth as u64);
            let wsa = Pipeline::wide(2, depth).run(&Median3, &img, 0).unwrap();
            assert_eq!(wsa.grid, reference, "WSA depth {depth}");
            let spa = SpaEngine::new(4, depth).run(&Median3, &img, 0).unwrap();
            assert_eq!(spa.grid, reference, "SPA depth {depth}");
        }
    }
}
