//! Binary mathematical morphology — Sternberg's cytocomputer workload.
//!
//! Erosion and dilation over 3×3 structuring elements; opening and
//! closing by composition. The algebra the implementation must satisfy
//! (and the tests check):
//!
//! * duality: `dilate_B(x) = ¬ erode_B̌(¬x)` (with the reflected
//!   element `B̌`);
//! * monotonicity: `erode(x) ⊆ x ⊆ dilate(x)` when `B` contains the
//!   origin;
//! * idempotence of opening/closing: `open(open(x)) = open(x)`.

use lattice_core::{Boundary, Grid, Rule, Window};

/// A 3×3 binary structuring element (row-major, center at index 4).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StructuringElement {
    mask: [bool; 9],
}

impl StructuringElement {
    /// Builds from a row-major 3×3 mask.
    pub fn new(mask: [bool; 9]) -> Self {
        StructuringElement { mask }
    }

    /// The full 3×3 box.
    pub fn box3() -> Self {
        StructuringElement { mask: [true; 9] }
    }

    /// The von Neumann cross (center + 4-neighbors).
    pub fn cross() -> Self {
        let mut mask = [false; 9];
        for i in [1, 3, 4, 5, 7] {
            mask[i] = true;
        }
        StructuringElement { mask }
    }

    /// Horizontal 3×1 line through the center.
    pub fn hline() -> Self {
        let mut mask = [false; 9];
        for i in [3, 4, 5] {
            mask[i] = true;
        }
        StructuringElement { mask }
    }

    /// The element reflected through the origin.
    pub fn reflected(&self) -> Self {
        let mut mask = [false; 9];
        for (i, m) in mask.iter_mut().enumerate() {
            *m = self.mask[8 - i];
        }
        StructuringElement { mask }
    }

    /// Whether offset `(dr, dc)` is in the element.
    pub fn contains(&self, dr: isize, dc: isize) -> bool {
        self.mask[((dr + 1) * 3 + dc + 1) as usize]
    }

    /// True if the element contains the origin.
    pub fn has_origin(&self) -> bool {
        self.mask[4]
    }
}

/// Binary erosion: output is set iff every element offset lands on a
/// set pixel.
#[derive(Debug, Clone, Copy)]
pub struct Erode(pub StructuringElement);

impl Rule for Erode {
    type S = bool;
    fn update(&self, w: &Window<bool>) -> bool {
        for dr in -1isize..=1 {
            for dc in -1isize..=1 {
                if self.0.contains(dr, dc) && !w.at2(dr, dc) {
                    return false;
                }
            }
        }
        true
    }
    fn name(&self) -> &str {
        "erode"
    }
}

/// Binary dilation: output is set iff any *reflected* element offset
/// lands on a set pixel (the Minkowski-sum convention).
#[derive(Debug, Clone, Copy)]
pub struct Dilate(pub StructuringElement);

impl Rule for Dilate {
    type S = bool;
    fn update(&self, w: &Window<bool>) -> bool {
        for dr in -1isize..=1 {
            for dc in -1isize..=1 {
                if self.0.contains(-dr, -dc) && w.at2(dr, dc) {
                    return true;
                }
            }
        }
        false
    }
    fn name(&self) -> &str {
        "dilate"
    }
}

/// Morphological opening: erosion then dilation (removes small bright
/// specks; idempotent and anti-extensive).
///
/// Boundary frame convention: erosion reads off-image pixels as *set*
/// and dilation as *clear* — the standard choice that preserves the
/// morphological algebra (extensivity/anti-extensivity, idempotence) on
/// a finite frame instead of eating the image border.
pub fn open(img: &Grid<bool>, se: StructuringElement) -> Grid<bool> {
    let eroded = lattice_core::evolve(img, &Erode(se), Boundary::Fixed(true), 0, 1);
    lattice_core::evolve(&eroded, &Dilate(se), Boundary::Fixed(false), 0, 1)
}

/// Morphological closing: dilation then erosion (fills small dark
/// holes; idempotent and extensive). See [`open`] for the frame
/// convention.
pub fn close(img: &Grid<bool>, se: StructuringElement) -> Grid<bool> {
    let dilated = lattice_core::evolve(img, &Dilate(se), Boundary::Fixed(false), 0, 1);
    lattice_core::evolve(&dilated, &Erode(se), Boundary::Fixed(true), 0, 1)
}

#[cfg(test)]
mod tests {
    use super::*;
    use lattice_core::{evolve, Coord, Shape};
    use proptest::prelude::*;

    fn blob() -> Grid<bool> {
        let shape = Shape::grid2(12, 12).unwrap();
        Grid::from_fn(shape, |c| {
            let (r, k) = (c.row() as i32 - 6, c.col() as i32 - 6);
            r * r + k * k <= 9
        })
    }

    #[test]
    fn erosion_shrinks_dilation_grows() {
        let img = blob();
        let se = StructuringElement::box3();
        let eroded = evolve(&img, &Erode(se), Boundary::Fixed(false), 0, 1);
        let dilated = evolve(&img, &Dilate(se), Boundary::Fixed(false), 0, 1);
        let count = |g: &Grid<bool>| g.count(|p| p);
        assert!(count(&eroded) < count(&img));
        assert!(count(&dilated) > count(&img));
        // Monotone containment (origin in the element).
        for i in 0..img.len() {
            assert!(!eroded.get_linear(i) || img.get_linear(i));
            assert!(!img.get_linear(i) || dilated.get_linear(i));
        }
    }

    #[test]
    fn single_pixel_dilates_to_element_shape() {
        let shape = Shape::grid2(5, 5).unwrap();
        let mut img = Grid::new(shape);
        img.set(Coord::c2(2, 2), true);
        let se = StructuringElement::cross();
        let out = evolve(&img, &Dilate(se), Boundary::Fixed(false), 0, 1);
        assert_eq!(out.count(|p| p), 5);
        assert!(out.get(Coord::c2(1, 2)));
        assert!(out.get(Coord::c2(2, 1)));
        assert!(!out.get(Coord::c2(1, 1)));
    }

    #[test]
    fn structuring_element_helpers() {
        let b = StructuringElement::box3();
        assert!(b.has_origin() && b.contains(-1, 1));
        let h = StructuringElement::hline();
        assert!(h.contains(0, -1) && !h.contains(1, 0));
        // Reflecting an asymmetric element moves its lobes.
        let mut m = [false; 9];
        m[0] = true; // (-1,-1)
        let se = StructuringElement::new(m);
        assert!(se.reflected().contains(1, 1));
        assert!(!se.reflected().contains(-1, -1));
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        /// Duality: dilation is the complement of erosion of the
        /// complement (with the reflected element), given complement-
        /// consistent boundaries.
        #[test]
        fn duality(bits in proptest::collection::vec(any::<bool>(), 64), lobes in any::<u16>()) {
            let shape = Shape::grid2(8, 8).unwrap();
            let img = Grid::from_vec(shape, bits).unwrap();
            let mut mask = [false; 9];
            for (i, m) in mask.iter_mut().enumerate() {
                *m = lobes >> i & 1 != 0;
            }
            let se = StructuringElement::new(mask);
            let dilated = evolve(&img, &Dilate(se), Boundary::Fixed(false), 0, 1);
            let complement = Grid::from_fn(shape, |c| !img.get(c));
            let eroded_c =
                evolve(&complement, &Erode(se.reflected()), Boundary::Fixed(true), 0, 1);
            for i in 0..img.len() {
                prop_assert_eq!(dilated.get_linear(i), !eroded_c.get_linear(i));
            }
        }

        /// Opening and closing are idempotent.
        #[test]
        fn opening_closing_idempotent(bits in proptest::collection::vec(any::<bool>(), 100)) {
            let shape = Shape::grid2(10, 10).unwrap();
            let img = Grid::from_vec(shape, bits).unwrap();
            for se in [StructuringElement::box3(), StructuringElement::cross(), StructuringElement::hline()] {
                let once = open(&img, se);
                prop_assert_eq!(open(&once, se), once.clone(), "open");
                let conce = close(&img, se);
                prop_assert_eq!(close(&conce, se), conce.clone(), "close");
            }
        }

        /// Opening removes pixels, closing adds them.
        #[test]
        fn opening_anti_extensive(bits in proptest::collection::vec(any::<bool>(), 100)) {
            let shape = Shape::grid2(10, 10).unwrap();
            let img = Grid::from_vec(shape, bits).unwrap();
            let se = StructuringElement::cross();
            let opened = open(&img, se);
            let closed = close(&img, se);
            for i in 0..img.len() {
                prop_assert!(!opened.get_linear(i) || img.get_linear(i));
                prop_assert!(!img.get_linear(i) || closed.get_linear(i));
            }
        }
    }

    /// The cytocomputer contract: morphology through a pipelined engine
    /// equals the reference — a two-stage erode|dilate pipeline is one
    /// pass through two chips.
    #[test]
    fn morphology_runs_bit_exact_on_the_pipeline() {
        use lattice_engines_sim::Pipeline;
        let img = blob();
        let se = StructuringElement::box3();
        // One stage of erosion on a 2-PE chip.
        let reference = evolve(&img, &Erode(se), Boundary::Fixed(false), 0, 1);
        let report = Pipeline::wide(2, 1).run(&Erode(se), &img, 0).unwrap();
        assert_eq!(report.grid, reference);
        // Binary images: D = 1 bit of pin traffic per site.
        assert_eq!(report.memory_traffic.bits_in, img.len() as u128);
    }
}
