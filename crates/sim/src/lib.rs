//! # lattice-engines-sim
//!
//! Cycle-level simulators for the paper's lattice engines. Where
//! `lattice-vlsi` *derives* throughput, bandwidth, and storage from
//! constraint algebra, this crate *measures* them by actually streaming
//! lattices through shift registers and PEs:
//!
//! * [`stage`] — the line-buffer pipeline stage: a ring of site
//!   registers plus `P` processing elements, consuming a raster stream
//!   and emitting the next generation, exactly as the fabricated WSA
//!   chip did. All engines are built from it.
//! * [`pipeline`] — the serial pipeline (§3) and the wide-serial
//!   architecture WSA (§4): `k` cascaded stages, `P` PEs each, one
//!   generation per stage, "computation proceeds on a wavefront through
//!   time and space".
//! * [`spa`] — the Sternberg partitioned architecture (§5): columnar
//!   slices with side channels completing neighborhoods across slice
//!   boundaries (`E` bits per exchange).
//! * [`wsae`] — WSA-E (§6.3): one PE per chip with the two-row window
//!   split across on-chip and external shift registers.
//! * [`memory`] — the host/main-memory channel with finite bandwidth:
//!   the token-bucket stall model that turns the prototype's 20 M
//!   updates/s/chip into the realized ~1 M updates/s (§8).
//! * [`halo`] — host-side halo framing for periodic boundaries.
//! * [`faults`] — seeded, stream-position-keyed hardware fault
//!   injection (stuck-at and transient bit-flips in shift registers,
//!   PE outputs, links, side channels); [`host`] adds checkpoint
//!   rollback and degraded-mode recovery on top.
//!
//! **Verification contract**: every engine must produce the *bit-exact*
//! lattice the reference `lattice_core::evolve` produces for the same
//! rule, and every reported traffic/storage count must match the
//! analytical model where one exists (integration tests enforce both).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod faults;
pub mod halo;
pub mod host;
pub mod memory;
pub mod metrics;
pub mod pipeline;
pub mod spa;
pub mod spa_lockstep;
pub mod stage;
pub mod threaded;
pub mod waveform;
pub mod wsae;

pub use faults::{Component, Fault, FaultCtx, FaultKind, FaultPlan, FaultStats};
pub use host::{FtRun, HostSystem, RecoveryConfig, RecoveryStats, SystemRun};
pub use memory::{throttled_rate, HostLink, StallSim};
pub use metrics::EngineReport;
pub use pipeline::{Pipeline, RunOptions};
pub use spa::{SpaEngine, SpaRunOptions};
pub use spa_lockstep::SpaLockstep;
pub use stage::{LineBufferStage, StageConfig};
pub use threaded::run_threaded;
pub use waveform::{record as record_waveform, Waveform};
pub use wsae::WsaePipeline;
