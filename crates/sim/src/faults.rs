//! Deterministic hardware fault injection for the engine simulators.
//!
//! A VLSI engine streaming "huge lattices" (§2) for hours at a 10 MHz
//! clock is a large soft-error cross-section: every shift-register cell,
//! PE output latch, inter-chip link, and off-chip register is a place a
//! bit can flip. This module models those upsets so the detection layers
//! ([`lattice_core::bits::StreamParity`] on the links, the conservation
//! audit in `lattice-gas`) and the host's checkpoint/rollback recovery
//! can be exercised and measured.
//!
//! Everything is deterministic. A [`FaultPlan`] is a seed plus a list of
//! [`Fault`]s naming hardware sites by ([`Component`], chip, cell).
//! Transient faults fire when a hash of
//! `(seed, pass, attempt, component, chip, cell, position, fault-index)`
//! falls below the configured rate — so the sequential and threaded
//! drivers, which present the identical stream positions to each chip,
//! inject identically; and a retry after rollback (which bumps
//! `attempt`) sees a fresh, independent draw, exactly like re-running
//! real hardware. Stuck-at faults ignore `attempt`: they are permanent
//! silicon defects, and retrying cannot clear them — only taking the
//! chip out of service can (see `HostSystem::run_with_recovery`).
//!
//! Every event that actually alters data is counted into the plan's
//! atomic tallies and surfaced per run as [`FaultStats`] in
//! `EngineReport::faults`.

use lattice_core::State;
use std::sync::atomic::{AtomicU64, Ordering};

/// The classes of hardware sites faults can be injected into.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Component {
    /// A shift-register cell in a line-buffer stage (named by ring cell).
    SrCell,
    /// The output latch of a stage's PE array.
    PeOutput,
    /// The inter-chip link carrying a stage's output stream.
    Link,
    /// The SPA side channel importing halo sites from a neighbor slice.
    SideChannel,
    /// A WSA-E off-chip shift-register cell (ring cells past the on-chip
    /// capacity).
    OffchipSr,
}

const N_COMPONENTS: usize = 5;

impl Component {
    fn index(self) -> usize {
        match self {
            Component::SrCell => 0,
            Component::PeOutput => 1,
            Component::Link => 2,
            Component::SideChannel => 3,
            Component::OffchipSr => 4,
        }
    }

    /// Human-readable site-class name.
    pub fn name(self) -> &'static str {
        match self {
            Component::SrCell => "shift-register cell",
            Component::PeOutput => "PE output",
            Component::Link => "inter-chip link",
            Component::SideChannel => "side channel",
            Component::OffchipSr => "off-chip shift register",
        }
    }
}

/// How a fault corrupts the datum at its site.
#[derive(Debug, Clone, Copy)]
pub enum FaultKind {
    /// Permanent defect: the named bit reads as `value` on every access.
    StuckAt {
        /// Bit position within the site word.
        bit: u32,
        /// The level the bit is stuck at.
        value: bool,
    },
    /// Soft error: the named bit flips with probability `rate` per datum
    /// passing through the site, drawn deterministically from the plan's
    /// seed, the pass/attempt epoch, and the stream position.
    Transient {
        /// Bit position within the site word.
        bit: u32,
        /// Per-datum flip probability in `[0, 1]`.
        rate: f64,
    },
}

/// One fault bound to a hardware site.
#[derive(Debug, Clone, Copy)]
pub struct Fault {
    /// Which site class the fault lives in.
    pub component: Component,
    /// Physical chip (stage) the fault is on; `None` afflicts every chip.
    pub chip: Option<usize>,
    /// Ring cell within the chip (for [`Component::SrCell`] /
    /// [`Component::OffchipSr`]); `None` afflicts every cell.
    pub cell: Option<usize>,
    /// The defect itself.
    pub kind: FaultKind,
}

/// Injected-event tallies, by site class.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FaultStats {
    /// Events in shift-register cells.
    pub sr_cell: u64,
    /// Events in PE output latches.
    pub pe_output: u64,
    /// Events on inter-chip links.
    pub link: u64,
    /// Events on SPA side channels.
    pub side_channel: u64,
    /// Events in off-chip shift registers.
    pub offchip_sr: u64,
}

impl FaultStats {
    /// Total injected events.
    pub fn total(&self) -> u64 {
        self.sr_cell + self.pe_output + self.link + self.side_channel + self.offchip_sr
    }

    /// Events recorded since an `earlier` snapshot of the same plan.
    pub fn since(&self, earlier: FaultStats) -> FaultStats {
        FaultStats {
            sr_cell: self.sr_cell - earlier.sr_cell,
            pe_output: self.pe_output - earlier.pe_output,
            link: self.link - earlier.link,
            side_channel: self.side_channel - earlier.side_channel,
            offchip_sr: self.offchip_sr - earlier.offchip_sr,
        }
    }

    /// Adds another tally into this one.
    pub fn merge(&mut self, other: FaultStats) {
        self.sr_cell += other.sr_cell;
        self.pe_output += other.pe_output;
        self.link += other.link;
        self.side_channel += other.side_channel;
        self.offchip_sr += other.offchip_sr;
    }
}

/// A seeded set of faults plus the atomic event tallies.
///
/// The plan is shared (by reference) across passes, retries, and stage
/// worker threads; the tallies are cumulative over its lifetime. Engines
/// snapshot [`FaultPlan::stats`] before and after a run to report the
/// run's own delta.
#[derive(Debug, Default)]
pub struct FaultPlan {
    /// Seed feeding every transient-fault draw.
    pub seed: u64,
    faults: Vec<Fault>,
    counts: [AtomicU64; N_COMPONENTS],
}

impl FaultPlan {
    /// An empty plan (injects nothing) with the given seed.
    pub fn new(seed: u64) -> Self {
        FaultPlan { seed, ..FaultPlan::default() }
    }

    /// Adds a fault (builder style).
    pub fn with_fault(mut self, fault: Fault) -> Self {
        self.faults.push(fault);
        self
    }

    /// Adds a fault.
    pub fn push(&mut self, fault: Fault) {
        self.faults.push(fault);
    }

    /// The configured faults.
    pub fn faults(&self) -> &[Fault] {
        &self.faults
    }

    /// True if the plan has no faults to inject.
    pub fn is_empty(&self) -> bool {
        self.faults.is_empty()
    }

    /// Snapshot of the cumulative event tallies.
    pub fn stats(&self) -> FaultStats {
        FaultStats {
            sr_cell: self.counts[0].load(Ordering::Relaxed),
            pe_output: self.counts[1].load(Ordering::Relaxed),
            link: self.counts[2].load(Ordering::Relaxed),
            side_channel: self.counts[3].load(Ordering::Relaxed),
            offchip_sr: self.counts[4].load(Ordering::Relaxed),
        }
    }

    fn count(&self, component: Component) {
        self.counts[component.index()].fetch_add(1, Ordering::Relaxed);
    }
}

/// SplitMix64 finalizer: the bit mixer behind every transient draw.
fn mix(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e3779b97f4a7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d049bb133111eb);
    x ^ (x >> 31)
}

fn hash(parts: &[u64]) -> u64 {
    parts.iter().fold(0x243f6a8885a308d3, |h, &v| mix(h ^ v))
}

/// A plan bound to one recovery epoch: the logical pass number and the
/// retry attempt. Copyable, `Sync`, and cheap to hand to stage workers.
#[derive(Debug, Clone, Copy)]
pub struct FaultCtx<'p> {
    /// The shared plan.
    pub plan: &'p FaultPlan,
    /// Logical pass number (monotonic over a host run).
    pub pass: u64,
    /// Retry attempt; bumped by every rollback, re-seeding transients.
    pub attempt: u64,
}

impl<'p> FaultCtx<'p> {
    /// A context for the first pass, first attempt.
    pub fn new(plan: &'p FaultPlan) -> Self {
        FaultCtx { plan, pass: 0, attempt: 0 }
    }

    /// A context at a given recovery epoch.
    pub fn at(plan: &'p FaultPlan, pass: u64, attempt: u64) -> Self {
        FaultCtx { plan, pass, attempt }
    }

    /// A context for one shard (board) of a multi-engine farm at a given
    /// recovery epoch. The shard id is folded into the high bits of the
    /// attempt word, so two boards sharing one [`FaultPlan`] never draw
    /// identical transient patterns from the same `(seed, pass, attempt)`
    /// tuple — distinct silicon sees independent soft-error weather.
    /// Shard 0 is bit-compatible with [`FaultCtx::at`] for attempts below
    /// `2^32` (a rollback budget no real run exhausts).
    pub fn for_shard(plan: &'p FaultPlan, shard: u64, pass: u64, attempt: u64) -> Self {
        FaultCtx { plan, pass, attempt: (shard << 32) | (attempt & 0xffff_ffff) }
    }

    /// Applies every matching fault to a `bits`-bit `word` passing
    /// through (`component`, `chip`, `cell`) at stream position `pos`,
    /// counting each event that alters the word.
    pub fn corrupt(
        &self,
        component: Component,
        chip: usize,
        cell: usize,
        pos: u64,
        bits: u32,
        word: u64,
    ) -> u64 {
        let mut w = word;
        for (i, f) in self.plan.faults.iter().enumerate() {
            if f.component != component
                || f.chip.is_some_and(|c| c != chip)
                || f.cell.is_some_and(|c| c != cell)
            {
                continue;
            }
            match f.kind {
                FaultKind::StuckAt { bit, value } => {
                    if bit >= bits {
                        continue;
                    }
                    let m = 1u64 << bit;
                    let stuck = if value { w | m } else { w & !m };
                    if stuck != w {
                        w = stuck;
                        self.plan.count(component);
                    }
                }
                FaultKind::Transient { bit, rate } => {
                    if bit >= bits || rate <= 0.0 {
                        continue;
                    }
                    let h = hash(&[
                        self.plan.seed,
                        self.pass,
                        self.attempt,
                        component.index() as u64,
                        chip as u64,
                        cell as u64,
                        pos,
                        i as u64,
                    ]);
                    // 53-bit uniform in [0, 1).
                    if ((h >> 11) as f64) * (1.0 / (1u64 << 53) as f64) < rate {
                        w ^= 1u64 << bit;
                        self.plan.count(component);
                    }
                }
            }
        }
        w
    }

    /// [`FaultCtx::corrupt`] over a typed site state.
    pub fn corrupt_site<S: State>(
        &self,
        component: Component,
        chip: usize,
        cell: usize,
        pos: u64,
        site: S,
    ) -> S {
        if self.plan.faults.is_empty() {
            return site;
        }
        S::from_word(self.corrupt(component, chip, cell, pos, S::BITS, site.to_word()))
    }
}

/// A fault context wired to one physical chip — what a
/// [`crate::stage::LineBufferStage`] carries.
#[derive(Debug, Clone, Copy)]
pub struct FaultHook<'p> {
    /// The epoch-bound plan.
    pub ctx: FaultCtx<'p>,
    /// This stage's physical chip id (stable across degraded-mode
    /// remapping, so stuck-at faults follow the silicon).
    pub chip: usize,
    /// Ring cells at or past this index live in external shift registers
    /// (WSA-E); `None` keeps the whole ring on chip.
    pub offchip_from: Option<usize>,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sr_transient(rate: f64) -> Fault {
        Fault {
            component: Component::SrCell,
            chip: Some(1),
            cell: None,
            kind: FaultKind::Transient { bit: 2, rate },
        }
    }

    #[test]
    fn empty_plan_is_identity() {
        let plan = FaultPlan::new(7);
        let ctx = FaultCtx::new(&plan);
        for pos in 0..100 {
            assert_eq!(ctx.corrupt_site(Component::SrCell, 0, 0, pos, 0xabu8), 0xab);
        }
        assert_eq!(plan.stats(), FaultStats::default());
    }

    #[test]
    fn stuck_at_fires_only_when_it_changes_data() {
        let plan = FaultPlan::new(0).with_fault(Fault {
            component: Component::PeOutput,
            chip: Some(0),
            cell: None,
            kind: FaultKind::StuckAt { bit: 0, value: true },
        });
        let ctx = FaultCtx::new(&plan);
        assert_eq!(ctx.corrupt_site(Component::PeOutput, 0, 0, 0, 0b10u8), 0b11);
        assert_eq!(ctx.corrupt_site(Component::PeOutput, 0, 0, 1, 0b11u8), 0b11);
        // Wrong chip and wrong component are untouched.
        assert_eq!(ctx.corrupt_site(Component::PeOutput, 1, 0, 2, 0b10u8), 0b10);
        assert_eq!(ctx.corrupt_site(Component::Link, 0, 0, 3, 0b10u8), 0b10);
        assert_eq!(plan.stats().pe_output, 1);
        assert_eq!(plan.stats().total(), 1);
    }

    #[test]
    fn transients_are_deterministic_and_reseeded_by_attempt() {
        let plan = FaultPlan::new(42).with_fault(sr_transient(0.2));
        let a = FaultCtx::at(&plan, 3, 0);
        let b = FaultCtx::at(&plan, 3, 0);
        let flips_a: Vec<u64> =
            (0..200).filter(|&p| a.corrupt(Component::SrCell, 1, 0, p, 8, 0) != 0).collect();
        let flips_b: Vec<u64> =
            (0..200).filter(|&p| b.corrupt(Component::SrCell, 1, 0, p, 8, 0) != 0).collect();
        assert_eq!(flips_a, flips_b, "same epoch, same draws");
        assert!(!flips_a.is_empty(), "rate 0.2 over 200 draws fires");

        let retry = FaultCtx::at(&plan, 3, 1);
        let flips_r: Vec<u64> =
            (0..200).filter(|&p| retry.corrupt(Component::SrCell, 1, 0, p, 8, 0) != 0).collect();
        assert_ne!(flips_a, flips_r, "a retry draws a fresh pattern");
    }

    #[test]
    fn shard_contexts_draw_independent_patterns() {
        let plan = FaultPlan::new(42).with_fault(sr_transient(0.2));
        let flips = |ctx: FaultCtx<'_>| -> Vec<u64> {
            (0..200).filter(|&p| ctx.corrupt(Component::SrCell, 1, 0, p, 8, 0) != 0).collect()
        };
        let s0 = flips(FaultCtx::for_shard(&plan, 0, 3, 1));
        let s1 = flips(FaultCtx::for_shard(&plan, 1, 3, 1));
        assert_ne!(s0, s1, "two shards at the same (pass, attempt) must differ");
        // Shard 0 is the plain single-engine epoch.
        assert_eq!(s0, flips(FaultCtx::at(&plan, 3, 1)));
        // Deterministic per shard.
        assert_eq!(s1, flips(FaultCtx::for_shard(&plan, 1, 3, 1)));
        // A rollback on one shard re-draws that shard only.
        let s1_retry = flips(FaultCtx::for_shard(&plan, 1, 3, 2));
        assert_ne!(s1, s1_retry);
    }

    #[test]
    fn rate_bounds_behave() {
        let never = FaultPlan::new(1).with_fault(sr_transient(0.0));
        let always = FaultPlan::new(1).with_fault(sr_transient(1.0));
        let nc = FaultCtx::new(&never);
        let ac = FaultCtx::new(&always);
        for p in 0..64 {
            assert_eq!(nc.corrupt(Component::SrCell, 1, 0, p, 8, 0), 0);
            assert_eq!(ac.corrupt(Component::SrCell, 1, 0, p, 8, 0), 0b100);
        }
        assert_eq!(never.stats().total(), 0);
        assert_eq!(always.stats().sr_cell, 64);
    }

    #[test]
    fn out_of_range_bits_never_fire() {
        let plan = FaultPlan::new(5).with_fault(Fault {
            component: Component::Link,
            chip: None,
            cell: None,
            kind: FaultKind::Transient { bit: 9, rate: 1.0 },
        });
        let ctx = FaultCtx::new(&plan);
        // u8 sites: bit 9 does not exist in the datapath.
        assert_eq!(ctx.corrupt_site(Component::Link, 0, 0, 0, 0u8), 0);
        assert_eq!(plan.stats().total(), 0);
    }

    #[test]
    fn cell_scoping_hits_only_the_named_register() {
        let plan = FaultPlan::new(9).with_fault(Fault {
            component: Component::SrCell,
            chip: None,
            cell: Some(5),
            kind: FaultKind::StuckAt { bit: 1, value: true },
        });
        let ctx = FaultCtx::new(&plan);
        assert_eq!(ctx.corrupt(Component::SrCell, 0, 5, 0, 8, 0), 0b10);
        assert_eq!(ctx.corrupt(Component::SrCell, 0, 4, 1, 8, 0), 0);
    }

    #[test]
    fn observed_rate_tracks_configured_rate() {
        let plan = FaultPlan::new(77).with_fault(sr_transient(0.1));
        let ctx = FaultCtx::new(&plan);
        let n = 20_000u64;
        let fired = (0..n).filter(|&p| ctx.corrupt(Component::SrCell, 1, 0, p, 8, 0) != 0).count();
        let observed = fired as f64 / n as f64;
        assert!((0.08..=0.12).contains(&observed), "observed {observed}");
    }
}
