//! The Sternberg partitioned architecture (SPA) engine — §5.
//!
//! The lattice is divided into "adjacent, non-overlapping columnar
//! slices, and a fully serial processor is assigned to each slice …
//! augmented to provide a bidirectional synchronous communication
//! channel between adjacent partitions so that sites whose neighborhoods
//! do not lie entirely in the storage of a single PE can be computed
//! correctly and in step."
//!
//! Realization: each slice-level PE is a [`LineBufferStage`] over its
//! slice *plus one halo column on each side*; the halo cells are what
//! the side channel delivers from the neighboring slice (charged at `E`
//! bits per boundary site, the number of bits needed to complete a
//! split neighborhood — 3 for FHP). Slices run in lockstep on the
//! row-staggered memory schedule (§6.3), one site per slice per tick, so
//! a depth-`k`, `⌈L/W⌉`-slice machine updates `k·L/W` sites per tick.

use crate::faults::{Component, FaultCtx, FaultHook};
use crate::metrics::EngineReport;
use crate::stage::{LineBufferStage, StageConfig};
use lattice_core::bits::Traffic;
use lattice_core::units::{u64_from_usize, Cells, Sites, Ticks};
use lattice_core::{Coord, Grid, LatticeError, Rule, Shape, State};

/// Per-run options for [`SpaEngine::run_opts`] beyond the engine
/// geometry: the global stream origin (so a farmed or halo-framed
/// sub-lattice presents true lattice coordinates to coordinate-dependent
/// rules like FHP) and fault injection with a chip-id offset (so a farm
/// can give each board's slice-PEs distinct physical chip ids).
#[derive(Debug, Clone, Copy, Default)]
pub struct SpaRunOptions<'p> {
    /// Global coordinate of the grid's `(0, 0)`; may wrap (e.g.
    /// `usize::MAX` ≡ −1), exactly as
    /// [`crate::pipeline::Pipeline::run_at`].
    pub origin: (usize, usize),
    /// Fault injection context; `None` runs fault-free.
    pub faults: Option<FaultCtx<'p>>,
    /// Added to every slice-PE chip id (`chip_offset + level·slices +
    /// slice`), keeping per-board silicon distinct in a farm.
    pub chip_offset: usize,
}

/// The SPA engine configuration.
#[derive(Debug, Clone, Copy)]
pub struct SpaEngine {
    /// Slice width `W` (must divide the lattice width).
    pub slice_width: usize,
    /// Pipeline depth `k` (generations per pass).
    pub depth: usize,
    /// Side-channel bits per boundary site (`E`; 3 for FHP in the
    /// paper's accounting).
    pub e_bits: u32,
}

impl SpaEngine {
    /// Creates an engine with the paper's `E = 3`.
    pub fn new(slice_width: usize, depth: usize) -> Self {
        SpaEngine { slice_width, depth, e_bits: 3 }
    }

    /// Overrides the side-channel width.
    pub fn with_e_bits(mut self, e: u32) -> Self {
        self.e_bits = e;
        self
    }

    /// Runs `depth` generations of `rule` over `grid` (null boundary),
    /// slice-pipelined, and reports measured costs.
    ///
    /// Bit-exactness contract: equals the reference `evolve`.
    pub fn run<R: Rule>(
        &self,
        rule: &R,
        grid: &Grid<R::S>,
        t0: u64,
    ) -> Result<EngineReport<R::S>, LatticeError> {
        self.run_with_faults(rule, grid, t0, None)
    }

    /// [`SpaEngine::run`] with fault injection: each slice-PE is a chip
    /// (chip id `level · slices + slice`) whose shift-register cells and
    /// PE outputs take [`Component::SrCell`] / [`Component::PeOutput`]
    /// faults, and whose halo imports take [`Component::SideChannel`]
    /// faults keyed by the side-channel stream position.
    pub fn run_with_faults<R: Rule>(
        &self,
        rule: &R,
        grid: &Grid<R::S>,
        t0: u64,
        faults: Option<FaultCtx<'_>>,
    ) -> Result<EngineReport<R::S>, LatticeError> {
        self.run_opts(rule, grid, t0, SpaRunOptions { faults, ..SpaRunOptions::default() })
    }

    /// [`SpaEngine::run`] with full [`SpaRunOptions`]: a global stream
    /// origin and fault injection under a chip-id offset.
    pub fn run_opts<R: Rule>(
        &self,
        rule: &R,
        grid: &Grid<R::S>,
        t0: u64,
        opts: SpaRunOptions<'_>,
    ) -> Result<EngineReport<R::S>, LatticeError> {
        let faults = opts.faults;
        let fault_base = faults.map(|c| c.plan.stats()).unwrap_or_default();
        let shape = grid.shape();
        if shape.rank() != 2 {
            return Err(LatticeError::InvalidConfig("SPA slices a 2-D lattice".into()));
        }
        if self.depth == 0 || self.slice_width == 0 {
            return Err(LatticeError::InvalidConfig("SPA needs depth ≥ 1 and W ≥ 1".into()));
        }
        let (rows, cols) = (shape.rows(), shape.cols());
        if cols % self.slice_width != 0 {
            return Err(LatticeError::InvalidConfig(format!(
                "slice width {} must divide the lattice width {cols}",
                self.slice_width
            )));
        }
        let w = self.slice_width;
        let n_slices = cols / w;
        let d_bits = R::S::BITS;

        let mut memory = Traffic::new();
        let mut pins = Traffic::new();
        let mut side = Traffic::new();
        let mut sr_cells = 0u64;

        // Level by level; each level is computed by per-slice stages
        // over halo-augmented slice streams. The halo cells model the
        // side channel; interior slice cells model the pipeline stream.
        let halo_shape = Shape::grid2(rows, w + 2)?;
        let mut current = grid.clone();
        let mut side_pos = 0u64;
        for level in 0..self.depth {
            let gen = t0 + level as u64;
            let mut next = Grid::new(shape);
            for s in 0..n_slices {
                let col0 = s * w; // grid-local first column of the slice
                let chip = opts.chip_offset + level * n_slices + s;
                let cfg = StageConfig {
                    shape: halo_shape,
                    width: 1,
                    fill: R::S::default(),
                    gen,
                    // Column origin shifted one left for the halo; use
                    // wrapping to represent global column -1 for slice 0
                    // (its halo column is boundary fill and never enters
                    // a window of an interior output's own column, but
                    // halo-column *outputs* are discarded anyway). The
                    // caller's origin shifts both axes on top of that.
                    origin: (opts.origin.0, opts.origin.1.wrapping_add(col0).wrapping_sub(1)),
                };
                let mut stage = LineBufferStage::new(rule, cfg)?;
                if let Some(ctx) = faults {
                    stage = stage.with_faults(FaultHook { ctx, chip, offchip_from: None });
                }
                sr_cells = sr_cells.max(cfg.required_cells() as u64);

                // Drive the slice-local halo stream.
                let n_local = rows * (w + 2);
                let mut out = Vec::with_capacity(n_local);
                let mut fed = 0usize;
                while !stage.done() {
                    let take = usize::from(fed < n_local);
                    if take == 1 {
                        let r = fed / (w + 2);
                        let lc = fed % (w + 2);
                        let gc = (col0 + lc).wrapping_sub(1); // global col, may underflow
                        let site = if lc == 0 || lc == w + 1 {
                            // Halo column: side-channel import (or null
                            // at the lattice edge).
                            if gc < cols {
                                side.record_in(1, self.e_bits);
                                let mut v = current.get(Coord::c2(r, gc));
                                if let Some(ctx) = faults {
                                    v = ctx.corrupt_site(
                                        Component::SideChannel,
                                        chip,
                                        0,
                                        side_pos,
                                        v,
                                    );
                                }
                                side_pos += 1;
                                v
                            } else {
                                R::S::default()
                            }
                        } else {
                            // Pipeline stream: from memory (level 0) or
                            // the previous level's chip (pins).
                            if level == 0 {
                                memory.record_in(1, d_bits);
                            } else {
                                pins.record_in(1, d_bits);
                            }
                            current.get(Coord::c2(r, gc))
                        };
                        stage.tick(&[site], &mut out);
                    } else {
                        stage.tick(&[], &mut out);
                    }
                    fed += take;
                }
                // Keep interior outputs; export charged per site.
                for (i, &v) in out.iter().enumerate() {
                    let r = i / (w + 2);
                    let lc = i % (w + 2);
                    if lc == 0 || lc == w + 1 {
                        continue;
                    }
                    let gc = col0 + lc - 1;
                    if level + 1 == self.depth {
                        memory.record_out(1, d_bits);
                    } else {
                        pins.record_out(1, d_bits);
                    }
                    next.set(Coord::c2(r, gc), v);
                }
            }
            current = next;
        }

        // Tick accounting (lockstep schedule): per pass each slice
        // streams rows·W interior sites at 1/tick, plus per-level fill
        // latency of ≈ (W+2)+2 and the one-row stagger between the first
        // and last slice.
        let per_level_latency = (w + 2 + 2) as u64;
        let ticks =
            (rows * w) as u64 + self.depth as u64 * per_level_latency + ((n_slices - 1) * w) as u64;

        Ok(EngineReport {
            grid: current,
            generations: self.depth as u64,
            updates: Sites::new(u64_from_usize(rows * cols * self.depth)),
            ticks: Ticks::new(ticks),
            memory_traffic: memory,
            pin_traffic: pins,
            side_traffic: side,
            offchip_sr_traffic: Traffic::new(),
            sr_cells_per_stage: Cells::new(sr_cells),
            stages: (self.depth * n_slices) as u32,
            width: 1,
            faults: faults.map(|c| c.plan.stats().since(fault_base)).unwrap_or_default(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lattice_core::{evolve, Boundary};
    use lattice_gas::{FhpRule, FhpVariant, HppRule};

    #[test]
    fn spa_is_bit_exact_hpp() {
        let shape = Shape::grid2(10, 24).unwrap();
        let g = lattice_gas::init::random_hpp(shape, 0.4, 11).unwrap();
        let rule = HppRule::new();
        let reference = evolve(&g, &rule, Boundary::null(), 0, 3);
        for w in [2usize, 4, 6, 8, 12, 24] {
            let report = SpaEngine::new(w, 3).run(&rule, &g, 0).unwrap();
            assert_eq!(report.grid, reference, "W={w}");
        }
    }

    #[test]
    fn spa_is_bit_exact_fhp_with_global_coords() {
        // FHP chirality hashes global coordinates; slicing must not
        // change the microstate.
        let shape = Shape::grid2(8, 20).unwrap();
        let g = lattice_gas::init::random_fhp(shape, FhpVariant::II, 0.4, 5, false).unwrap();
        let rule = FhpRule::new(FhpVariant::II, 77);
        let reference = evolve(&g, &rule, Boundary::null(), 4, 2);
        for w in [4usize, 5, 10, 20] {
            let report = SpaEngine::new(w, 2).run(&rule, &g, 4).unwrap();
            assert_eq!(report.grid, reference, "W={w}");
        }
    }

    #[test]
    fn origin_shifted_run_matches_periodic_reference() {
        // The same host-side halo framing `halo::run_periodic` uses for
        // the WSA pipeline, driven through the SPA engine: the (−1, −1)
        // origin presents true torus coordinates, so a wrapped FHP rule
        // is bit-exact. Even rows only (hex torus constraint).
        use crate::halo::{frame_periodic, unframe};
        use lattice_gas::{FhpRule, FhpVariant};
        let (rows, cols) = (8usize, 10usize);
        let shape = Shape::grid2(rows, cols).unwrap();
        let g0 = lattice_gas::init::random_fhp(shape, FhpVariant::III, 0.4, 12, true).unwrap();
        let rule = FhpRule::new(FhpVariant::III, 7).with_wrap(rows, cols);
        let origin = (0usize.wrapping_sub(1), 0usize.wrapping_sub(1));
        let mut g = g0.clone();
        for gen in 0..4u64 {
            let framed = frame_periodic(&g).unwrap();
            let opts = SpaRunOptions { origin, ..SpaRunOptions::default() };
            let report = SpaEngine::new(4, 1).run_opts(&rule, &framed, gen, opts).unwrap();
            g = unframe(&report.grid, shape).unwrap();
        }
        assert_eq!(g, evolve(&g0, &rule, Boundary::Periodic, 0, 4));
    }

    #[test]
    fn chip_offset_relocates_faults() {
        use crate::faults::{Component, Fault, FaultKind, FaultPlan};
        let shape = Shape::grid2(8, 16).unwrap();
        let g = lattice_gas::init::random_hpp(shape, 0.3, 2).unwrap();
        let rule = HppRule::new();
        // Stuck-at on physical chip 4: invisible at offset 0 (the run
        // only owns chips 0..4), active when the offset maps a slice-PE
        // onto it.
        let plan = FaultPlan::new(1).with_fault(Fault {
            component: Component::PeOutput,
            chip: Some(4),
            cell: None,
            kind: FaultKind::StuckAt { bit: 0, value: true },
        });
        let engine = SpaEngine::new(4, 1); // chips 0..4 at offset 0
        let clean = engine
            .run_opts(
                &rule,
                &g,
                0,
                SpaRunOptions { faults: Some(FaultCtx::new(&plan)), ..SpaRunOptions::default() },
            )
            .unwrap();
        assert_eq!(clean.faults.total(), 0, "chip 4 is not in this board");
        let hit = engine
            .run_opts(
                &rule,
                &g,
                0,
                SpaRunOptions {
                    faults: Some(FaultCtx::new(&plan)),
                    chip_offset: 4,
                    ..SpaRunOptions::default()
                },
            )
            .unwrap();
        assert!(hit.faults.pe_output > 0, "offset 4 maps slice 0 onto chip 4");
    }

    #[test]
    fn side_channel_traffic_scales_with_boundaries() {
        let shape = Shape::grid2(16, 32).unwrap();
        let g = lattice_gas::init::random_hpp(shape, 0.3, 1).unwrap();
        let rule = HppRule::new();
        let narrow = SpaEngine::new(4, 1).run(&rule, &g, 0).unwrap();
        let wide = SpaEngine::new(16, 1).run(&rule, &g, 0).unwrap();
        // Interior halo imports: (2·slices − 2) columns of `rows` sites,
        // E bits each.
        let expect = |slices: u128| (2 * slices - 2) * 16 * 3;
        assert_eq!(narrow.side_traffic.bits_in, expect(8));
        assert_eq!(wide.side_traffic.bits_in, expect(2));
        assert!(narrow.side_traffic.bits_in > wide.side_traffic.bits_in);
    }

    #[test]
    fn memory_traffic_is_one_pass_regardless_of_depth() {
        let shape = Shape::grid2(8, 16).unwrap();
        let g = lattice_gas::init::random_hpp(shape, 0.3, 1).unwrap();
        let rule = HppRule::new();
        let r = SpaEngine::new(4, 3).run(&rule, &g, 0).unwrap();
        let n = shape.len() as u128;
        assert_eq!(r.memory_traffic.bits_in, n * 8);
        assert_eq!(r.memory_traffic.bits_out, n * 8);
        // Intermediate levels ride the pipeline pins.
        assert_eq!(r.pin_traffic.bits_in, 2 * n * 8);
    }

    #[test]
    fn sr_cells_are_two_slice_lines() {
        let shape = Shape::grid2(8, 40).unwrap();
        let g = lattice_gas::init::random_hpp(shape, 0.3, 1).unwrap();
        let r = SpaEngine::new(10, 1).run(&HppRule::new(), &g, 0).unwrap();
        // 2(W+2)+3 cells — the measured counterpart of the paper's
        // (2W + 9) per-PE figure.
        assert_eq!(r.sr_cells_per_stage, Cells::new(2 * 12 + 3));
    }

    #[test]
    fn updates_per_tick_beats_wsa_per_chip_budget() {
        // The architectural point of SPA: many more updates per tick for
        // the same lattice, at the price of memory bandwidth.
        let shape = Shape::grid2(32, 64).unwrap();
        let g = lattice_gas::init::random_hpp(shape, 0.3, 9).unwrap();
        let rule = HppRule::new();
        let spa = SpaEngine::new(8, 4).run(&rule, &g, 0).unwrap();
        let wsa = crate::pipeline::Pipeline::wide(4, 4).run(&rule, &g, 0).unwrap();
        assert!(spa.updates_per_tick() > wsa.updates_per_tick());
    }

    #[test]
    fn invalid_configs_are_rejected() {
        let shape = Shape::grid2(8, 16).unwrap();
        let g = lattice_gas::init::random_hpp(shape, 0.3, 1).unwrap();
        let rule = HppRule::new();
        assert!(SpaEngine::new(5, 1).run(&rule, &g, 0).is_err()); // 5 ∤ 16
        assert!(SpaEngine::new(0, 1).run(&rule, &g, 0).is_err());
        assert!(SpaEngine::new(4, 0).run(&rule, &g, 0).is_err());
        let g1 = Grid::<u8>::new(Shape::line(8).unwrap());
        assert!(SpaEngine::new(4, 1).run(&rule, &g1, 0).is_err());
    }
}
