//! Tick-level lockstep SPA: the row-staggered schedule, cycle by cycle.
//!
//! [`crate::spa::SpaEngine`] computes SPA results level-by-level and
//! derives its tick count analytically. This module instead runs the
//! machine *clock tick by clock tick* on the schedule the hardware
//! actually used — §6.3's "row-staggered pattern":
//!
//! * slice `s`'s stream is delayed `s·W` ticks behind slice `s−1`'s
//!   (exactly one lattice row), so every cross-boundary datum a slice
//!   needs has arrived at its neighbor one tick before it is consumed;
//! * each slice-PE is a serial line-buffer stage over its own
//!   `W`-column stream (`2W + 3` cells) whose window lookups at column
//!   0 / `W − 1` reach across the side channel into the neighbor PE's
//!   shift register (charged at `E` bits per boundary site, as in the
//!   paper's pin accounting);
//! * every pipeline level adds a fixed `W + 2` ticks of latency, so a
//!   depth-`k` machine on `⌈L/W⌉` slices sustains `k·L/W` updates/tick
//!   once full — the §6.2 throughput formula, now *measured*.
//!
//! Verification contract: bit-exact against the reference engine and
//! against [`SpaEngine`], with tick counts matching the closed form
//! `rows·W + (slices−1)·W + depth·(W+2)` up to the drain margin.
//!
//! [`SpaEngine`]: crate::spa::SpaEngine

use crate::metrics::EngineReport;
use lattice_core::bits::Traffic;
use lattice_core::units::{Cells, Sites, Ticks};
use lattice_core::window::WINDOW_MAX;
use lattice_core::{Coord, Grid, LatticeError, Rule, State, Window};

/// Per-stage latency in ticks: the serial window margin over a
/// `W`-column stream.
fn level_latency(w: usize) -> usize {
    w + 2
}

/// One slice-PE at one pipeline level: a ring of its slice's last
/// `2W + 3` sites plus the machinery to emit one output per tick.
struct SlicePe<S: State> {
    ring: Vec<S>,
    received: usize,
    emitted: usize,
    peak: usize,
}

impl<S: State> SlicePe<S> {
    fn new(w: usize) -> Self {
        // Architectural requirement 2W + 3; +4 margin for the index
        // arithmetic at the retention edge.
        SlicePe { ring: vec![S::default(); 2 * w + 7], received: 0, emitted: 0, peak: 0 }
    }

    fn push(&mut self, v: S) {
        let cap = self.ring.len();
        self.ring[self.received % cap] = v;
        self.received += 1;
    }

    /// Within-stream cell at absolute position `p` (must be retained).
    fn cell(&self, p: usize) -> S {
        debug_assert!(p < self.received, "future read");
        debug_assert!(p + self.ring.len() > self.received, "ring under-run p={p}");
        self.ring[p % self.ring.len()]
    }

    fn note_occupancy(&mut self, oldest_needed: usize) {
        self.peak = self.peak.max(self.received - oldest_needed.min(self.received));
    }
}

/// The lockstep SPA machine.
#[derive(Debug, Clone, Copy)]
pub struct SpaLockstep {
    /// Slice width `W` (must divide the lattice width).
    pub slice_width: usize,
    /// Pipeline depth `k`.
    pub depth: usize,
    /// Side-channel bits per boundary site (paper: 3).
    pub e_bits: u32,
}

impl SpaLockstep {
    /// Creates the machine with the paper's `E = 3`.
    pub fn new(slice_width: usize, depth: usize) -> Self {
        SpaLockstep { slice_width, depth, e_bits: 3 }
    }

    /// Runs `depth` generations over `grid` (null boundary), tick by
    /// tick, and reports measured costs.
    pub fn run<R: Rule>(
        &self,
        rule: &R,
        grid: &Grid<R::S>,
        t0: u64,
    ) -> Result<EngineReport<R::S>, LatticeError> {
        let shape = grid.shape();
        if shape.rank() != 2 {
            return Err(LatticeError::InvalidConfig("SPA slices a 2-D lattice".into()));
        }
        let (rows, cols) = (shape.rows(), shape.cols());
        let w = self.slice_width;
        if w == 0 || self.depth == 0 {
            return Err(LatticeError::InvalidConfig("SPA needs W ≥ 1 and depth ≥ 1".into()));
        }
        if cols % w != 0 {
            return Err(LatticeError::InvalidConfig(format!(
                "slice width {w} must divide the lattice width {cols}"
            )));
        }
        let n_slices = cols / w;
        let per_slice = rows * w;
        let lat = level_latency(w);
        let d_bits = R::S::BITS;

        let mut pes: Vec<Vec<SlicePe<R::S>>> =
            (0..self.depth).map(|_| (0..n_slices).map(|_| SlicePe::new(w)).collect()).collect();
        let mut out = Grid::new(shape);
        let mut collected = 0usize;
        let mut memory = Traffic::new();
        let mut pins = Traffic::new();
        let mut side = Traffic::new();
        let mut updates = 0u64;
        let mut tick = 0u64;
        // Output slots written by level j this tick, read by level j+1.
        let mut bus: Vec<Vec<Option<R::S>>> = vec![vec![None; n_slices]; self.depth + 1];

        let budget =
            (n_slices * w + rows * w + self.depth * lat + 16) as u64 * 2 * (rows.max(4) as u64);
        while collected < rows * cols {
            tick += 1;
            if tick > budget {
                return Err(LatticeError::InvalidConfig("lockstep SPA wedged (bug)".into()));
            }
            // Memory feed (level 0): slice s ingests within-index
            // τ − 1 − s·W on the staggered schedule.
            #[allow(clippy::needless_range_loop)] // s indexes two parallel arrays
            for s in 0..n_slices {
                bus[0][s] = None;
                let offset = (s * w) as u64;
                if tick > offset {
                    let p = (tick - 1 - offset) as usize;
                    if p < per_slice {
                        let (r, lc) = (p / w, p % w);
                        let v = grid.get(Coord::c2(r, s * w + lc));
                        memory.record_in(1, d_bits);
                        bus[0][s] = Some(v);
                    }
                }
            }
            for level in 0..self.depth {
                // Ingest this tick's inputs.
                for s in 0..n_slices {
                    if let Some(v) = bus[level][s] {
                        pins.record_in(1, d_bits);
                        pes[level][s].push(v);
                    }
                    bus[level + 1][s] = None;
                }
                // Emit: within-index i once every window datum exists —
                // own stream to i + W + 2, and (at boundary columns) the
                // neighbor stream to row r + 1. In steady state the
                // stagger makes these automatic; in the drain they bind.
                for s in 0..n_slices {
                    let i = pes[level][s].emitted;
                    if i >= per_slice {
                        continue;
                    }
                    let (r, c) = (i / w, i % w);
                    let need = (i + lat).min(per_slice);
                    if pes[level][s].received < need {
                        continue;
                    }
                    if c == 0 && s > 0 {
                        let left_need = ((r + 1) * w + w).min(per_slice);
                        if pes[level][s - 1].received < left_need {
                            continue;
                        }
                    }
                    if c == w - 1 && s + 1 < n_slices {
                        let right_need = ((r + 1) * w + 1).min(per_slice);
                        if pes[level][s + 1].received < right_need {
                            continue;
                        }
                    }
                    let gen = t0 + level as u64;
                    let gc = s * w + c;
                    let mut cells = [R::S::default(); WINDOW_MAX];
                    let mut idx = 0;
                    for dr in -1isize..=1 {
                        for dc in -1isize..=1 {
                            let (rr, cc) = (r as isize + dr, gc as isize + dc);
                            cells[idx] =
                                if rr < 0 || cc < 0 || rr >= rows as isize || cc >= cols as isize {
                                    R::S::default()
                                } else {
                                    let (rr, cc) = (rr as usize, cc as usize);
                                    let ns = cc / w;
                                    let p = rr * w + cc % w;
                                    if ns == s {
                                        pes[level][s].cell(p)
                                    } else {
                                        // Side channel: the neighbor's shift
                                        // register, E bits per site.
                                        side.record_in(1, self.e_bits);
                                        pes[level][ns].cell(p)
                                    }
                                };
                            idx += 1;
                        }
                    }
                    let window = Window::from_cells(2, Coord::c2(r, gc), gen, cells);
                    let y = rule.update(&window);
                    updates += 1;
                    pes[level][s].emitted += 1;
                    // Oldest window cell: (r-1, c-1) = i - W - 1.
                    let oldest = i.saturating_sub(w + 1);
                    pes[level][s].note_occupancy(oldest);
                    pins.record_out(1, d_bits);
                    if level + 1 == self.depth {
                        memory.record_out(1, d_bits);
                        out.set(Coord::c2(r, gc), y);
                        collected += 1;
                    } else {
                        bus[level + 1][s] = Some(y);
                    }
                }
            }
        }

        let peak = Cells::new(
            pes.iter().flat_map(|lvl| lvl.iter()).map(|pe| pe.peak as u64).max().unwrap_or(0),
        );
        Ok(EngineReport {
            grid: out,
            generations: self.depth as u64,
            updates: Sites::new(updates),
            ticks: Ticks::new(tick),
            memory_traffic: memory,
            pin_traffic: pins,
            side_traffic: side,
            offchip_sr_traffic: Traffic::new(),
            sr_cells_per_stage: peak,
            stages: (self.depth * n_slices) as u32,
            width: 1,
            // The lockstep machine is a timing cross-check and is not
            // instrumented for injection; use [`crate::spa::SpaEngine`]
            // for fault studies.
            faults: crate::faults::FaultStats::default(),
        })
    }

    /// The closed-form tick count the machine should achieve:
    /// stream length + slice stagger + pipeline fill.
    pub fn expected_ticks(&self, rows: usize, cols: usize) -> u64 {
        let w = self.slice_width;
        let n_slices = cols / w;
        (rows * w + (n_slices - 1) * w + self.depth * level_latency(w)) as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spa::SpaEngine;
    use lattice_core::{evolve, Boundary, Shape};
    use lattice_gas::{FhpRule, FhpVariant, HppRule};

    #[test]
    fn lockstep_is_bit_exact_hpp() {
        let shape = Shape::grid2(10, 24).unwrap();
        let g = lattice_gas::init::random_hpp(shape, 0.4, 11).unwrap();
        let rule = HppRule::new();
        for (w, depth) in [(4usize, 1usize), (6, 2), (8, 3), (12, 2), (24, 2)] {
            let reference = evolve(&g, &rule, Boundary::null(), 0, depth as u64);
            let report = SpaLockstep::new(w, depth).run(&rule, &g, 0).unwrap();
            assert_eq!(report.grid, reference, "W={w} depth={depth}");
        }
    }

    #[test]
    fn lockstep_is_bit_exact_fhp() {
        let shape = Shape::grid2(8, 20).unwrap();
        let g = lattice_gas::init::random_fhp(shape, FhpVariant::III, 0.4, 5, false).unwrap();
        let rule = FhpRule::new(FhpVariant::III, 77);
        let reference = evolve(&g, &rule, Boundary::null(), 4, 3);
        let report = SpaLockstep::new(5, 3).run(&rule, &g, 4).unwrap();
        assert_eq!(report.grid, reference);
    }

    #[test]
    fn lockstep_agrees_with_transactional_spa() {
        let shape = Shape::grid2(12, 32).unwrap();
        let g = lattice_gas::init::random_fhp(shape, FhpVariant::I, 0.35, 9, false).unwrap();
        let rule = FhpRule::new(FhpVariant::I, 3);
        let a = SpaLockstep::new(8, 2).run(&rule, &g, 0).unwrap();
        let b = SpaEngine::new(8, 2).run(&rule, &g, 0).unwrap();
        assert_eq!(a.grid, b.grid);
        // Same memory volume; side-channel volumes agree (both count E
        // bits per cross-boundary site read; the lockstep machine reads
        // three rows per boundary column instead of importing a halo
        // column once, so it is ≥).
        assert_eq!(a.memory_traffic.bits_in, b.memory_traffic.bits_in);
        assert_eq!(a.memory_traffic.bits_out, b.memory_traffic.bits_out);
        assert!(a.side_traffic.bits_in >= b.side_traffic.bits_in);
    }

    #[test]
    fn tick_count_matches_closed_form() {
        let shape = Shape::grid2(16, 32).unwrap();
        let g = lattice_gas::init::random_hpp(shape, 0.3, 2).unwrap();
        let rule = HppRule::new();
        for (w, depth) in [(8usize, 1usize), (8, 3), (16, 2)] {
            let m = SpaLockstep::new(w, depth);
            let report = m.run(&rule, &g, 0).unwrap();
            let expect = m.expected_ticks(16, 32);
            let diff = report.ticks.abs_diff(Ticks::new(expect));
            assert!(diff <= 4, "W={w} k={depth}: {} vs {expect}", report.ticks);
        }
    }

    #[test]
    fn throughput_reaches_k_slices_per_tick() {
        // Long stream amortizes fill: updates/tick → k·L/W.
        let shape = Shape::grid2(64, 32).unwrap();
        let g = lattice_gas::init::random_hpp(shape, 0.3, 2).unwrap();
        let rule = HppRule::new();
        let report = SpaLockstep::new(8, 3).run(&rule, &g, 0).unwrap();
        let model = f64::from(3u16 * 32 / 8);
        let measured = report.updates_per_tick().get();
        assert!(measured > 0.85 * model && measured <= model, "{measured} vs {model}");
    }

    #[test]
    fn pe_storage_is_two_slice_lines() {
        let shape = Shape::grid2(16, 30).unwrap();
        let g = lattice_gas::init::random_hpp(shape, 0.3, 2).unwrap();
        let report = SpaLockstep::new(10, 2).run(&HppRule::new(), &g, 0).unwrap();
        // 2W + 3 ± the measurement margin.
        assert!(
            (2u64 * 10..=2 * 10 + 7).contains(&report.sr_cells_per_stage.get()),
            "{}",
            report.sr_cells_per_stage
        );
    }

    #[test]
    fn invalid_configs_rejected() {
        let shape = Shape::grid2(8, 16).unwrap();
        let g = lattice_gas::init::random_hpp(shape, 0.3, 1).unwrap();
        let rule = HppRule::new();
        assert!(SpaLockstep::new(5, 1).run(&rule, &g, 0).is_err());
        assert!(SpaLockstep::new(0, 1).run(&rule, &g, 0).is_err());
        assert!(SpaLockstep::new(4, 0).run(&rule, &g, 0).is_err());
    }
}
