//! The complete system: host + memory + engine, over many passes.
//!
//! The paper's machines (figure 1) are a pipeline hanging off "a
//! general-purpose host machine for support": the host holds the
//! lattice in main memory and streams it through the engine, `k`
//! generations per pass, as many passes as the experiment needs. This
//! module ties together the engine simulators, the bandwidth-limited
//! [`HostLink`], and the pass loop, reporting end-to-end wall-clock
//! estimates — the quantity §8's "approximately 1 million site-updates
//! per second from the prototype" is about.

use crate::memory::HostLink;
use crate::metrics::EngineReport;
use crate::pipeline::Pipeline;
use lattice_core::bits::Traffic;
use lattice_core::{Grid, LatticeError, Rule};

/// A host-attached lattice engine.
#[derive(Debug, Clone, Copy)]
pub struct HostSystem {
    /// The pipeline configuration (width, depth per pass).
    pub engine: Pipeline,
    /// The host's memory link.
    pub link: HostLink,
    /// Engine clock, Hz.
    pub clock_hz: f64,
}

/// End-to-end run summary.
#[derive(Debug, Clone)]
pub struct SystemRun<S: lattice_core::State> {
    /// Final lattice.
    pub grid: Grid<S>,
    /// Generations computed.
    pub generations: u64,
    /// Passes through the engine.
    pub passes: u64,
    /// Engine ticks summed over passes.
    pub ticks: u64,
    /// Total host-memory traffic.
    pub memory_traffic: Traffic,
    /// Duty cycle imposed by the link (1.0 = never stalled).
    pub duty_cycle: f64,
    /// Estimated wall-clock seconds including stalls.
    pub seconds: f64,
}

impl<S: lattice_core::State> SystemRun<S> {
    /// Realized update rate, updates per second.
    pub fn updates_per_second(&self, sites: u64) -> f64 {
        if self.seconds == 0.0 {
            0.0
        } else {
            (self.generations * sites) as f64 / self.seconds
        }
    }
}

impl HostSystem {
    /// Runs `generations` of `rule` over `grid` in passes of the
    /// engine's depth (the final pass may be shallower), starting at
    /// generation `t0` (stochastic rules stamp chirality by absolute
    /// generation, so resuming a run must pass the right `t0`).
    pub fn run<R: Rule>(
        &self,
        rule: &R,
        grid: &Grid<R::S>,
        t0: u64,
        mut generations: u64,
    ) -> Result<SystemRun<R::S>, LatticeError> {
        let mut current = grid.clone();
        let t_start = t0;
        let t_end = t0 + generations;
        let mut t0 = t0;
        let mut passes = 0u64;
        let mut ticks = 0u64;
        let mut memory = Traffic::new();
        let mut demand_sum = 0.0f64;
        while generations > 0 {
            let depth = (self.engine.depth as u64).min(generations) as usize;
            let report: EngineReport<R::S> =
                Pipeline::wide(self.engine.width, depth).run(rule, &current, t0)?;
            demand_sum += report.memory_bits_per_tick() * report.ticks as f64;
            ticks += report.ticks;
            memory.merge(report.memory_traffic);
            current = report.grid;
            t0 += depth as u64;
            generations -= depth as u64;
            passes += 1;
        }
        // Average demand over the run vs what the link supplies.
        let avg_demand = if ticks == 0 { 0.0 } else { demand_sum / ticks as f64 };
        let supply = self.link.bits_per_tick(self.clock_hz);
        let duty = if avg_demand <= 0.0 { 1.0 } else { (supply / avg_demand).min(1.0) };
        let seconds = ticks as f64 / (self.clock_hz * duty);
        debug_assert_eq!(t0, t_end);
        Ok(SystemRun {
            grid: current,
            generations: t_end - t_start,
            passes,
            ticks,
            memory_traffic: memory,
            duty_cycle: duty,
            seconds,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lattice_core::{evolve, Boundary, Shape};
    use lattice_gas::{init, FhpRule, FhpVariant};

    fn workload() -> (Grid<u8>, FhpRule) {
        let shape = Shape::grid2(32, 64).unwrap();
        let g = init::random_fhp(shape, FhpVariant::I, 0.3, 8, false).unwrap();
        (g, FhpRule::new(FhpVariant::I, 44))
    }

    #[test]
    fn multi_pass_is_bit_exact() {
        let (g, rule) = workload();
        let sys = HostSystem {
            engine: Pipeline::wide(2, 3),
            link: HostLink::new(1e9),
            clock_hz: 10e6,
        };
        // 7 generations = passes of 3 + 3 + 1, stitched with correct t0.
        let run = sys.run(&rule, &g, 0, 7).unwrap();
        let reference = evolve(&g, &rule, Boundary::null(), 0, 7);
        assert_eq!(run.grid, reference);
        assert_eq!(run.passes, 3);
        assert_eq!(run.generations, 7);
    }

    #[test]
    fn fast_link_runs_at_full_duty() {
        let (g, rule) = workload();
        let sys = HostSystem {
            engine: Pipeline::wide(2, 2),
            link: HostLink::new(40e6), // exactly the demand of P=2
            clock_hz: 10e6,
        };
        let run = sys.run(&rule, &g, 0, 4).unwrap();
        assert!(run.duty_cycle > 0.99, "{}", run.duty_cycle);
        // ≈ 20 M updates/s for the P = 2 chip, slightly less with fill.
        let ups = run.updates_per_second(32 * 64);
        assert!(ups > 15e6 && ups <= 40.1e6, "{ups}");
    }

    #[test]
    fn slow_link_derates_proportionally() {
        let (g, rule) = workload();
        let fast = HostSystem {
            engine: Pipeline::wide(2, 2),
            link: HostLink::new(40e6),
            clock_hz: 10e6,
        };
        let slow = HostSystem { link: HostLink::new(2e6), ..fast };
        let f = fast.run(&rule, &g, 0, 4).unwrap();
        let s = slow.run(&rule, &g, 0, 4).unwrap();
        assert_eq!(f.grid, s.grid, "bandwidth changes speed, never results");
        let ratio = f.updates_per_second(32 * 64) / s.updates_per_second(32 * 64);
        // §8's 20× derating, within fill-effect tolerance.
        assert!((18.0..=22.0).contains(&ratio), "derating {ratio}");
    }

    #[test]
    fn deeper_passes_cut_memory_traffic() {
        let (g, rule) = workload();
        let shallow = HostSystem {
            engine: Pipeline::wide(1, 1),
            link: HostLink::new(1e9),
            clock_hz: 10e6,
        };
        let deep = HostSystem { engine: Pipeline::wide(1, 6), ..shallow };
        let a = shallow.run(&rule, &g, 0, 6).unwrap();
        let b = deep.run(&rule, &g, 0, 6).unwrap();
        assert_eq!(a.grid, b.grid);
        // 6 passes vs 1: 6× the lattice traffic — the whole point of
        // pipeline depth (and the software mirror of the pebbling bound:
        // more on-chip state, fewer main-memory touches).
        assert_eq!(a.memory_traffic.total(), 6 * b.memory_traffic.total());
    }
}
