//! The complete system: host + memory + engine, over many passes.
//!
//! The paper's machines (figure 1) are a pipeline hanging off "a
//! general-purpose host machine for support": the host holds the
//! lattice in main memory and streams it through the engine, `k`
//! generations per pass, as many passes as the experiment needs. This
//! module ties together the engine simulators, the bandwidth-limited
//! [`HostLink`], and the pass loop, reporting end-to-end wall-clock
//! estimates — the quantity §8's "approximately 1 million site-updates
//! per second from the prototype" is about.

use crate::faults::{FaultCtx, FaultPlan, FaultStats};
use crate::memory::HostLink;
use crate::metrics::EngineReport;
use crate::pipeline::{Pipeline, RunOptions};
use lattice_core::bits::Traffic;
use lattice_core::checkpoint::store::{ShardBlob, SnapshotSink};
use lattice_core::units::{
    u64_from_usize, usize_from_u64, BitsPerTick, Hz, Secs, Sites, SitesPerSec, Ticks,
};
use lattice_core::{checkpoint, Grid, LatticeError, Rule};

/// A host-attached lattice engine.
#[derive(Debug, Clone, Copy)]
pub struct HostSystem {
    /// The pipeline configuration (width, depth per pass).
    pub engine: Pipeline,
    /// The host's memory link.
    pub link: HostLink,
    /// Engine clock, Hz.
    pub clock_hz: f64,
}

impl HostSystem {
    /// The engine clock as a typed frequency.
    pub fn clock(&self) -> Hz {
        Hz::new(self.clock_hz)
    }
}

/// End-to-end run summary.
#[derive(Debug, Clone)]
pub struct SystemRun<S: lattice_core::State> {
    /// Final lattice.
    pub grid: Grid<S>,
    /// Generations computed.
    pub generations: u64,
    /// Passes through the engine.
    pub passes: u64,
    /// Engine ticks summed over passes.
    pub ticks: Ticks,
    /// Total host-memory traffic.
    pub memory_traffic: Traffic,
    /// Duty cycle imposed by the link (1.0 = never stalled).
    pub duty_cycle: f64,
    /// Estimated wall-clock time including stalls.
    pub seconds: Secs,
}

impl<S: lattice_core::State> SystemRun<S> {
    /// Realized update rate.
    pub fn updates_per_second(&self, sites: u64) -> SitesPerSec {
        Sites::new(self.generations.saturating_mul(sites)).per_sec(self.seconds)
    }
}

impl HostSystem {
    /// Runs `generations` of `rule` over `grid` in passes of the
    /// engine's depth (the final pass may be shallower), starting at
    /// generation `t0` (stochastic rules stamp chirality by absolute
    /// generation, so resuming a run must pass the right `t0`).
    pub fn run<R: Rule>(
        &self,
        rule: &R,
        grid: &Grid<R::S>,
        t0: u64,
        mut generations: u64,
    ) -> Result<SystemRun<R::S>, LatticeError> {
        let mut current = grid.clone();
        let t_start = t0;
        let t_end = t0 + generations;
        let mut t0 = t0;
        let mut passes = 0u64;
        let mut ticks = Ticks::ZERO;
        let mut memory = Traffic::new();
        let mut demand_sum = 0.0;
        while generations > 0 {
            let depth = usize_from_u64(u64_from_usize(self.engine.depth).min(generations));
            let report: EngineReport<R::S> =
                Pipeline::wide(self.engine.width, depth).run(rule, &current, t0)?;
            demand_sum += report.memory_bits_per_tick().get() * report.ticks.to_f64();
            ticks += report.ticks;
            memory.merge(report.memory_traffic);
            current = report.grid;
            t0 += u64_from_usize(depth);
            generations -= u64_from_usize(depth);
            passes += 1;
        }
        // Average demand over the run vs what the link supplies.
        let avg_demand = if ticks.is_zero() {
            BitsPerTick::ZERO
        } else {
            BitsPerTick::new(demand_sum / ticks.to_f64())
        };
        let supply = BitsPerTick::new(self.link.bits_per_tick(self.clock_hz));
        let duty =
            if avg_demand <= BitsPerTick::ZERO { 1.0 } else { (supply / avg_demand).min(1.0) };
        let seconds = ticks.secs_at(Hz::new(self.clock_hz * duty));
        debug_assert_eq!(t0, t_end);
        Ok(SystemRun {
            grid: current,
            generations: t_end - t_start,
            passes,
            ticks,
            memory_traffic: memory,
            duty_cycle: duty,
            seconds,
        })
    }
}

/// Recovery policy for [`HostSystem::run_with_recovery`].
#[derive(Debug, Clone, Copy)]
pub struct RecoveryConfig {
    /// Rollback-and-retry attempts per checkpoint window before the
    /// host escalates (degraded mode, or giving up).
    pub max_retries: u32,
    /// Passes between checkpoints (`1` = checkpoint every pass; larger
    /// values trade rollback distance for checkpoint bandwidth).
    pub checkpoint_every: u64,
    /// Whether the host may take a chip it has localized a permanent
    /// fault to out of service and continue at reduced pipeline depth.
    pub allow_degraded: bool,
    /// Shard (board) id when this host drives one slab of a farmed
    /// lattice; `0` for a standalone engine. The id is folded into every
    /// transient-fault epoch (via [`FaultCtx::for_shard`]) so two shards
    /// sharing a plan never draw identical faults from the same
    /// `(seed, pass, attempt)` tuple, and it phase-offsets the
    /// checkpoint cadence so a farm of hosts with `checkpoint_every > 1`
    /// doesn't burst every shard's checkpoint traffic on the same pass.
    pub shard: u64,
}

impl Default for RecoveryConfig {
    fn default() -> Self {
        RecoveryConfig { max_retries: 3, checkpoint_every: 1, allow_degraded: true, shard: 0 }
    }
}

/// What the recovery machinery did during a run.
///
/// The farm's escalation ladder (`lattice-farm`) maintains the
/// invariant that every `detected` event is answered by exactly one
/// action counter — `retransmits` (link ARQ), `local_rollbacks`
/// (one board rewound), `rollbacks` (whole machine rewound), or
/// `boards_retired` (degraded re-partitioning) — so on a successful
/// run `detected == retransmits + local_rollbacks + rollbacks +
/// boards_retired`; a failed run leaves exactly one unanswered
/// detection. Host-level recovery (`HostSystem`) uses only the
/// original counters; the ladder fields stay zero there.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RecoveryStats {
    /// Corruption detections (failed parity, audit, engine error, or a
    /// down worker).
    pub detected: u64,
    /// Rollbacks of the whole machine to the last checkpoint.
    pub rollbacks: u64,
    /// Checkpoints taken.
    pub checkpoints: u64,
    /// Total checkpoint bytes written.
    pub checkpoint_bytes: u64,
    /// Chips taken out of service (host degraded mode).
    pub bypassed_chips: u64,
    /// Halo frames retransmitted by link-level ARQ (farm ladder
    /// level 1: the cheapest answer to a detection).
    pub retransmits: u64,
    /// Single-board rollbacks that rewound one shard and replayed its
    /// buffered halos while its neighbors stalled (farm ladder level 2).
    pub local_rollbacks: u64,
    /// Boards retired by degraded re-partitioning (farm ladder
    /// level 4, after global rollback fails).
    pub boards_retired: u64,
}

/// A fault-tolerant run: the ordinary [`SystemRun`] plus what the fault
/// and recovery layers saw.
#[derive(Debug, Clone)]
pub struct FtRun<S: lattice_core::State> {
    /// The underlying run summary (grid, timing, traffic).
    pub run: SystemRun<S>,
    /// Fault events injected over the whole run, retries included.
    pub faults: FaultStats,
    /// Recovery actions taken.
    pub recovery: RecoveryStats,
    /// Chips still in service at the end (= configured depth unless
    /// degraded mode bypassed some).
    pub chips_in_service: usize,
}

/// Extracts the physical chip a corruption report localizes, if any.
/// Link-parity failures name their chip (`"chip N output link"`); audit
/// failures describe the whole lattice and cannot be localized.
fn suspect_chip(e: &LatticeError) -> Option<usize> {
    if let LatticeError::Corrupted { site, .. } = e {
        site.strip_prefix("chip ")
            .and_then(|rest| rest.split_whitespace().next())
            .and_then(|n| n.parse().ok())
    } else {
        None
    }
}

impl HostSystem {
    /// [`HostSystem::run`] hardened against hardware faults: periodic
    /// checkpoints, per-pass integrity checks, rollback-and-retry, and
    /// (optionally) degraded-mode operation.
    ///
    /// Per pass the host runs the engine with `plan`'s faults active at
    /// the current `(pass, attempt)` epoch, then applies `audit` to the
    /// pass's input and output lattices (e.g. a
    /// `lattice_gas::ConservationAudit` check, made into a closure so
    /// this crate stays gas-agnostic). Any engine error or audit
    /// violation triggers a rollback: the lattice and generation are
    /// restored from the last checkpoint (through the real
    /// [`checkpoint`] codec — the bytes a production host would have
    /// written to storage), the attempt counter bumps (re-seeding
    /// transient draws), and the window is retried up to
    /// [`RecoveryConfig::max_retries`] times. If retries are exhausted
    /// and the failure is localized to one chip, degraded mode takes
    /// that chip out of service and continues at reduced depth;
    /// otherwise the last error is returned.
    #[allow(clippy::too_many_arguments)]
    pub fn run_with_recovery<R: Rule>(
        &self,
        rule: &R,
        grid: &Grid<R::S>,
        t0: u64,
        generations: u64,
        plan: Option<&FaultPlan>,
        cfg: &RecoveryConfig,
        audit: impl FnMut(&Grid<R::S>, &Grid<R::S>) -> Result<(), LatticeError>,
    ) -> Result<FtRun<R::S>, LatticeError> {
        self.run_recovery_impl(rule, grid, t0, generations, plan, cfg, audit, None)
    }

    /// [`HostSystem::run_with_recovery`] with persistence level 0: every
    /// in-memory checkpoint is also pushed to `sink` as a one-shard
    /// durable snapshot, so a killed host can be resumed bit-exact from
    /// the store (reassemble the snapshot and call this again with the
    /// restored lattice and generation as `grid`/`t0`). A sink failure
    /// fails the run — callers wanting best-effort persistence wrap the
    /// sink.
    #[allow(clippy::too_many_arguments)]
    pub fn run_with_recovery_durable<R: Rule>(
        &self,
        rule: &R,
        grid: &Grid<R::S>,
        t0: u64,
        generations: u64,
        plan: Option<&FaultPlan>,
        cfg: &RecoveryConfig,
        audit: impl FnMut(&Grid<R::S>, &Grid<R::S>) -> Result<(), LatticeError>,
        sink: &mut dyn SnapshotSink,
    ) -> Result<FtRun<R::S>, LatticeError> {
        self.run_recovery_impl(rule, grid, t0, generations, plan, cfg, audit, Some(sink))
    }

    #[allow(clippy::too_many_arguments)]
    fn run_recovery_impl<R: Rule>(
        &self,
        rule: &R,
        grid: &Grid<R::S>,
        t0: u64,
        generations: u64,
        plan: Option<&FaultPlan>,
        cfg: &RecoveryConfig,
        mut audit: impl FnMut(&Grid<R::S>, &Grid<R::S>) -> Result<(), LatticeError>,
        mut sink: Option<&mut dyn SnapshotSink>,
    ) -> Result<FtRun<R::S>, LatticeError> {
        if cfg.checkpoint_every == 0 {
            return Err(LatticeError::InvalidConfig("checkpoint interval must be ≥ 1".into()));
        }
        let fault_base = plan.map(|p| p.stats()).unwrap_or_default();
        let mut chips: Vec<usize> = (0..self.engine.depth).collect();
        let mut current = grid.clone();
        let t_start = t0;
        let t_end = t0 + generations;
        let mut t_now = t0;
        let mut recovery = RecoveryStats::default();
        let mut pass = 0u64; // logical pass number (fault-epoch key)
        let mut attempt = 0u64; // bumped per rollback; re-seeds transients
        let mut retries_left = cfg.max_retries;
        // Stagger the cadence by shard id: shard `s` takes its first
        // periodic checkpoint `s mod checkpoint_every` passes early, so
        // a farm's checkpoint traffic spreads across passes instead of
        // bursting on the same barrier. Shard 0 (and any
        // `checkpoint_every = 1`) is unchanged.
        let mut passes_since_ckpt = cfg.shard % cfg.checkpoint_every;
        let mut passes = 0u64;
        let mut ticks = Ticks::ZERO;
        let mut memory = Traffic::new();
        let mut demand_sum = 0.0;

        let mut ckpt = checkpoint::save(&current, Ticks::new(t_now));
        recovery.checkpoints = 1;
        recovery.checkpoint_bytes = u64_from_usize(ckpt.len());
        if let Some(s) = sink.as_deref_mut() {
            s.persist(Ticks::new(t_now), &[ShardBlob { col0: 0, row0: 0, blob: ckpt.clone() }])?;
        }

        while t_now < t_end {
            if passes_since_ckpt >= cfg.checkpoint_every {
                ckpt = checkpoint::save(&current, Ticks::new(t_now));
                recovery.checkpoints += 1;
                recovery.checkpoint_bytes += u64_from_usize(ckpt.len());
                if let Some(s) = sink.as_deref_mut() {
                    s.persist(
                        Ticks::new(t_now),
                        &[ShardBlob { col0: 0, row0: 0, blob: ckpt.clone() }],
                    )?;
                }
                passes_since_ckpt = 0;
                retries_left = cfg.max_retries;
            }
            let depth = chips.len().min(usize_from_u64(t_end - t_now));
            let opts = RunOptions {
                faults: plan.map(|p| FaultCtx::for_shard(p, cfg.shard, pass, attempt)),
                chip_ids: Some(&chips[..depth]),
                ..RunOptions::default()
            };
            let outcome = Pipeline::wide(self.engine.width, depth)
                .run_opts(rule, &current, t_now, opts)
                .and_then(|report| audit(&current, &report.grid).map(|()| report));
            match outcome {
                Ok(report) => {
                    demand_sum += report.memory_bits_per_tick().get() * report.ticks.to_f64();
                    ticks += report.ticks;
                    memory.merge(report.memory_traffic);
                    current = report.grid;
                    t_now += u64_from_usize(depth);
                    pass += 1;
                    passes += 1;
                    passes_since_ckpt += 1;
                }
                Err(e) => {
                    recovery.detected += 1;
                    if retries_left == 0 {
                        // Retry cannot clear a permanent fault; if the
                        // failure names a chip, take that chip out of
                        // service and keep going at reduced depth.
                        match suspect_chip(&e) {
                            Some(victim) if cfg.allow_degraded && chips.len() > 1 => {
                                chips.retain(|&c| c != victim);
                                recovery.bypassed_chips += 1;
                                retries_left = cfg.max_retries;
                            }
                            _ => return Err(e),
                        }
                    } else {
                        retries_left -= 1;
                    }
                    // Roll back through the real checkpoint codec.
                    let (g, t) = checkpoint::load::<R::S>(&ckpt)?;
                    current = g;
                    t_now = t.get();
                    attempt += 1;
                    recovery.rollbacks += 1;
                    passes_since_ckpt = 0;
                }
            }
        }

        // Durably record the final state, so a completed run resumes as
        // a no-op instead of replaying from the last periodic barrier.
        if let Some(s) = sink {
            let fin = checkpoint::save(&current, Ticks::new(t_now));
            recovery.checkpoints += 1;
            recovery.checkpoint_bytes += u64_from_usize(fin.len());
            s.persist(Ticks::new(t_now), &[ShardBlob { col0: 0, row0: 0, blob: fin }])?;
        }

        let avg_demand = if ticks.is_zero() {
            BitsPerTick::ZERO
        } else {
            BitsPerTick::new(demand_sum / ticks.to_f64())
        };
        let supply = BitsPerTick::new(self.link.bits_per_tick(self.clock_hz));
        let duty =
            if avg_demand <= BitsPerTick::ZERO { 1.0 } else { (supply / avg_demand).min(1.0) };
        let seconds = ticks.secs_at(Hz::new(self.clock_hz * duty));
        Ok(FtRun {
            run: SystemRun {
                grid: current,
                generations: t_end - t_start,
                passes,
                ticks,
                memory_traffic: memory,
                duty_cycle: duty,
                seconds,
            },
            faults: plan.map(|p| p.stats().since(fault_base)).unwrap_or_default(),
            recovery,
            chips_in_service: chips.len(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lattice_core::{evolve, Boundary, Shape};
    use lattice_gas::{init, FhpRule, FhpVariant};

    fn workload() -> (Grid<u8>, FhpRule) {
        let shape = Shape::grid2(32, 64).unwrap();
        let g = init::random_fhp(shape, FhpVariant::I, 0.3, 8, false).unwrap();
        (g, FhpRule::new(FhpVariant::I, 44))
    }

    #[test]
    fn multi_pass_is_bit_exact() {
        let (g, rule) = workload();
        let sys =
            HostSystem { engine: Pipeline::wide(2, 3), link: HostLink::new(1e9), clock_hz: 10e6 };
        // 7 generations = passes of 3 + 3 + 1, stitched with correct t0.
        let run = sys.run(&rule, &g, 0, 7).unwrap();
        let reference = evolve(&g, &rule, Boundary::null(), 0, 7);
        assert_eq!(run.grid, reference);
        assert_eq!(run.passes, 3);
        assert_eq!(run.generations, 7);
    }

    #[test]
    fn durable_run_resumes_bit_exact_from_store() {
        use lattice_core::checkpoint::store::{reassemble, CheckpointStore, MemBackend};
        let (g, rule) = workload();
        let sys =
            HostSystem { engine: Pipeline::wide(2, 3), link: HostLink::new(1e9), clock_hz: 10e6 };
        let cfg = RecoveryConfig::default();
        let mut store = CheckpointStore::open(MemBackend::new()).unwrap();
        // "Kill" after 6 of 10 generations: run the first leg durably...
        sys.run_with_recovery_durable(&rule, &g, 0, 6, None, &cfg, |_, _| Ok(()), &mut store)
            .unwrap();
        // ...then reconstruct everything from the store alone. FHP
        // chirality hashes absolute (row, col, t), so the restored
        // generation stamp must carry over for the physics to line up.
        let loaded = store.load_latest().unwrap().unwrap();
        let (mid, t) = reassemble::<u8>(&loaded.snapshot).unwrap();
        assert_eq!(t.get(), 6, "final state is durably recorded");
        let done = sys
            .run_with_recovery_durable(
                &rule,
                &mid,
                t.get(),
                4,
                None,
                &cfg,
                |_, _| Ok(()),
                &mut store,
            )
            .unwrap();
        let reference = evolve(&g, &rule, Boundary::null(), 0, 10);
        assert_eq!(done.run.grid, reference);
    }

    #[test]
    fn fast_link_runs_at_full_duty() {
        let (g, rule) = workload();
        let sys = HostSystem {
            engine: Pipeline::wide(2, 2),
            link: HostLink::new(40e6), // exactly the demand of P=2
            clock_hz: 10e6,
        };
        let run = sys.run(&rule, &g, 0, 4).unwrap();
        assert!(run.duty_cycle > 0.99, "{}", run.duty_cycle);
        // ≈ 20 M updates/s for the P = 2 chip, slightly less with fill.
        let ups = run.updates_per_second(32 * 64).get();
        assert!(ups > 15e6 && ups <= 40.1e6, "{ups}");
    }

    #[test]
    fn slow_link_derates_proportionally() {
        let (g, rule) = workload();
        let fast =
            HostSystem { engine: Pipeline::wide(2, 2), link: HostLink::new(40e6), clock_hz: 10e6 };
        let slow = HostSystem { link: HostLink::new(2e6), ..fast };
        let f = fast.run(&rule, &g, 0, 4).unwrap();
        let s = slow.run(&rule, &g, 0, 4).unwrap();
        assert_eq!(f.grid, s.grid, "bandwidth changes speed, never results");
        let ratio = f.updates_per_second(32 * 64) / s.updates_per_second(32 * 64);

        // §8's 20× derating, within fill-effect tolerance.
        assert!((18.0..=22.0).contains(&ratio), "derating {ratio}");
    }

    #[test]
    fn shard_id_reseeds_transient_draws() {
        // Two shards running the same workload from the same plan must
        // see different soft-error weather. Disable detection (no-op
        // audit, faults inside the stage are invisible to link parity)
        // so the corruption survives to the output and can be compared.
        use crate::faults::{Component, Fault, FaultKind, FaultPlan};
        let (g, rule) = workload();
        let sys =
            HostSystem { engine: Pipeline::wide(2, 2), link: HostLink::new(1e9), clock_hz: 10e6 };
        let plan = FaultPlan::new(3).with_fault(Fault {
            component: Component::SrCell,
            chip: None,
            cell: None,
            kind: FaultKind::Transient { bit: 1, rate: 2e-3 },
        });
        let run_shard = |shard: u64| {
            let cfg = RecoveryConfig { shard, ..RecoveryConfig::default() };
            sys.run_with_recovery(&rule, &g, 0, 4, Some(&plan), &cfg, |_, _| Ok(())).unwrap()
        };
        let s0 = run_shard(0);
        let s1 = run_shard(1);
        assert!(s0.faults.total() > 0 && s1.faults.total() > 0, "rate too low to fire");
        assert_ne!(s0.run.grid, s1.run.grid, "shards drew identical fault patterns");
        // Same shard twice: fully deterministic.
        assert_eq!(run_shard(1).run.grid, s1.run.grid);
    }

    #[test]
    fn shard_id_staggers_checkpoint_cadence() {
        let (g, rule) = workload();
        let sys =
            HostSystem { engine: Pipeline::wide(2, 1), link: HostLink::new(1e9), clock_hz: 10e6 };
        let ckpts = |shard: u64| {
            let cfg = RecoveryConfig { checkpoint_every: 4, shard, ..RecoveryConfig::default() };
            sys.run_with_recovery(&rule, &g, 0, 8, None, &cfg, |_, _| Ok(()))
                .unwrap()
                .recovery
                .checkpoints
        };
        // Shard 0 checkpoints at t = 0 and 4; shard 2's phase offset
        // moves its periodic checkpoints to t = 2 and 6 — same cadence,
        // different passes — and its initial one still lands at t = 0.
        assert_eq!(ckpts(0), 2);
        assert_eq!(ckpts(2), 3);
    }

    #[test]
    fn deeper_passes_cut_memory_traffic() {
        let (g, rule) = workload();
        let shallow =
            HostSystem { engine: Pipeline::wide(1, 1), link: HostLink::new(1e9), clock_hz: 10e6 };
        let deep = HostSystem { engine: Pipeline::wide(1, 6), ..shallow };
        let a = shallow.run(&rule, &g, 0, 6).unwrap();
        let b = deep.run(&rule, &g, 0, 6).unwrap();
        assert_eq!(a.grid, b.grid);
        // 6 passes vs 1: 6× the lattice traffic — the whole point of
        // pipeline depth (and the software mirror of the pebbling bound:
        // more on-chip state, fewer main-memory touches).
        assert_eq!(a.memory_traffic.total(), 6 * b.memory_traffic.total());
    }
}
