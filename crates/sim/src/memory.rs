//! The host / main-memory channel with finite bandwidth.
//!
//! §6's analysis "assumes a memory system capable of providing full
//! bandwidth to the processor system is available — this is a very
//! important assumption", and §8 shows what happens when it fails: the
//! prototype WSA chip computes 20 million site-updates per second at
//! 10 MHz (2 PEs × 10 MHz), demanding 40 MB/s of host bandwidth, but
//! "it is unlikely that the workstation host will be able to supply the
//! 40 megabyte per second bandwidth … we expect to realize approximately
//! 1 million site-updates/sec/chip" — a 20× derating.
//!
//! Two models, which agree (tested):
//! * [`throttled_rate`] — closed form: the engine runs at
//!   `min(1, supply/demand)` of its peak rate.
//! * [`StallSim`] — a discrete token-bucket simulation: each tick the
//!   host deposits its per-tick budget; the engine ticks only when a
//!   full transfer's worth of bits is available.

/// A host main-memory link.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HostLink {
    /// Sustained link bandwidth, bytes per second.
    pub bytes_per_second: f64,
}

impl HostLink {
    /// Creates a link.
    pub fn new(bytes_per_second: f64) -> Self {
        HostLink { bytes_per_second }
    }

    /// Bits the host can supply per engine clock tick.
    pub fn bits_per_tick(&self, clock_hz: f64) -> f64 {
        self.bytes_per_second * 8.0 / clock_hz
    }
}

/// Effective site-update rate (updates/s) of an engine whose peak rate
/// is `peak_updates_per_second` and whose memory demand is
/// `demand_bits_per_tick`, fed by `link` at clock `clock_hz`.
pub fn throttled_rate(
    peak_updates_per_second: f64,
    demand_bits_per_tick: f64,
    clock_hz: f64,
    link: HostLink,
) -> f64 {
    if demand_bits_per_tick <= 0.0 {
        return peak_updates_per_second;
    }
    let supply = link.bits_per_tick(clock_hz);
    peak_updates_per_second * (supply / demand_bits_per_tick).min(1.0)
}

/// Discrete token-bucket stall simulation.
#[derive(Debug, Clone)]
pub struct StallSim {
    budget: f64,
    supply_per_tick: f64,
    demand_per_transfer: f64,
    ticks: u64,
    productive_ticks: u64,
}

impl StallSim {
    /// Creates a simulation: the host deposits `supply_per_tick` bits
    /// per tick; the engine consumes `demand_per_transfer` bits on each
    /// productive tick.
    pub fn new(supply_per_tick: f64, demand_per_transfer: f64) -> Self {
        assert!(demand_per_transfer > 0.0);
        StallSim {
            budget: 0.0,
            supply_per_tick,
            demand_per_transfer,
            ticks: 0,
            productive_ticks: 0,
        }
    }

    /// Advances one tick; returns true if the engine made progress.
    pub fn tick(&mut self) -> bool {
        self.ticks += 1;
        // Cap the bucket: a stalled engine cannot bank unlimited credit
        // (FIFO depth of one transfer).
        self.budget = (self.budget + self.supply_per_tick).min(2.0 * self.demand_per_transfer);
        if self.budget >= self.demand_per_transfer {
            self.budget -= self.demand_per_transfer;
            self.productive_ticks += 1;
            true
        } else {
            false
        }
    }

    /// Runs `n` ticks.
    pub fn run(&mut self, n: u64) {
        for _ in 0..n {
            self.tick();
        }
    }

    /// Fraction of ticks that made progress.
    pub fn duty_cycle(&self) -> f64 {
        if self.ticks == 0 {
            0.0
        } else {
            self.productive_ticks as f64 / self.ticks as f64
        }
    }

    /// Ticks elapsed.
    pub fn ticks(&self) -> u64 {
        self.ticks
    }

    /// Productive (non-stalled) ticks.
    pub fn productive_ticks(&self) -> u64 {
        self.productive_ticks
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn prototype_derating_reproduced() {
        // §8: 20 M updates/s peak (2 PEs at 10 MHz), 40 MB/s demanded;
        // a ~2 MB/s workstation host sustains ~1 M updates/s.
        let peak = 20e6;
        let demand = 32.0; // 2 sites in + 2 out per tick × 8 bits
        let clock = 10e6;
        let full = throttled_rate(peak, demand, clock, HostLink::new(40e6));
        assert!((full - 20e6).abs() < 1.0);
        let poor = throttled_rate(peak, demand, clock, HostLink::new(2e6));
        assert!((poor - 1e6).abs() < 1.0, "got {poor}");
    }

    #[test]
    fn oversupply_never_exceeds_peak() {
        let r = throttled_rate(5e6, 16.0, 10e6, HostLink::new(1e12));
        assert!((r - 5e6).abs() < 1e-6);
        // Zero demand: host-independent.
        let r = throttled_rate(5e6, 0.0, 10e6, HostLink::new(1.0));
        assert!((r - 5e6).abs() < 1e-6);
    }

    #[test]
    fn stall_sim_matches_closed_form() {
        for supply_frac in [0.05f64, 0.25, 0.5, 0.9, 1.0, 1.7] {
            let demand = 32.0;
            let mut sim = StallSim::new(supply_frac * demand, demand);
            sim.run(100_000);
            let expect = supply_frac.min(1.0);
            assert!(
                (sim.duty_cycle() - expect).abs() < 0.01,
                "frac {supply_frac}: duty {}",
                sim.duty_cycle()
            );
        }
    }

    #[test]
    fn stall_sim_counters() {
        let mut sim = StallSim::new(16.0, 32.0);
        sim.run(10);
        assert_eq!(sim.ticks(), 10);
        assert_eq!(sim.productive_ticks(), 5);
        assert!((sim.duty_cycle() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn link_bits_per_tick() {
        // 40 MB/s at 10 MHz = 32 bits/tick.
        let l = HostLink::new(40e6);
        assert!((l.bits_per_tick(10e6) - 32.0).abs() < 1e-9);
    }
}
