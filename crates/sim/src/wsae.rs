//! WSA-E: the extensible serial pipeline — §6.3.
//!
//! Functionally identical to a width-1 [`Pipeline`], but the two-row
//! window no longer fits on the processor chip: the overflow lives in
//! external shift registers, and every cell that passes through them
//! costs chip pins (`2D` extra bits/tick for the SR loop — which is why
//! the pin budget only allows one PE per chip). This engine measures
//! that traffic.
//!
//! [`Pipeline`]: crate::pipeline::Pipeline

use crate::faults::FaultCtx;
use crate::metrics::EngineReport;
use crate::pipeline::{Pipeline, RunOptions};
use lattice_core::bits::Traffic;
use lattice_core::units::{u64_from_usize, Cells};
use lattice_core::{Grid, LatticeError, Rule, State};

/// A WSA-E pipeline: serial stages with off-chip shift registers.
#[derive(Debug, Clone, Copy)]
pub struct WsaePipeline {
    /// Pipeline depth (chips).
    pub depth: usize,
    /// Delay cells that fit on the processor chip beside the PE
    /// (`⌊(1−Γ)/B⌋` with the paper's constants: 1702).
    pub on_chip_cells: usize,
}

impl WsaePipeline {
    /// Creates a WSA-E pipeline with the paper's on-chip capacity.
    pub fn new(depth: usize) -> Self {
        WsaePipeline { depth, on_chip_cells: 1702 }
    }

    /// Overrides the on-chip cell capacity.
    pub fn with_on_chip_cells(mut self, cells: usize) -> Self {
        self.on_chip_cells = cells;
        self
    }

    /// Runs the pipeline; see [`Pipeline::run`] for the bit-exactness
    /// contract. Adds external-SR traffic accounting.
    pub fn run<R: Rule>(
        &self,
        rule: &R,
        grid: &Grid<R::S>,
        t0: u64,
    ) -> Result<EngineReport<R::S>, LatticeError> {
        self.run_with_faults(rule, grid, t0, None)
    }

    /// [`WsaePipeline::run`] with fault injection. Ring cells past the
    /// on-chip capacity live in the external shift registers, so they
    /// are exposed to [`crate::faults::Component::OffchipSr`] faults on
    /// top of the ordinary in-stage fault sites.
    pub fn run_with_faults<R: Rule>(
        &self,
        rule: &R,
        grid: &Grid<R::S>,
        t0: u64,
        faults: Option<FaultCtx<'_>>,
    ) -> Result<EngineReport<R::S>, LatticeError> {
        let opts =
            RunOptions { faults, offchip_from: Some(self.on_chip_cells), ..RunOptions::default() };
        let mut report = Pipeline::serial(self.depth).run_opts(rule, grid, t0, opts)?;
        let cells = report.sr_cells_per_stage;
        let overflow = cells.saturating_sub(Cells::new(u64_from_usize(self.on_chip_cells)));
        if !overflow.is_zero() {
            // Every site streamed through a stage transits the external
            // SR once (out to it and back in), on every stage.
            let sites_per_stage = grid.shape().len() as u128;
            let mut t = Traffic::new();
            t.record_out(sites_per_stage * self.depth as u128, R::S::BITS);
            t.record_in(sites_per_stage * self.depth as u128, R::S::BITS);
            report.offchip_sr_traffic = t;
        }
        Ok(report)
    }

    /// External SR cells per stage for lattice width `cols`.
    pub fn off_chip_cells(&self, cols: usize) -> usize {
        (2 * cols + 3).saturating_sub(self.on_chip_cells)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lattice_core::{evolve, Boundary, Shape};
    use lattice_gas::{FhpRule, FhpVariant};

    #[test]
    fn wsae_is_bit_exact() {
        let shape = Shape::grid2(6, 30).unwrap();
        let g = lattice_gas::init::random_fhp(shape, FhpVariant::I, 0.4, 2, false).unwrap();
        let rule = FhpRule::new(FhpVariant::I, 3);
        let reference = evolve(&g, &rule, Boundary::null(), 0, 4);
        let report = WsaePipeline::new(4).run(&rule, &g, 0).unwrap();
        assert_eq!(report.grid, reference);
    }

    #[test]
    fn small_lattices_have_no_offchip_traffic() {
        let shape = Shape::grid2(6, 30).unwrap();
        let g = lattice_gas::init::random_fhp(shape, FhpVariant::I, 0.4, 2, false).unwrap();
        let rule = FhpRule::new(FhpVariant::I, 3);
        let report = WsaePipeline::new(2).run(&rule, &g, 0).unwrap();
        assert_eq!(report.offchip_sr_traffic.total(), 0);
        assert_eq!(WsaePipeline::new(2).off_chip_cells(30), 0);
    }

    #[test]
    fn large_lattices_pay_sr_traffic() {
        // Force a tiny on-chip capacity so the test lattice overflows.
        let shape = Shape::grid2(4, 64).unwrap();
        let g = lattice_gas::init::random_fhp(shape, FhpVariant::I, 0.4, 2, false).unwrap();
        let rule = FhpRule::new(FhpVariant::I, 3);
        let pipe = WsaePipeline::new(3).with_on_chip_cells(50);
        let report = pipe.run(&rule, &g, 0).unwrap();
        let n = shape.len() as u128;
        assert_eq!(report.offchip_sr_traffic.bits_out, 3 * n * 8);
        assert_eq!(report.offchip_sr_traffic.bits_in, 3 * n * 8);
        assert_eq!(pipe.off_chip_cells(64), 2 * 64 + 3 - 50);
    }

    #[test]
    fn paper_capacity_splits_at_l_850ish() {
        // 2L + 3 ≤ 1702 up to L = 849: beyond the WSA feasibility region
        // the SR spills off chip — the architecture keeps working, which
        // is WSA-E's entire reason to exist.
        let p = WsaePipeline::new(1);
        assert_eq!(p.off_chip_cells(849), 0);
        assert!(p.off_chip_cells(1000) > 0);
    }
}
