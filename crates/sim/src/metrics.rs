//! Measured engine figures.

use crate::faults::FaultStats;
use lattice_core::bits::Traffic;
use lattice_core::units::{BitsPerTick, Cells, Hz, Sites, SitesPerSec, SitesPerTick, Ticks};
use lattice_core::{Grid, State};

/// Everything an engine run reports: the computed lattice plus the
/// counted costs — the measured counterparts of the paper's analytical
/// quantities.
#[derive(Debug, Clone)]
pub struct EngineReport<S: State> {
    /// The lattice after `generations` steps.
    pub grid: Grid<S>,
    /// Generations computed.
    pub generations: u64,
    /// Site updates performed (`generations × sites`).
    pub updates: Sites,
    /// Clock ticks consumed, including pipeline fill and drain.
    pub ticks: Ticks,
    /// Host main-memory traffic (first-stage input + last-stage output).
    pub memory_traffic: Traffic,
    /// Inter-chip pipeline traffic summed over all chips (each chip's
    /// input + output pins).
    pub pin_traffic: Traffic,
    /// SPA side-channel traffic (zero for other engines).
    pub side_traffic: Traffic,
    /// WSA-E external shift-register traffic (zero for other engines).
    pub offchip_sr_traffic: Traffic,
    /// Peak shift-register cells occupied in any single stage.
    pub sr_cells_per_stage: Cells,
    /// Pipeline stages (PE depth).
    pub stages: u32,
    /// PEs per stage.
    pub width: u32,
    /// Fault events injected during this run (all zero when injection is
    /// disabled).
    pub faults: FaultStats,
}

impl<S: State> EngineReport<S> {
    /// Average site updates per clock tick.
    pub fn updates_per_tick(&self) -> SitesPerTick {
        self.updates / self.ticks
    }

    /// Updates per second at clock `clock`, assuming the memory system
    /// sustains the demanded bandwidth (the paper's §6 "very important
    /// assumption").
    pub fn updates_per_second(&self, clock: Hz) -> SitesPerSec {
        self.updates_per_tick() * clock
    }

    /// Measured main-memory bandwidth demand.
    pub fn memory_bits_per_tick(&self) -> BitsPerTick {
        BitsPerTick::new(self.memory_traffic.bits_per_tick(u128::from(self.ticks.get())))
    }

    /// Folds another report into this one, modeling *parallel
    /// composition*: two engines running side by side on disjoint parts
    /// of one lattice, as in a board-level farm. Counter-like fields add
    /// (`updates`, all traffic channels, fault tallies, `stages` — total
    /// chips in the machine); capacity/latency-like fields take the
    /// maximum (`ticks` — concurrent engines finish when the slowest
    /// does — plus `sr_cells_per_stage`, `width`, and `generations`).
    ///
    /// `self.grid` is left untouched: stitching shard lattices back into
    /// a machine lattice is geometry the caller (e.g. `lattice-farm`)
    /// owns, not arithmetic this fold can do.
    ///
    /// The fold is associative, commutative on every accounted field,
    /// and has the all-zero report as identity (unit-tested), so shard
    /// reports aggregate in any order.
    pub fn merge(&mut self, other: &EngineReport<S>) {
        self.generations = self.generations.max(other.generations);
        self.updates += other.updates;
        self.ticks = self.ticks.max(other.ticks);

        self.memory_traffic.merge(other.memory_traffic);
        self.pin_traffic.merge(other.pin_traffic);
        self.side_traffic.merge(other.side_traffic);
        self.offchip_sr_traffic.merge(other.offchip_sr_traffic);
        self.sr_cells_per_stage = self.sr_cells_per_stage.max(other.sr_cells_per_stage);
        self.stages += other.stages;
        self.width = self.width.max(other.width);
        self.faults.merge(other.faults);
    }

    /// PE utilization: fraction of PE-ticks that performed an update.
    pub fn utilization(&self) -> f64 {
        let pe_ticks = self.ticks.to_f64() * f64::from(self.stages) * f64::from(self.width);
        if pe_ticks == 0.0 {
            0.0
        } else {
            self.updates.to_f64() / pe_ticks
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lattice_core::Shape;

    fn report() -> EngineReport<u8> {
        let mut memory_traffic = Traffic::new();
        memory_traffic.record_in(100, 8);
        memory_traffic.record_out(100, 8);
        EngineReport {
            grid: Grid::new(Shape::grid2(10, 10).unwrap()),
            generations: 2,
            updates: Sites::new(200),
            ticks: Ticks::new(120),
            memory_traffic,
            pin_traffic: Traffic::new(),
            side_traffic: Traffic::new(),
            offchip_sr_traffic: Traffic::new(),
            sr_cells_per_stage: Cells::new(23),
            stages: 2,
            width: 1,
            faults: FaultStats::default(),
        }
    }

    #[test]
    fn derived_rates() {
        let r = report();
        assert!((r.updates_per_tick().get() - 200.0 / 120.0).abs() < 1e-12);
        assert!((r.updates_per_second(Hz::new(10e6)).get() - 200.0 / 120.0 * 10e6).abs() < 1e-3);
        assert!((r.memory_bits_per_tick().get() - 1600.0 / 120.0).abs() < 1e-12);
        assert!((r.utilization() - 200.0 / 240.0).abs() < 1e-12);
    }

    /// The accounted fields of a report as one comparable tuple (the
    /// grid is excluded by [`EngineReport::merge`]'s contract).
    #[allow(clippy::type_complexity)]
    fn accounting(
        r: &EngineReport<u8>,
    ) -> (u64, Sites, Ticks, Traffic, Traffic, Traffic, Traffic, Cells, u32, u32, FaultStats) {
        (
            r.generations,
            r.updates,
            r.ticks,
            r.memory_traffic,
            r.pin_traffic,
            r.side_traffic,
            r.offchip_sr_traffic,
            r.sr_cells_per_stage,
            r.stages,
            r.width,
            r.faults,
        )
    }

    fn shard_report(seed: u64) -> EngineReport<u8> {
        let mut r = report();
        r.updates = Sites::new(100 * seed);
        r.ticks = Ticks::new(60 + seed);
        r.sr_cells_per_stage = Cells::new(10 + seed);
        r.generations = seed;
        r.width = u32::try_from(seed).unwrap();
        r.memory_traffic.record_in(u128::from(seed), 8);
        r.faults.sr_cell = seed;
        r
    }

    #[test]
    fn merge_identity() {
        let zero = EngineReport {
            grid: Grid::new(Shape::grid2(1, 1).unwrap()),
            generations: 0,
            updates: Sites::ZERO,
            ticks: Ticks::ZERO,
            memory_traffic: Traffic::new(),
            pin_traffic: Traffic::new(),
            side_traffic: Traffic::new(),
            offchip_sr_traffic: Traffic::new(),
            sr_cells_per_stage: Cells::ZERO,
            stages: 0,
            width: 0,
            faults: FaultStats::default(),
        };
        let mut left = report();
        left.merge(&zero);
        assert_eq!(accounting(&left), accounting(&report()), "right identity");
        let mut right = zero.clone();
        right.merge(&report());
        assert_eq!(accounting(&right), accounting(&report()), "left identity");
    }

    #[test]
    fn merge_is_associative_and_commutative() {
        let (a, b, c) = (shard_report(2), shard_report(5), shard_report(9));
        // (a ⊕ b) ⊕ c
        let mut ab = a.clone();
        ab.merge(&b);
        let mut ab_c = ab.clone();
        ab_c.merge(&c);
        // a ⊕ (b ⊕ c)
        let mut bc = b.clone();
        bc.merge(&c);
        let mut a_bc = a.clone();
        a_bc.merge(&bc);
        assert_eq!(accounting(&ab_c), accounting(&a_bc), "associativity");
        // b ⊕ a
        let mut ba = b.clone();
        ba.merge(&a);
        let mut ab2 = a.clone();
        ab2.merge(&b);
        assert_eq!(accounting(&ab2), accounting(&ba), "commutativity");
    }

    #[test]
    fn merged_utilization_is_the_machine_average() {
        // Two identical shards: same ticks, double the updates and
        // chips — identical utilization and updates/tick per engine,
        // doubled machine throughput.
        let a = report();
        let mut m = a.clone();
        m.merge(&a);
        assert_eq!(m.updates, a.updates * 2);
        assert_eq!(m.ticks, a.ticks);
        assert_eq!(m.stages, 2 * a.stages);
        assert!((m.utilization() - a.utilization()).abs() < 1e-12);
        assert!((m.updates_per_tick().get() - 2.0 * a.updates_per_tick().get()).abs() < 1e-12);
    }

    #[test]
    fn zero_tick_report_is_safe() {
        let mut r = report();
        r.ticks = Ticks::ZERO;
        r.stages = 0;
        assert_eq!(r.updates_per_tick(), SitesPerTick::ZERO);
        assert_eq!(r.utilization(), 0.0);
    }
}
