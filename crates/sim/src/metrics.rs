//! Measured engine figures.

use crate::faults::FaultStats;
use lattice_core::bits::Traffic;
use lattice_core::{Grid, State};

/// Everything an engine run reports: the computed lattice plus the
/// counted costs — the measured counterparts of the paper's analytical
/// quantities.
#[derive(Debug, Clone)]
pub struct EngineReport<S: State> {
    /// The lattice after `generations` steps.
    pub grid: Grid<S>,
    /// Generations computed.
    pub generations: u64,
    /// Site updates performed (`generations × sites`).
    pub updates: u64,
    /// Clock ticks consumed, including pipeline fill and drain.
    pub ticks: u64,
    /// Host main-memory traffic (first-stage input + last-stage output).
    pub memory_traffic: Traffic,
    /// Inter-chip pipeline traffic summed over all chips (each chip's
    /// input + output pins).
    pub pin_traffic: Traffic,
    /// SPA side-channel traffic (zero for other engines).
    pub side_traffic: Traffic,
    /// WSA-E external shift-register traffic (zero for other engines).
    pub offchip_sr_traffic: Traffic,
    /// Peak shift-register cells occupied in any single stage.
    pub sr_cells_per_stage: u64,
    /// Pipeline stages (PE depth).
    pub stages: u32,
    /// PEs per stage.
    pub width: u32,
    /// Fault events injected during this run (all zero when injection is
    /// disabled).
    pub faults: FaultStats,
}

impl<S: State> EngineReport<S> {
    /// Average site updates per clock tick.
    pub fn updates_per_tick(&self) -> f64 {
        if self.ticks == 0 {
            0.0
        } else {
            self.updates as f64 / self.ticks as f64
        }
    }

    /// Updates per second at clock frequency `clock_hz`, assuming the
    /// memory system sustains the demanded bandwidth (the paper's §6
    /// "very important assumption").
    pub fn updates_per_second(&self, clock_hz: f64) -> f64 {
        self.updates_per_tick() * clock_hz
    }

    /// Measured main-memory bandwidth demand in bits per tick.
    pub fn memory_bits_per_tick(&self) -> f64 {
        self.memory_traffic.bits_per_tick(self.ticks as u128)
    }

    /// PE utilization: fraction of PE-ticks that performed an update.
    pub fn utilization(&self) -> f64 {
        let pe_ticks = self.ticks as f64 * self.stages as f64 * self.width as f64;
        if pe_ticks == 0.0 {
            0.0
        } else {
            self.updates as f64 / pe_ticks
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lattice_core::Shape;

    fn report() -> EngineReport<u8> {
        let mut memory_traffic = Traffic::new();
        memory_traffic.record_in(100, 8);
        memory_traffic.record_out(100, 8);
        EngineReport {
            grid: Grid::new(Shape::grid2(10, 10).unwrap()),
            generations: 2,
            updates: 200,
            ticks: 120,
            memory_traffic,
            pin_traffic: Traffic::new(),
            side_traffic: Traffic::new(),
            offchip_sr_traffic: Traffic::new(),
            sr_cells_per_stage: 23,
            stages: 2,
            width: 1,
            faults: FaultStats::default(),
        }
    }

    #[test]
    fn derived_rates() {
        let r = report();
        assert!((r.updates_per_tick() - 200.0 / 120.0).abs() < 1e-12);
        assert!((r.updates_per_second(10e6) - 200.0 / 120.0 * 10e6).abs() < 1e-3);
        assert!((r.memory_bits_per_tick() - 1600.0 / 120.0).abs() < 1e-12);
        assert!((r.utilization() - 200.0 / 240.0).abs() < 1e-12);
    }

    #[test]
    fn zero_tick_report_is_safe() {
        let mut r = report();
        r.ticks = 0;
        r.stages = 0;
        assert_eq!(r.updates_per_tick(), 0.0);
        assert_eq!(r.utilization(), 0.0);
    }
}
