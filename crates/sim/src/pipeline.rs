//! Serial and wide-serial (WSA) pipelines: `k` cascaded stages.
//!
//! §3–§4: the host streams the lattice through `k` chips, each chip one
//! pipeline stage of `P` PEs; the stream leaves the last chip `k`
//! generations older. `P = 1` is the fully serial architecture of §3;
//! `P > 1` is the WSA of §4 ("performance is increased, but at a cost of
//! only the incremental amount of memory needed to store the extra
//! sites… two new site values are required every clock period").

use crate::metrics::EngineReport;
use crate::stage::{LineBufferStage, StageConfig};
use lattice_core::bits::Traffic;
use lattice_core::{Grid, LatticeError, Rule, State};

/// A serial / wide-serial pipeline engine.
#[derive(Debug, Clone, Copy)]
pub struct Pipeline {
    /// PEs per stage (`P`).
    pub width: usize,
    /// Pipeline depth (`k` = chips = generations per pass).
    pub depth: usize,
}

impl Pipeline {
    /// A fully serial pipeline (`P = 1`) of depth `k`.
    pub fn serial(depth: usize) -> Self {
        Pipeline { width: 1, depth }
    }

    /// A wide-serial pipeline (`P = width`) of depth `k`.
    pub fn wide(width: usize, depth: usize) -> Self {
        Pipeline { width, depth }
    }

    /// Streams `grid` (generation `t0`) through the pipeline under the
    /// null boundary, returning the lattice `depth` generations later
    /// plus measured costs.
    ///
    /// Bit-exactness contract: equals
    /// `lattice_core::evolve(grid, rule, Boundary::null(), t0, depth)`.
    ///
    /// ```
    /// use lattice_core::{evolve, Boundary, Shape};
    /// use lattice_engines_sim::Pipeline;
    /// use lattice_gas::{init, HppRule};
    ///
    /// let shape = Shape::grid2(16, 32)?;
    /// let gas = init::random_hpp(shape, 0.3, 7)?;
    /// let rule = HppRule::new();
    /// let report = Pipeline::wide(2, 3).run(&rule, &gas, 0)?;
    /// assert_eq!(report.grid, evolve(&gas, &rule, Boundary::null(), 0, 3));
    /// assert_eq!(report.updates, 3 * 16 * 32);
    /// # Ok::<(), lattice_core::LatticeError>(())
    /// ```
    pub fn run<R: Rule>(
        &self,
        rule: &R,
        grid: &Grid<R::S>,
        t0: u64,
    ) -> Result<EngineReport<R::S>, LatticeError> {
        self.run_at(rule, grid, t0, (0, 0))
    }

    /// [`Pipeline::run`] with a global coordinate origin for the stream's
    /// `(0, 0)` — used by halo framing so that rules whose output depends
    /// on absolute coordinates (FHP parity/chirality) see the *unframed*
    /// coordinates. `origin` may wrap (e.g. `usize::MAX` ≡ −1).
    pub fn run_at<R: Rule>(
        &self,
        rule: &R,
        grid: &Grid<R::S>,
        t0: u64,
        origin: (usize, usize),
    ) -> Result<EngineReport<R::S>, LatticeError> {
        if self.depth == 0 {
            return Err(LatticeError::InvalidConfig("pipeline depth must be ≥ 1".into()));
        }
        let shape = grid.shape();
        let n = shape.len();
        let d_bits = R::S::BITS;

        let mut stages = Vec::with_capacity(self.depth);
        for j in 0..self.depth {
            stages.push(LineBufferStage::new(
                rule,
                StageConfig {
                    shape,
                    width: self.width,
                    fill: R::S::default(),
                    gen: t0 + j as u64,
                    origin,
                },
            )?);
        }

        let data = grid.as_slice();
        let mut fed = 0usize;
        let mut ticks = 0u64;
        let mut result: Vec<R::S> = Vec::with_capacity(n);
        let mut memory = Traffic::new();
        let mut pins = Traffic::new();
        // Per-stage in-flight buffers (outputs of stage j feed stage j+1
        // on the same tick; a one-tick register between chips would only
        // add `depth` ticks of latency).
        let mut bus: Vec<Vec<R::S>> = vec![Vec::new(); self.depth + 1];

        while result.len() < n {
            ticks += 1;
            let take = self.width.min(n - fed);
            bus[0].clear();
            bus[0].extend_from_slice(&data[fed..fed + take]);
            fed += take;
            memory.record_in(take as u128, d_bits);
            for (j, stage) in stages.iter_mut().enumerate() {
                let (inp, out) = {
                    // Split borrows: bus[j] is input, bus[j+1] output.
                    let (a, b) = bus.split_at_mut(j + 1);
                    (&a[j], &mut b[0])
                };
                out.clear();
                pins.record_in(inp.len() as u128, d_bits);
                let emitted = stage.tick(inp, out);
                pins.record_out(emitted as u128, d_bits);
            }
            memory.record_out(bus[self.depth].len() as u128, d_bits);
            result.extend_from_slice(&bus[self.depth]);
            if ticks > (10 * n + 1000) as u64 * self.depth as u64 {
                return Err(LatticeError::InvalidConfig("pipeline wedged (bug)".into()));
            }
        }

        let sr_cells = stages.iter().map(|s| s.config().required_cells() as u64).max().unwrap();
        Ok(EngineReport {
            grid: Grid::from_vec(shape, result)?,
            generations: self.depth as u64,
            updates: (n * self.depth) as u64,
            ticks,
            memory_traffic: memory,
            pin_traffic: pins,
            side_traffic: Traffic::new(),
            offchip_sr_traffic: Traffic::new(),
            sr_cells_per_stage: sr_cells,
            stages: self.depth as u32,
            width: self.width as u32,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lattice_core::{evolve, Boundary, Shape};
    use lattice_gas::{FhpRule, FhpVariant, HppRule};

    #[test]
    fn serial_pipeline_is_bit_exact_hpp() {
        let shape = Shape::grid2(12, 17).unwrap();
        let g = lattice_gas::init::random_hpp(shape, 0.4, 7).unwrap();
        let rule = HppRule::new();
        for depth in [1usize, 2, 5] {
            let report = Pipeline::serial(depth).run(&rule, &g, 0).unwrap();
            let reference = evolve(&g, &rule, Boundary::null(), 0, depth as u64);
            assert_eq!(report.grid, reference, "depth={depth}");
            assert_eq!(report.generations, depth as u64);
        }
    }

    #[test]
    fn wide_pipeline_is_bit_exact_fhp() {
        let shape = Shape::grid2(10, 24).unwrap();
        let g = lattice_gas::init::random_fhp(shape, FhpVariant::III, 0.35, 3, false).unwrap();
        let rule = FhpRule::new(FhpVariant::III, 99);
        let reference = evolve(&g, &rule, Boundary::null(), 0, 4);
        for width in [1usize, 2, 4] {
            let report = Pipeline::wide(width, 4).run(&rule, &g, 0).unwrap();
            assert_eq!(report.grid, reference, "width={width}");
        }
    }

    #[test]
    fn wide_pipeline_nonzero_t0_matches_reference() {
        // FHP chirality depends on absolute time; the pipeline must
        // stamp each stage with the right generation.
        let shape = Shape::grid2(8, 8).unwrap();
        let g = lattice_gas::init::random_fhp(shape, FhpVariant::I, 0.5, 1, false).unwrap();
        let rule = FhpRule::new(FhpVariant::I, 5);
        let reference = evolve(&g, &rule, Boundary::null(), 17, 3);
        let report = Pipeline::wide(2, 3).run(&rule, &g, 17).unwrap();
        assert_eq!(report.grid, reference);
    }

    #[test]
    fn memory_traffic_is_one_pass() {
        let shape = Shape::grid2(8, 16).unwrap();
        let g = lattice_gas::init::random_hpp(shape, 0.3, 2).unwrap();
        let report = Pipeline::wide(2, 3).run(&HppRule::new(), &g, 0).unwrap();
        let n = shape.len() as u128;
        // One stream in, one stream out, regardless of depth.
        assert_eq!(report.memory_traffic.bits_in, n * 8);
        assert_eq!(report.memory_traffic.bits_out, n * 8);
        // Pins: every stage sees the stream once each way.
        assert_eq!(report.pin_traffic.bits_in, 3 * n * 8);
        assert_eq!(report.pin_traffic.bits_out, 3 * n * 8);
    }

    #[test]
    fn throughput_approaches_p_per_tick() {
        let shape = Shape::grid2(32, 64).unwrap();
        let g = lattice_gas::init::random_hpp(shape, 0.3, 2).unwrap();
        let rule = HppRule::new();
        let r1 = Pipeline::wide(1, 4).run(&rule, &g, 0).unwrap();
        let r4 = Pipeline::wide(4, 4).run(&rule, &g, 0).unwrap();
        // 4-wide runs ≈ 4× the updates/tick of 1-wide.
        let ratio = r4.updates_per_tick() / r1.updates_per_tick();
        assert!((3.4..=4.2).contains(&ratio), "ratio {ratio}");
        // Utilization is high once fill/drain amortizes.
        assert!(r4.utilization() > 0.8, "{}", r4.utilization());
    }

    #[test]
    fn bandwidth_demand_matches_analytical_2dp() {
        // The measured steady-state demand equals the paper's 2·D·P
        // bits/tick.
        let shape = Shape::grid2(64, 64).unwrap();
        let g = lattice_gas::init::random_fhp(shape, FhpVariant::I, 0.2, 4, false).unwrap();
        let rule = FhpRule::new(FhpVariant::I, 8);
        for p in [1u32, 2, 4] {
            let report = Pipeline::wide(p as usize, 2).run(&rule, &g, 0).unwrap();
            let measured = report.memory_bits_per_tick();
            let analytical = (2 * 8 * p) as f64;
            // Fill/drain ticks dilute the average slightly below peak.
            assert!(
                measured <= analytical && measured > 0.85 * analytical,
                "P={p}: measured {measured} vs {analytical}"
            );
        }
    }

    #[test]
    fn sr_cells_match_formula() {
        let shape = Shape::grid2(16, 100).unwrap();
        let g = lattice_gas::init::random_hpp(shape, 0.3, 2).unwrap();
        let report = Pipeline::wide(4, 2).run(&HppRule::new(), &g, 0).unwrap();
        assert_eq!(report.sr_cells_per_stage, 2 * 100 + 4 + 2);
    }

    #[test]
    fn zero_depth_is_an_error() {
        let shape = Shape::grid2(4, 4).unwrap();
        let g: Grid<u8> = Grid::new(shape);
        assert!(Pipeline::serial(0).run(&HppRule::new(), &g, 0).is_err());
    }

    #[test]
    fn one_dimensional_pipeline_runs_eca() {
        use lattice_gas::ElementaryCa;
        let shape = Shape::line(64).unwrap();
        let g = Grid::from_fn(shape, |c| c.col() % 3 == 0);
        let rule = ElementaryCa::new(110);
        let reference = evolve(&g, &rule, Boundary::null(), 0, 8);
        let report = Pipeline::serial(8).run(&rule, &g, 0).unwrap();
        assert_eq!(report.grid, reference);
        // 1-bit sites: D = 1 in the traffic accounting.
        assert_eq!(report.memory_traffic.bits_in, 64);
    }
}
