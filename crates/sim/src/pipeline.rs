//! Serial and wide-serial (WSA) pipelines: `k` cascaded stages.
//!
//! §3–§4: the host streams the lattice through `k` chips, each chip one
//! pipeline stage of `P` PEs; the stream leaves the last chip `k`
//! generations older. `P = 1` is the fully serial architecture of §3;
//! `P > 1` is the WSA of §4 ("performance is increased, but at a cost of
//! only the incremental amount of memory needed to store the extra
//! sites… two new site values are required every clock period").

use crate::faults::{Component, FaultCtx, FaultHook};
use crate::metrics::EngineReport;
use crate::stage::{LineBufferStage, StageConfig};
use lattice_core::bits::{StreamParity, Traffic};
use lattice_core::units::{u64_from_usize, Cells, Sites, Ticks};
use lattice_core::{Grid, LatticeError, Rule, State};

/// Per-run options beyond the geometry: the stream origin, fault
/// injection, and the physical-chip map.
#[derive(Debug, Clone, Copy, Default)]
pub struct RunOptions<'p> {
    /// Global coordinate of the stream's `(0, 0)` (see
    /// [`Pipeline::run_at`]).
    pub origin: (usize, usize),
    /// Fault injection context; `None` runs fault-free.
    pub faults: Option<FaultCtx<'p>>,
    /// Physical chip id behind each stage position (`chip_ids[j]` is the
    /// silicon stage `j` runs on). `None` means the identity map. A host
    /// running degraded — with a faulty chip bypassed — passes the
    /// surviving chips here so faults keep following the silicon.
    pub chip_ids: Option<&'p [usize]>,
    /// Ring cells at or past this index live off chip (WSA-E external
    /// shift registers) and are additionally exposed to
    /// [`Component::OffchipSr`] faults.
    pub offchip_from: Option<usize>,
}

/// A serial / wide-serial pipeline engine.
#[derive(Debug, Clone, Copy)]
pub struct Pipeline {
    /// PEs per stage (`P`).
    pub width: usize,
    /// Pipeline depth (`k` = chips = generations per pass).
    pub depth: usize,
}

impl Pipeline {
    /// A fully serial pipeline (`P = 1`) of depth `k`.
    pub fn serial(depth: usize) -> Self {
        Pipeline { width: 1, depth }
    }

    /// A wide-serial pipeline (`P = width`) of depth `k`.
    pub fn wide(width: usize, depth: usize) -> Self {
        Pipeline { width, depth }
    }

    /// Streams `grid` (generation `t0`) through the pipeline under the
    /// null boundary, returning the lattice `depth` generations later
    /// plus measured costs.
    ///
    /// Bit-exactness contract: equals
    /// `lattice_core::evolve(grid, rule, Boundary::null(), t0, depth)`.
    ///
    /// ```
    /// use lattice_core::{evolve, Boundary, Shape};
    /// use lattice_engines_sim::Pipeline;
    /// use lattice_gas::{init, HppRule};
    ///
    /// let shape = Shape::grid2(16, 32)?;
    /// let gas = init::random_hpp(shape, 0.3, 7)?;
    /// let rule = HppRule::new();
    /// let report = Pipeline::wide(2, 3).run(&rule, &gas, 0)?;
    /// assert_eq!(report.grid, evolve(&gas, &rule, Boundary::null(), 0, 3));
    /// assert_eq!(report.updates, lattice_core::units::Sites::new(3 * 16 * 32));
    /// # Ok::<(), lattice_core::LatticeError>(())
    /// ```
    pub fn run<R: Rule>(
        &self,
        rule: &R,
        grid: &Grid<R::S>,
        t0: u64,
    ) -> Result<EngineReport<R::S>, LatticeError> {
        self.run_at(rule, grid, t0, (0, 0))
    }

    /// [`Pipeline::run`] with a global coordinate origin for the stream's
    /// `(0, 0)` — used by halo framing so that rules whose output depends
    /// on absolute coordinates (FHP parity/chirality) see the *unframed*
    /// coordinates. `origin` may wrap (e.g. `usize::MAX` ≡ −1).
    pub fn run_at<R: Rule>(
        &self,
        rule: &R,
        grid: &Grid<R::S>,
        t0: u64,
        origin: (usize, usize),
    ) -> Result<EngineReport<R::S>, LatticeError> {
        self.run_opts(rule, grid, t0, RunOptions { origin, ..RunOptions::default() })
    }

    /// [`Pipeline::run`] with full [`RunOptions`]: fault injection,
    /// physical-chip mapping, and off-chip shift-register exposure.
    ///
    /// Every inter-chip link carries a [`StreamParity`] word: the sender
    /// folds each site as it leaves the PE array, the receiver as it
    /// arrives, and a disagreement — any odd number of flipped bits, or
    /// a dropped/duplicated site — surfaces as
    /// [`LatticeError::Corrupted`] naming the chip's output link.
    /// Faults injected *inside* a stage (shift-register cells, PE
    /// outputs) corrupt the computation itself and are invisible to the
    /// link parity; catching those is the conservation audit's job.
    pub fn run_opts<R: Rule>(
        &self,
        rule: &R,
        grid: &Grid<R::S>,
        t0: u64,
        opts: RunOptions<'_>,
    ) -> Result<EngineReport<R::S>, LatticeError> {
        if self.depth == 0 {
            return Err(LatticeError::InvalidConfig("pipeline depth must be ≥ 1".into()));
        }
        if opts.chip_ids.is_some_and(|ids| ids.len() != self.depth) {
            return Err(LatticeError::InvalidConfig(
                "chip map must name one physical chip per stage".into(),
            ));
        }
        let chip_of = |j: usize| opts.chip_ids.map_or(j, |ids| ids[j]);
        let fault_base = opts.faults.map(|c| c.plan.stats()).unwrap_or_default();
        let shape = grid.shape();
        let n = shape.len();
        let d_bits = R::S::BITS;

        let mut stages = Vec::with_capacity(self.depth);
        for j in 0..self.depth {
            let mut stage = LineBufferStage::new(
                rule,
                StageConfig {
                    shape,
                    width: self.width,
                    fill: R::S::default(),
                    gen: t0 + j as u64,
                    origin: opts.origin,
                },
            )?;
            if let Some(ctx) = opts.faults {
                stage = stage.with_faults(FaultHook {
                    ctx,
                    chip: chip_of(j),
                    offchip_from: opts.offchip_from,
                });
            }
            stages.push(stage);
        }

        let data = grid.as_slice();
        let mut fed = 0usize;
        let mut ticks = 0u64;
        let mut result: Vec<R::S> = Vec::with_capacity(n);
        let mut memory = Traffic::new();
        let mut pins = Traffic::new();
        // Per-stage in-flight buffers (outputs of stage j feed stage j+1
        // on the same tick; a one-tick register between chips would only
        // add `depth` ticks of latency).
        let mut bus: Vec<Vec<R::S>> = vec![Vec::new(); self.depth + 1];
        // Link parity: sender/receiver accumulators and the per-link
        // stream position (the transient-fault key).
        let mut sent = vec![StreamParity::new(); self.depth];
        let mut recv = vec![StreamParity::new(); self.depth];
        let mut link_pos = vec![0u64; self.depth];

        while result.len() < n {
            ticks += 1;
            let take = self.width.min(n - fed);
            bus[0].clear();
            bus[0].extend_from_slice(&data[fed..fed + take]);
            fed += take;
            memory.record_in(take as u128, d_bits);
            for (j, stage) in stages.iter_mut().enumerate() {
                let (inp, out) = {
                    // Split borrows: bus[j] is input, bus[j+1] output.
                    let (a, b) = bus.split_at_mut(j + 1);
                    (&a[j], &mut b[0])
                };
                out.clear();
                pins.record_in(inp.len() as u128, d_bits);
                let emitted = stage.tick(inp, out);
                pins.record_out(emitted as u128, d_bits);
                // The emitted sites cross the chip's output link.
                for v in out.iter_mut() {
                    sent[j].absorb(*v);
                    if let Some(ctx) = opts.faults {
                        *v = ctx.corrupt_site(Component::Link, chip_of(j), 0, link_pos[j], *v);
                    }
                    recv[j].absorb(*v);
                    link_pos[j] += 1;
                }
            }
            memory.record_out(bus[self.depth].len() as u128, d_bits);
            result.extend_from_slice(&bus[self.depth]);
            if ticks > (10 * n + 1000) as u64 * self.depth as u64 {
                return Err(LatticeError::InvalidConfig("pipeline wedged (bug)".into()));
            }
        }

        for j in 0..self.depth {
            if let Some(msg) = recv[j].mismatch(&sent[j]) {
                return Err(LatticeError::Corrupted {
                    site: format!("chip {} output link", chip_of(j)),
                    detail: msg,
                });
            }
        }

        let sr_cells =
            Cells::new(stages.iter().map(|s| s.config().required_cells() as u64).max().unwrap());
        Ok(EngineReport {
            grid: Grid::from_vec(shape, result)?,
            generations: self.depth as u64,
            updates: Sites::new(u64_from_usize(n * self.depth)),
            ticks: Ticks::new(ticks),
            memory_traffic: memory,
            pin_traffic: pins,
            side_traffic: Traffic::new(),
            offchip_sr_traffic: Traffic::new(),
            sr_cells_per_stage: sr_cells,
            stages: self.depth as u32,
            width: self.width as u32,
            faults: opts.faults.map(|c| c.plan.stats().since(fault_base)).unwrap_or_default(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lattice_core::{evolve, Boundary, Shape};
    use lattice_gas::{FhpRule, FhpVariant, HppRule};

    #[test]
    fn serial_pipeline_is_bit_exact_hpp() {
        let shape = Shape::grid2(12, 17).unwrap();
        let g = lattice_gas::init::random_hpp(shape, 0.4, 7).unwrap();
        let rule = HppRule::new();
        for depth in [1usize, 2, 5] {
            let report = Pipeline::serial(depth).run(&rule, &g, 0).unwrap();
            let reference = evolve(&g, &rule, Boundary::null(), 0, depth as u64);
            assert_eq!(report.grid, reference, "depth={depth}");
            assert_eq!(report.generations, depth as u64);
        }
    }

    #[test]
    fn wide_pipeline_is_bit_exact_fhp() {
        let shape = Shape::grid2(10, 24).unwrap();
        let g = lattice_gas::init::random_fhp(shape, FhpVariant::III, 0.35, 3, false).unwrap();
        let rule = FhpRule::new(FhpVariant::III, 99);
        let reference = evolve(&g, &rule, Boundary::null(), 0, 4);
        for width in [1usize, 2, 4] {
            let report = Pipeline::wide(width, 4).run(&rule, &g, 0).unwrap();
            assert_eq!(report.grid, reference, "width={width}");
        }
    }

    #[test]
    fn wide_pipeline_nonzero_t0_matches_reference() {
        // FHP chirality depends on absolute time; the pipeline must
        // stamp each stage with the right generation.
        let shape = Shape::grid2(8, 8).unwrap();
        let g = lattice_gas::init::random_fhp(shape, FhpVariant::I, 0.5, 1, false).unwrap();
        let rule = FhpRule::new(FhpVariant::I, 5);
        let reference = evolve(&g, &rule, Boundary::null(), 17, 3);
        let report = Pipeline::wide(2, 3).run(&rule, &g, 17).unwrap();
        assert_eq!(report.grid, reference);
    }

    #[test]
    fn memory_traffic_is_one_pass() {
        let shape = Shape::grid2(8, 16).unwrap();
        let g = lattice_gas::init::random_hpp(shape, 0.3, 2).unwrap();
        let report = Pipeline::wide(2, 3).run(&HppRule::new(), &g, 0).unwrap();
        let n = shape.len() as u128;
        // One stream in, one stream out, regardless of depth.
        assert_eq!(report.memory_traffic.bits_in, n * 8);
        assert_eq!(report.memory_traffic.bits_out, n * 8);
        // Pins: every stage sees the stream once each way.
        assert_eq!(report.pin_traffic.bits_in, 3 * n * 8);
        assert_eq!(report.pin_traffic.bits_out, 3 * n * 8);
    }

    #[test]
    fn throughput_approaches_p_per_tick() {
        let shape = Shape::grid2(32, 64).unwrap();
        let g = lattice_gas::init::random_hpp(shape, 0.3, 2).unwrap();
        let rule = HppRule::new();
        let r1 = Pipeline::wide(1, 4).run(&rule, &g, 0).unwrap();
        let r4 = Pipeline::wide(4, 4).run(&rule, &g, 0).unwrap();
        // 4-wide runs ≈ 4× the updates/tick of 1-wide.
        let ratio = r4.updates_per_tick() / r1.updates_per_tick();
        assert!((3.4..=4.2).contains(&ratio), "ratio {ratio}");
        // Utilization is high once fill/drain amortizes.
        assert!(r4.utilization() > 0.8, "{}", r4.utilization());
    }

    #[test]
    fn bandwidth_demand_matches_analytical_2dp() {
        // The measured steady-state demand equals the paper's 2·D·P
        // bits/tick.
        let shape = Shape::grid2(64, 64).unwrap();
        let g = lattice_gas::init::random_fhp(shape, FhpVariant::I, 0.2, 4, false).unwrap();
        let rule = FhpRule::new(FhpVariant::I, 8);
        for p in [1u32, 2, 4] {
            let report = Pipeline::wide(p as usize, 2).run(&rule, &g, 0).unwrap();
            let measured = report.memory_bits_per_tick().get();
            let analytical = f64::from(2 * 8 * p);
            // Fill/drain ticks dilute the average slightly below peak.
            assert!(
                measured <= analytical && measured > 0.85 * analytical,
                "P={p}: measured {measured} vs {analytical}"
            );
        }
    }

    #[test]
    fn sr_cells_match_formula() {
        let shape = Shape::grid2(16, 100).unwrap();
        let g = lattice_gas::init::random_hpp(shape, 0.3, 2).unwrap();
        let report = Pipeline::wide(4, 2).run(&HppRule::new(), &g, 0).unwrap();
        assert_eq!(report.sr_cells_per_stage, Cells::new(2 * 100 + 4 + 2));
    }

    #[test]
    fn zero_depth_is_an_error() {
        let shape = Shape::grid2(4, 4).unwrap();
        let g: Grid<u8> = Grid::new(shape);
        assert!(Pipeline::serial(0).run(&HppRule::new(), &g, 0).is_err());
    }

    #[test]
    fn one_dimensional_pipeline_runs_eca() {
        use lattice_gas::ElementaryCa;
        let shape = Shape::line(64).unwrap();
        let g = Grid::from_fn(shape, |c| c.col() % 3 == 0);
        let rule = ElementaryCa::new(110);
        let reference = evolve(&g, &rule, Boundary::null(), 0, 8);
        let report = Pipeline::serial(8).run(&rule, &g, 0).unwrap();
        assert_eq!(report.grid, reference);
        // 1-bit sites: D = 1 in the traffic accounting.
        assert_eq!(report.memory_traffic.bits_in, 64);
    }
}
