//! Host-side halo framing for periodic boundaries.
//!
//! A streaming pipeline stage cannot see the far edge of the lattice
//! when it processes the near edge, so toroidal boundaries cannot ride a
//! deep pipeline in one pass. The standard host-side fix: frame the
//! lattice with a one-site halo copied from the opposite edges, run a
//! *single* generation over the framed lattice, and keep the interior.
//! Repeating per generation gives exact periodic evolution at the cost
//! of one pass per generation — which is exactly the trade §7 alludes to
//! when it allows boundaries to be "toroidally connected with full
//! connectivity".

use crate::faults::FaultStats;
use crate::metrics::EngineReport;
use crate::pipeline::Pipeline;
use lattice_core::bits::Traffic;
use lattice_core::units::{u64_from_usize, Cells, Sites, Ticks};
use lattice_core::{Coord, Grid, LatticeError, Rule, Shape, State};

/// Builds the `(rows+2) × (cols+2)` halo-framed copy of `grid` with
/// toroidal wrap.
pub fn frame_periodic<S: State>(grid: &Grid<S>) -> Result<Grid<S>, LatticeError> {
    let shape = grid.shape();
    if shape.rank() != 2 {
        return Err(LatticeError::InvalidConfig("halo framing needs a 2-D lattice".into()));
    }
    let (rows, cols) = (shape.rows(), shape.cols());
    let framed = Shape::grid2(rows + 2, cols + 2)?;
    Ok(Grid::from_fn(framed, |c| {
        let r = (c.row() + rows - 1) % rows;
        let col = (c.col() + cols - 1) % cols;
        grid.get(Coord::c2(r, col))
    }))
}

/// Extracts the interior of a halo-framed lattice.
pub fn unframe<S: State>(framed: &Grid<S>, shape: Shape) -> Result<Grid<S>, LatticeError> {
    let fs = framed.shape();
    if fs.rows() != shape.rows() + 2 || fs.cols() != shape.cols() + 2 {
        return Err(LatticeError::ShapeMismatch {
            left: fs.dims().to_vec(),
            right: shape.dims().to_vec(),
        });
    }
    Ok(Grid::from_fn(shape, |c| framed.get(Coord::c2(c.row() + 1, c.col() + 1))))
}

/// Runs `generations` of `rule` over `grid` with periodic boundaries on
/// a width-`p` pipeline, one host-framed pass per generation.
///
/// The stream origin is shifted by (−1, −1) so rules see the *unframed*
/// (true torus) coordinates: a coordinate-dependent rule like FHP works
/// bit-exactly provided it was built `with_wrap(rows, cols)` for the
/// true lattice (the chirality hashes then wrap identically to the
/// reference engine's). Traffic accumulates across passes; the returned
/// report's `grid` is exact.
pub fn run_periodic<R: Rule>(
    rule: &R,
    grid: &Grid<R::S>,
    p: usize,
    generations: u64,
) -> Result<EngineReport<R::S>, LatticeError> {
    let shape = grid.shape();
    let mut current = grid.clone();
    let mut memory = Traffic::new();
    let mut pins = Traffic::new();
    let mut ticks = Ticks::ZERO;
    let mut sr = Cells::ZERO;
    let mut faults = FaultStats::default();
    let origin = (0usize.wrapping_sub(1), 0usize.wrapping_sub(1));
    for g in 0..generations {
        let framed = frame_periodic(&current)?;
        let report = Pipeline::wide(p, 1).run_at(rule, &framed, g, origin)?;
        current = unframe(&report.grid, shape)?;
        memory.merge(report.memory_traffic);
        pins.merge(report.pin_traffic);
        ticks += report.ticks;
        sr = sr.max(report.sr_cells_per_stage);
        faults.merge(report.faults);
    }
    Ok(EngineReport {
        grid: current,
        generations,
        updates: Sites::new(u64_from_usize(shape.len())) * generations,
        ticks,
        memory_traffic: memory,
        pin_traffic: pins,
        side_traffic: Traffic::new(),
        offchip_sr_traffic: Traffic::new(),
        sr_cells_per_stage: sr,
        stages: 1,
        width: p as u32,
        faults,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use lattice_core::{evolve, Boundary};
    use lattice_gas::HppRule;

    #[test]
    fn frame_copies_wrapped_edges() {
        let shape = Shape::grid2(2, 3).unwrap();
        let g = Grid::from_vec(shape, vec![1u8, 2, 3, 4, 5, 6]).unwrap();
        let f = frame_periodic(&g).unwrap();
        assert_eq!(f.shape().dims(), &[4, 5]);
        // Corner halo = opposite corner.
        assert_eq!(f.get(Coord::c2(0, 0)), 6);
        assert_eq!(f.get(Coord::c2(3, 4)), 1);
        // Interior preserved.
        assert_eq!(f.get(Coord::c2(1, 1)), 1);
        assert_eq!(f.get(Coord::c2(2, 3)), 6);
        // Row halo wraps vertically.
        assert_eq!(f.get(Coord::c2(0, 1)), 4);
    }

    #[test]
    fn unframe_inverts_frame() {
        let shape = Shape::grid2(4, 5).unwrap();
        let g = Grid::from_fn(shape, |c| (shape.linear(c) % 251) as u8);
        let f = frame_periodic(&g).unwrap();
        assert_eq!(unframe(&f, shape).unwrap(), g);
        assert!(unframe(&f, Shape::grid2(3, 5).unwrap()).is_err());
    }

    #[test]
    fn periodic_pipeline_matches_reference_hpp() {
        // HPP has no coordinate-dependent randomness, so framed
        // coordinates are harmless and the torus evolution is exact.
        let shape = Shape::grid2(8, 10).unwrap();
        let g = lattice_gas::init::random_hpp(shape, 0.45, 3).unwrap();
        let rule = HppRule::new();
        let reference = evolve(&g, &rule, Boundary::Periodic, 0, 5);
        let report = run_periodic(&rule, &g, 2, 5).unwrap();
        assert_eq!(report.grid, reference);
        assert_eq!(report.generations, 5);
        // One pass per generation: 5× the single-pass memory traffic of
        // the framed lattice.
        assert_eq!(report.memory_traffic.bits_in as usize, 5 * 10 * 12 * 8);
    }

    #[test]
    fn periodic_pipeline_matches_reference_fhp() {
        // FHP's chirality and hex parity depend on absolute coordinates;
        // the origin-shifted framing plus with_wrap makes the pipelined
        // torus bit-exact against the reference engine. Even rows only
        // (hex torus constraint).
        use lattice_gas::{FhpRule, FhpVariant};
        let (rows, cols) = (8usize, 10usize);
        let shape = Shape::grid2(rows, cols).unwrap();
        let g = lattice_gas::init::random_fhp(shape, FhpVariant::III, 0.4, 6, true).unwrap();
        let rule = FhpRule::new(FhpVariant::III, 31).with_wrap(rows, cols);
        let reference = evolve(&g, &rule, Boundary::Periodic, 0, 6);
        let report = run_periodic(&rule, &g, 2, 6).unwrap();
        assert_eq!(report.grid, reference);
    }

    #[test]
    fn framing_rejects_1d() {
        let g = Grid::<u8>::new(Shape::line(5).unwrap());
        assert!(frame_periodic(&g).is_err());
    }
}
