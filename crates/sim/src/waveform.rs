//! Pipeline waveforms: the §3 wavefront, made visible.
//!
//! "The computation proceeds on a wavefront through time and space,
//! each succeeding PE using the data from the previous PE without the
//! need for further external data." This module runs a pipeline while
//! sampling per-stage progress every tick, producing both a checkable
//! record (the wavefront invariants below are unit-tested) and a
//! rendered ASCII waveform for humans.
//!
//! Wavefront invariants, verified by [`Waveform::check_invariants`]:
//!
//! 1. progress is monotone: no stage ever un-receives or un-emits;
//! 2. causality: stage `j` can never have emitted more than stage
//!    `j − 1` (its input source);
//! 3. skew: stage `j` starts emitting roughly one row later than stage
//!    `j − 1` (the two-row window fill).

use crate::stage::{LineBufferStage, StageConfig};
use lattice_core::{Grid, LatticeError, Rule};

/// One sampled tick: per-stage (received, emitted).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Sample {
    /// Tick number (1-based).
    pub tick: u64,
    /// Per-stage cumulative sites received.
    pub received: Vec<usize>,
    /// Per-stage cumulative sites emitted.
    pub emitted: Vec<usize>,
}

/// A recorded pipeline run.
#[derive(Debug, Clone)]
pub struct Waveform {
    /// Samples, every `stride` ticks.
    pub samples: Vec<Sample>,
    /// Stages in the pipeline.
    pub depth: usize,
    /// Sites per generation.
    pub sites: usize,
    /// Lattice width (for the skew invariant).
    pub cols: usize,
}

/// Runs a width-`width`, depth-`depth` pipeline over `grid`, sampling
/// stage progress every `stride` ticks.
pub fn record<R: Rule>(
    rule: &R,
    grid: &Grid<R::S>,
    width: usize,
    depth: usize,
    stride: u64,
) -> Result<Waveform, LatticeError> {
    if depth == 0 || width == 0 || stride == 0 {
        return Err(LatticeError::InvalidConfig("need width, depth, stride ≥ 1".into()));
    }
    let shape = grid.shape();
    let n = shape.len();
    let mut stages = Vec::with_capacity(depth);
    for j in 0..depth {
        stages.push(LineBufferStage::new(
            rule,
            StageConfig { shape, width, fill: R::S::default(), gen: j as u64, origin: (0, 0) },
        )?);
    }
    let data = grid.as_slice();
    let mut fed = 0usize;
    let mut bus: Vec<Vec<R::S>> = vec![Vec::new(); depth + 1];
    let mut samples = Vec::new();
    let mut tick = 0u64;
    while stages.last().expect("depth ≥ 1").emitted() < n {
        tick += 1;
        let take = width.min(n - fed);
        bus[0].clear();
        bus[0].extend_from_slice(&data[fed..fed + take]);
        fed += take;
        for (j, stage) in stages.iter_mut().enumerate() {
            let (inp, out) = {
                let (a, b) = bus.split_at_mut(j + 1);
                (&a[j], &mut b[0])
            };
            out.clear();
            stage.tick(inp, out);
        }
        if tick.is_multiple_of(stride) || stages.last().unwrap().emitted() == n {
            samples.push(Sample {
                tick,
                received: stages.iter().map(|s| s.received()).collect(),
                emitted: stages.iter().map(|s| s.emitted()).collect(),
            });
        }
        if tick > (10 * n as u64 + 1000) * depth as u64 {
            return Err(LatticeError::InvalidConfig("waveform run wedged (bug)".into()));
        }
    }
    let cols = shape.cols();
    Ok(Waveform { samples, depth, sites: n, cols })
}

impl Waveform {
    /// Verifies the wavefront invariants; returns a description of the
    /// first violation, if any.
    pub fn check_invariants(&self) -> Result<(), String> {
        let mut prev: Option<&Sample> = None;
        for s in &self.samples {
            for j in 0..self.depth {
                if s.emitted[j] > s.received[j] {
                    return Err(format!(
                        "tick {}: stage {j} emitted {} > received {}",
                        s.tick, s.emitted[j], s.received[j]
                    ));
                }
                if j > 0 && s.received[j] > s.emitted[j - 1] {
                    return Err(format!(
                        "tick {}: stage {j} received {} > upstream emitted {}",
                        s.tick,
                        s.received[j],
                        s.emitted[j - 1]
                    ));
                }
                // Skew: once a stage is past its fill and the stream is
                // still flowing, it lags its input by at least a row
                // (in the drain the remaining windows hang off the
                // lattice bottom, so the lag legitimately collapses).
                if s.emitted[j] > 0
                    && s.received[j] < self.sites
                    && s.received[j].saturating_sub(s.emitted[j]) + 2 < self.cols
                {
                    return Err(format!(
                        "tick {}: stage {j} window fill {} below one row",
                        s.tick,
                        s.received[j] - s.emitted[j]
                    ));
                }
            }
            if let Some(p) = prev {
                for j in 0..self.depth {
                    if s.received[j] < p.received[j] || s.emitted[j] < p.emitted[j] {
                        return Err(format!("tick {}: stage {j} went backwards", s.tick));
                    }
                }
            }
            prev = Some(s);
        }
        Ok(())
    }

    /// Renders an ASCII waveform: one row per sample, one bar per stage
    /// showing fraction of the stream emitted.
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str("tick      ");
        for j in 0..self.depth {
            out.push_str(&format!("stage{j:<2}    "));
        }
        out.push('\n');
        for s in &self.samples {
            out.push_str(&format!("{:>8}  ", s.tick));
            for j in 0..self.depth {
                let frac = s.emitted[j] as f64 / self.sites as f64;
                let filled = (frac * 8.0).round() as usize;
                out.push('[');
                for i in 0..8 {
                    out.push(if i < filled { '#' } else { '.' });
                }
                out.push_str("] ");
            }
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lattice_core::Shape;
    use lattice_gas::{init, HppRule};

    fn workload() -> (Grid<u8>, HppRule) {
        let shape = Shape::grid2(16, 24).unwrap();
        (init::random_hpp(shape, 0.3, 4).unwrap(), HppRule::new())
    }

    #[test]
    fn wavefront_invariants_hold() {
        let (g, rule) = workload();
        for (w, k) in [(1usize, 1usize), (2, 4), (3, 2)] {
            let wf = record(&rule, &g, w, k, 7).unwrap();
            wf.check_invariants().unwrap_or_else(|e| panic!("w={w} k={k}: {e}"));
            assert_eq!(wf.samples.last().unwrap().emitted[k - 1], 16 * 24);
        }
    }

    #[test]
    fn stages_start_in_cascade() {
        // Stage j's first emission comes ≈ one row after stage j−1's —
        // the visible wavefront skew.
        let (g, rule) = workload();
        let wf = record(&rule, &g, 1, 4, 1).unwrap();
        let first_emit: Vec<u64> = (0..4)
            .map(|j| {
                wf.samples
                    .iter()
                    .find(|s| s.emitted[j] > 0)
                    .map(|s| s.tick)
                    .expect("every stage emits")
            })
            .collect();
        for j in 1..4 {
            let skew = first_emit[j] - first_emit[j - 1];
            assert!((20..=30).contains(&skew), "stage {j} skew {skew} (cols = 24)");
        }
    }

    #[test]
    fn render_produces_bars() {
        let (g, rule) = workload();
        let wf = record(&rule, &g, 2, 2, 50).unwrap();
        let text = wf.render();
        assert!(text.contains("stage0"));
        assert!(text.contains('#'));
        assert!(text.lines().count() >= 3);
    }

    #[test]
    fn bad_configs_rejected() {
        let (g, rule) = workload();
        assert!(record(&rule, &g, 0, 1, 1).is_err());
        assert!(record(&rule, &g, 1, 0, 1).is_err());
        assert!(record(&rule, &g, 1, 1, 0).is_err());
    }
}
