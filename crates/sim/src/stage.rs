//! The line-buffer pipeline stage — the heart of every engine here.
//!
//! A stage receives the site stream of generation `t` in raster order,
//! `P` sites per clock tick, holds a sliding window of the last
//! `≈ 2·cols + P` sites in a ring of shift registers, and emits the
//! generation-`t+1` stream, delayed by a little over one lattice row.
//! "Each succeeding PE using the data from the previous PE without the
//! need for further external data" (§3) — cascading `k` stages yields
//! `k` generations in one pass.
//!
//! The stage supports null (fixed-fill) boundaries natively — the
//! hardware substitutes the fill value when its window hangs off the
//! lattice edge. Periodic boundaries are handled by host-side halo
//! framing (see [`crate::halo`]).

use crate::faults::{Component, FaultHook};
use lattice_core::window::{window_len, WINDOW_MAX};
use lattice_core::{Coord, LatticeError, Rule, Shape, Window};

/// Configuration of one pipeline stage.
#[derive(Debug, Clone, Copy)]
pub struct StageConfig<S: lattice_core::State> {
    /// Lattice shape of the stream (rank 1 or 2).
    pub shape: Shape,
    /// PEs in this stage (`P` — sites consumed and produced per tick).
    pub width: usize,
    /// Boundary fill value (the "null" boundary).
    pub fill: S,
    /// Generation number of the *input* stream (outputs are `gen + 1`).
    pub gen: u64,
    /// Global coordinate of the stream's `(0, 0)` — nonzero when the
    /// stage processes a slice or halo-framed sub-lattice but rules need
    /// global coordinates (FHP parity and chirality hashes).
    pub origin: (usize, usize),
}

impl<S: lattice_core::State> StageConfig<S> {
    /// Validates the configuration.
    pub fn validate(&self) -> Result<(), LatticeError> {
        if self.shape.rank() > 2 {
            return Err(LatticeError::InvalidConfig(
                "line-buffer stages stream rank-1 or rank-2 lattices".into(),
            ));
        }
        if self.width == 0 {
            return Err(LatticeError::InvalidConfig("stage width must be ≥ 1".into()));
        }
        Ok(())
    }

    /// Shift-register cells the stage architecture requires: the stream
    /// span of the radius-1 window plus one cell per additional PE —
    /// `2·cols + P + 2` for rank 2 (compare the paper's hex figure
    /// `2L + 7P + 3`; the constant differs because their PE datapath
    /// stages seven cells per PE, ours one), `P + 2` for rank 1.
    pub fn required_cells(&self) -> usize {
        if self.shape.rank() == 2 {
            2 * self.shape.cols() + self.width + 2
        } else {
            self.width + 2
        }
    }
}

/// A streaming pipeline stage: ring buffer + `P` PEs.
pub struct LineBufferStage<'r, R: Rule> {
    rule: &'r R,
    cfg: StageConfig<R::S>,
    ring: Vec<R::S>,
    received: usize,
    emitted: usize,
    rows: usize,
    cols: usize,
    n: usize,
    peak_occupancy: usize,
    faults: Option<FaultHook<'r>>,
}

impl<'r, R: Rule> LineBufferStage<'r, R> {
    /// Creates a stage.
    pub fn new(rule: &'r R, cfg: StageConfig<R::S>) -> Result<Self, LatticeError> {
        cfg.validate()?;
        let (rows, cols) = if cfg.shape.rank() == 2 {
            (cfg.shape.rows(), cfg.shape.cols())
        } else {
            (1, cfg.shape.cols())
        };
        // A little headroom over the architectural requirement keeps the
        // index arithmetic simple; `required_cells` stays the reported
        // metric.
        let cap = cfg.required_cells() + cfg.width + 2;
        Ok(LineBufferStage {
            rule,
            cfg,
            ring: vec![cfg.fill; cap],
            received: 0,
            emitted: 0,
            rows,
            cols,
            n: rows * cols,
            peak_occupancy: 0,
            faults: None,
        })
    }

    /// Attaches a fault-injection hook: stored sites pass through the
    /// hook's shift-register (and, past `offchip_from`, off-chip SR)
    /// faults, and computed sites through its PE-output faults.
    pub fn with_faults(mut self, hook: FaultHook<'r>) -> Self {
        self.faults = Some(hook);
        self
    }

    /// The stage configuration.
    pub fn config(&self) -> &StageConfig<R::S> {
        &self.cfg
    }

    /// Sites received so far.
    pub fn received(&self) -> usize {
        self.received
    }

    /// Sites emitted so far.
    pub fn emitted(&self) -> usize {
        self.emitted
    }

    /// True once the stage has emitted its whole output stream.
    pub fn done(&self) -> bool {
        self.emitted == self.n
    }

    /// Peak simultaneously-live cells observed (≤ `required_cells`).
    pub fn peak_occupancy(&self) -> usize {
        self.peak_occupancy
    }

    fn cell(&self, pos: usize) -> R::S {
        debug_assert!(pos < self.received);
        debug_assert!(pos + self.ring.len() > self.received, "ring under-run");
        self.ring[pos % self.ring.len()]
    }

    /// Linear index `i`'s output is ready once the furthest window cell
    /// (one row and one column ahead) has been received.
    fn ready(&self, i: usize) -> bool {
        let need = if self.cfg.shape.rank() == 2 { i + self.cols + 2 } else { i + 2 };
        self.received >= need.min(self.n)
    }

    fn compute(&self, i: usize) -> R::S {
        let (r, c) = (i / self.cols, i % self.cols);
        let rank = self.cfg.shape.rank();
        let mut cells = [self.cfg.fill; WINDOW_MAX];
        let mut idx = 0usize;
        if rank == 2 {
            for dr in -1isize..=1 {
                for dc in -1isize..=1 {
                    let (rr, cc) = (r as isize + dr, c as isize + dc);
                    cells[idx] =
                        if rr < 0 || cc < 0 || rr >= self.rows as isize || cc >= self.cols as isize
                        {
                            self.cfg.fill
                        } else {
                            self.cell(rr as usize * self.cols + cc as usize)
                        };
                    idx += 1;
                }
            }
        } else {
            for dc in -1isize..=1 {
                let cc = c as isize + dc;
                cells[idx] = if cc < 0 || cc >= self.cols as isize {
                    self.cfg.fill
                } else {
                    self.cell(cc as usize)
                };
                idx += 1;
            }
        }
        debug_assert_eq!(idx, window_len(rank));
        let coord = if rank == 2 {
            // Wrapping: a slice's halo origin may be "global column -1"
            // (usize::MAX); interior coordinates wrap back into range.
            Coord::c2(r.wrapping_add(self.cfg.origin.0), c.wrapping_add(self.cfg.origin.1))
        } else {
            Coord::c1(c.wrapping_add(self.cfg.origin.1))
        };
        let w = Window::from_cells(rank, coord, self.cfg.gen, cells);
        self.rule.update(&w)
    }

    /// Advances one clock tick: accepts up to `width` new sites (empty
    /// while draining) and appends up to `width` output sites to `out`.
    ///
    /// Returns the number of sites emitted this tick.
    pub fn tick(&mut self, inputs: &[R::S], out: &mut Vec<R::S>) -> usize {
        assert!(inputs.len() <= self.cfg.width, "at most P sites per tick");
        assert!(self.received + inputs.len() <= self.n, "stream overrun");
        for &s in inputs {
            let cap = self.ring.len();
            let cell = self.received % cap;
            let mut s = s;
            if let Some(h) = &self.faults {
                s = h.ctx.corrupt_site(Component::SrCell, h.chip, cell, self.received as u64, s);
                if h.offchip_from.is_some_and(|th| cell >= th) {
                    s = h.ctx.corrupt_site(
                        Component::OffchipSr,
                        h.chip,
                        cell,
                        self.received as u64,
                        s,
                    );
                }
            }
            self.ring[cell] = s;
            self.received += 1;
        }
        // Track live span: oldest cell still needed is for output
        // `emitted` (window back one row and one column).
        let emitted_before = self.emitted;
        while self.emitted < self.n
            && self.emitted < emitted_before + self.cfg.width
            && self.ready(self.emitted)
        {
            let mut v = self.compute(self.emitted);
            if let Some(h) = &self.faults {
                v = h.ctx.corrupt_site(Component::PeOutput, h.chip, 0, self.emitted as u64, v);
            }
            out.push(v);
            self.emitted += 1;
        }
        let back = if self.cfg.shape.rank() == 2 { self.cols + 1 } else { 1 };
        let oldest_needed = self.emitted.saturating_sub(back);
        self.peak_occupancy =
            self.peak_occupancy.max(self.received - oldest_needed.min(self.received));
        self.emitted - emitted_before
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lattice_core::rule::IdentityRule;
    use lattice_core::{evolve, Boundary, Grid};

    struct Sum2d;
    impl Rule for Sum2d {
        type S = u8;
        fn update(&self, w: &Window<u8>) -> u8 {
            w.cells().iter().fold(0u8, |a, &b| a.wrapping_add(b))
        }
    }

    fn drive_one_pass<R: Rule>(
        rule: &R,
        grid: &Grid<R::S>,
        width: usize,
        gen: u64,
    ) -> (Vec<R::S>, usize, usize) {
        let cfg =
            StageConfig { shape: grid.shape(), width, fill: R::S::default(), gen, origin: (0, 0) };
        let mut stage = LineBufferStage::new(rule, cfg).unwrap();
        let data = grid.as_slice();
        let mut out = Vec::with_capacity(data.len());
        let mut fed = 0usize;
        let mut ticks = 0usize;
        while !stage.done() {
            let take = width.min(data.len() - fed);
            stage.tick(&data[fed..fed + take], &mut out);
            fed += take;
            ticks += 1;
            assert!(ticks < 10 * data.len() + 100, "stage wedged");
        }
        let peak = stage.peak_occupancy();
        (out, ticks, peak)
    }

    use lattice_core::Shape;

    #[test]
    fn identity_stage_reproduces_stream() {
        let shape = Shape::grid2(5, 7).unwrap();
        let g = Grid::from_fn(shape, |c| (shape.linear(c) % 251) as u8);
        let (out, ticks, _) = drive_one_pass(&IdentityRule::<u8>::new(), &g, 1, 0);
        assert_eq!(out, g.as_slice());
        // Latency: one row plus the diagonal margin.
        assert_eq!(ticks, shape.len() + shape.cols() + 1);
    }

    #[test]
    fn stage_matches_reference_engine_2d() {
        let shape = Shape::grid2(9, 11).unwrap();
        let g = Grid::from_fn(shape, |c| (shape.linear(c) * 37 % 256) as u8);
        let reference = evolve(&g, &Sum2d, Boundary::null(), 0, 1);
        for width in [1usize, 2, 3, 4, 11] {
            let (out, _, _) = drive_one_pass(&Sum2d, &g, width, 0);
            assert_eq!(out, reference.as_slice(), "width={width}");
        }
    }

    #[test]
    fn stage_matches_reference_engine_1d() {
        struct Sum1d;
        impl Rule for Sum1d {
            type S = u8;
            fn update(&self, w: &Window<u8>) -> u8 {
                w.at1(-1).wrapping_add(w.center()).wrapping_add(w.at1(1))
            }
        }
        let shape = Shape::line(23).unwrap();
        let g = Grid::from_fn(shape, |c| (c.col() * 13 % 256) as u8);
        let reference = evolve(&g, &Sum1d, Boundary::null(), 0, 1);
        for width in [1usize, 2, 5] {
            let (out, _, _) = drive_one_pass(&Sum1d, &g, width, 0);
            assert_eq!(out, reference.as_slice(), "width={width}");
        }
    }

    #[test]
    fn wide_stage_throughput_scales() {
        let shape = Shape::grid2(16, 32).unwrap();
        let g = Grid::from_fn(shape, |c| (shape.linear(c) % 256) as u8);
        let (_, t1, _) = drive_one_pass(&Sum2d, &g, 1, 0);
        let (_, t4, _) = drive_one_pass(&Sum2d, &g, 4, 0);
        // 4 PEs process the stream in ≈ 1/4 the ticks.
        assert!(t4 * 3 < t1, "t1={t1}, t4={t4}");
    }

    #[test]
    fn occupancy_stays_within_required_cells() {
        let shape = Shape::grid2(12, 30).unwrap();
        let g = Grid::from_fn(shape, |c| (shape.linear(c) % 256) as u8);
        for width in [1usize, 2, 5] {
            let cfg = StageConfig { shape, width, fill: 0u8, gen: 0, origin: (0, 0) };
            let required = cfg.required_cells();
            let (_, _, peak) = drive_one_pass(&Sum2d, &g, width, 0);
            assert!(peak <= required, "width={width}: peak {peak} > required {required}");
            // And the requirement is tight to within a PE-width margin.
            assert!(peak + width + 4 >= required, "width={width}: peak {peak} vs {required}");
        }
    }

    #[test]
    fn origin_offsets_window_coordinates() {
        struct CoordProbe;
        impl Rule for CoordProbe {
            type S = u8;
            fn update(&self, w: &Window<u8>) -> u8 {
                (w.coord().row() * 16 + w.coord().col()) as u8
            }
        }
        let shape = Shape::grid2(2, 3).unwrap();
        let g: Grid<u8> = Grid::new(shape);
        let cfg = StageConfig { shape, width: 1, fill: 0u8, gen: 5, origin: (4, 8) };
        let mut stage = LineBufferStage::new(&CoordProbe, cfg).unwrap();
        let mut out = Vec::new();
        let mut fed = 0;
        while !stage.done() {
            let take = usize::from(fed < g.len());
            stage.tick(&g.as_slice()[fed..fed + take], &mut out);
            fed += take;
        }
        assert_eq!(out[0], 4 * 16 + 8);
        assert_eq!(out[5], 5 * 16 + 10);
    }

    #[test]
    fn config_validation() {
        let bad = StageConfig {
            shape: Shape::grid3(2, 2, 2).unwrap(),
            width: 1,
            fill: 0u8,
            gen: 0,
            origin: (0, 0),
        };
        assert!(bad.validate().is_err());
        let bad = StageConfig {
            shape: Shape::grid2(2, 2).unwrap(),
            width: 0,
            fill: 0u8,
            gen: 0,
            origin: (0, 0),
        };
        assert!(bad.validate().is_err());
        assert!(LineBufferStage::new(&Sum2d, bad).is_err());
    }

    #[test]
    fn required_cells_formula() {
        let cfg = StageConfig {
            shape: Shape::grid2(10, 100).unwrap(),
            width: 4,
            fill: 0u8,
            gen: 0,
            origin: (0, 0),
        };
        assert_eq!(cfg.required_cells(), 206);
        let cfg1 = StageConfig {
            shape: Shape::line(50).unwrap(),
            width: 1,
            fill: 0u8,
            gen: 0,
            origin: (0, 0),
        };
        assert_eq!(cfg1.required_cells(), 3);
    }

    #[test]
    #[should_panic(expected = "at most P sites")]
    fn overfeeding_a_tick_panics() {
        let shape = Shape::grid2(3, 3).unwrap();
        let cfg = StageConfig { shape, width: 1, fill: 0u8, gen: 0, origin: (0, 0) };
        let mut stage = LineBufferStage::new(&Sum2d, cfg).unwrap();
        let mut out = Vec::new();
        stage.tick(&[1, 2], &mut out);
    }
}
