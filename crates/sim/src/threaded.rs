//! Thread-parallel pipeline execution.
//!
//! The sequential driver in [`crate::pipeline`] evaluates all stages in
//! one loop; here each stage runs on its own OS thread connected by
//! bounded channels — the software analogue of the paper's chips
//! genuinely running concurrently, and an ablation showing the simulator
//! itself scales across cores. One tick of inter-chip register delay is
//! modeled by the channel hand-off.
//!
//! Functional contract: identical output and identical traffic counts to
//! [`Pipeline::run`]; tick counts differ only by the `depth − 1`
//! register skew. Fault injection is keyed by stream position, not by
//! tick, so a seeded [`FaultCtx`] injects the identical events here and
//! in the sequential driver.
//!
//! Failure contract: a stage worker that dies — a panicking rule, a
//! killed thread, a disconnected channel mid-stream — surfaces as an
//! `Err`, never as a panic of the caller and never as a silently
//! default-filled lattice.
//!
//! [`Pipeline::run`]: crate::pipeline::Pipeline::run

use crate::faults::{Component, FaultCtx, FaultHook};
use crate::metrics::EngineReport;
use crate::stage::{LineBufferStage, StageConfig};
use crossbeam::channel::bounded;
use lattice_core::bits::{StreamParity, Traffic};
use lattice_core::units::{u64_from_usize, Cells, Sites, Ticks};
use lattice_core::{Grid, LatticeError, Rule, State};

/// Per-stage result carried back from its worker thread.
struct StageResult {
    local_ticks: u64,
    in_sites: u64,
    out_sites: u64,
    sent: StreamParity,
    recv: StreamParity,
}

/// Runs a width-`p`, depth-`k` pipeline with one thread per stage.
///
/// See [`crate::pipeline::Pipeline::run`] for the semantics; this is the
/// concurrent execution of the same machine.
pub fn run_threaded<R: Rule>(
    rule: &R,
    grid: &Grid<R::S>,
    width: usize,
    depth: usize,
    t0: u64,
) -> Result<EngineReport<R::S>, LatticeError> {
    run_threaded_with_faults(rule, grid, width, depth, t0, None)
}

/// [`run_threaded`] with fault injection; chip `j` is stage `j`.
pub fn run_threaded_with_faults<R: Rule>(
    rule: &R,
    grid: &Grid<R::S>,
    width: usize,
    depth: usize,
    t0: u64,
    faults: Option<FaultCtx<'_>>,
) -> Result<EngineReport<R::S>, LatticeError> {
    if depth == 0 || width == 0 {
        return Err(LatticeError::InvalidConfig("pipeline needs width, depth ≥ 1".into()));
    }
    let fault_base = faults.map(|c| c.plan.stats()).unwrap_or_default();
    let shape = grid.shape();
    let n = shape.len();
    let d_bits = R::S::BITS;

    // Build stages up front so config errors surface before spawning.
    let mut stages = Vec::with_capacity(depth);
    for j in 0..depth {
        let mut stage = LineBufferStage::new(
            rule,
            StageConfig { shape, width, fill: R::S::default(), gen: t0 + j as u64, origin: (0, 0) },
        )?;
        if let Some(ctx) = faults {
            stage = stage.with_faults(FaultHook { ctx, chip: j, offchip_from: None });
        }
        stages.push(stage);
    }
    let sr_cells = stages.iter().map(|s| s.config().required_cells() as u64).max().unwrap();

    let data = grid.as_slice();
    type ScopeOut<S> = Result<(Vec<StageResult>, Vec<S>), LatticeError>;
    let scoped = crossbeam::thread::scope(|scope| -> ScopeOut<R::S> {
        // Channel chain: feeder -> stage 0 -> … -> stage k-1 -> sink.
        let mut senders = Vec::with_capacity(depth + 1);
        let mut receivers = Vec::with_capacity(depth + 1);
        for _ in 0..=depth {
            let (tx, rx) = bounded::<Vec<R::S>>(8);
            senders.push(tx);
            receivers.push(rx);
        }
        let mut senders_iter = senders.into_iter();
        let mut receivers_iter = receivers.into_iter();

        // Feeder.
        let feed_tx = senders_iter.next().expect("feeder channel");
        scope.spawn(move |_| {
            for chunk in data.chunks(width) {
                if feed_tx.send(chunk.to_vec()).is_err() {
                    return;
                }
            }
            // Dropping feed_tx closes the channel: downstream drains.
        });

        // Stage workers.
        let mut handles = Vec::with_capacity(depth);
        for (j, stage) in stages.into_iter().enumerate() {
            let rx = receivers_iter.next().expect("stage input");
            let tx = senders_iter.next().expect("stage output");
            handles.push(scope.spawn(move |_| -> Result<StageResult, LatticeError> {
                let mut stage = stage;
                let stream_len = stage.config().shape.len();
                let mut out = Vec::new();
                let mut link_pos = 0u64;
                let mut res = StageResult {
                    local_ticks: 0,
                    in_sites: 0,
                    out_sites: 0,
                    sent: StreamParity::new(),
                    recv: StreamParity::new(),
                };
                while !stage.done() {
                    let inp = match rx.recv() {
                        Ok(v) => v,
                        // Once the full input stream has arrived, a
                        // closed channel is the normal end of feed: the
                        // stage keeps ticking on empty input to drain.
                        Err(_) if stage.received() == stream_len => Vec::new(),
                        Err(_) => {
                            return Err(LatticeError::Corrupted {
                                site: format!("chip {j} input link"),
                                detail: "upstream hung up mid-stream".into(),
                            })
                        }
                    };
                    res.local_ticks += 1;
                    res.in_sites += inp.len() as u64;
                    out.clear();
                    stage.tick(&inp, &mut out);
                    res.out_sites += out.len() as u64;
                    // The emitted sites cross this chip's output link.
                    for v in out.iter_mut() {
                        res.sent.absorb(*v);
                        if let Some(ctx) = faults {
                            *v = ctx.corrupt_site(Component::Link, j, 0, link_pos, *v);
                        }
                        res.recv.absorb(*v);
                        link_pos += 1;
                    }
                    // Forward even empty ticks (pipeline bubbles) so
                    // downstream stages tick in lockstep, exactly as
                    // the sequential driver does.
                    if tx.send(out.clone()).is_err() {
                        break;
                    }
                }
                Ok(res)
            }));
        }

        // Sink.
        let sink_rx = receivers_iter.next().expect("sink channel");
        let mut final_stream = Vec::with_capacity(n);
        while final_stream.len() < n {
            match sink_rx.recv() {
                Ok(chunk) => final_stream.extend(chunk),
                Err(_) => break,
            }
        }
        let mut results = Vec::with_capacity(depth);
        for (j, h) in handles.into_iter().enumerate() {
            match h.join() {
                Ok(Ok(res)) => results.push(res),
                Ok(Err(e)) => return Err(e),
                Err(_) => {
                    return Err(LatticeError::Corrupted {
                        site: format!("chip {j} worker"),
                        detail: "stage thread panicked".into(),
                    })
                }
            }
        }
        Ok((results, final_stream))
    });
    let (results, final_stream) = match scoped {
        Ok(inner) => inner?,
        // A panic that escaped the per-worker joins (e.g. the feeder).
        Err(_) => {
            return Err(LatticeError::Corrupted {
                site: "pipeline".into(),
                detail: "a pipeline thread panicked".into(),
            })
        }
    };

    if final_stream.len() != n {
        return Err(LatticeError::LengthMismatch { expected: n, actual: final_stream.len() });
    }
    for (j, r) in results.iter().enumerate() {
        if let Some(msg) = r.recv.mismatch(&r.sent) {
            return Err(LatticeError::Corrupted {
                site: format!("chip {j} output link"),
                detail: msg,
            });
        }
    }

    let mut memory = Traffic::new();
    memory.record_in(results[0].in_sites as u128, d_bits);
    memory.record_out(results[depth - 1].out_sites as u128, d_bits);
    let mut pins = Traffic::new();
    for r in &results {
        pins.record_in(r.in_sites as u128, d_bits);
        pins.record_out(r.out_sites as u128, d_bits);
    }
    // Same-tick forwarding semantics (as in the sequential driver): the
    // last stage's local tick count is the pipeline's tick count.
    let ticks = results.last().unwrap().local_ticks;
    Ok(EngineReport {
        grid: Grid::from_vec(shape, final_stream)?,
        generations: depth as u64,
        updates: Sites::new(u64_from_usize(n * depth)),
        ticks: Ticks::new(ticks),
        memory_traffic: memory,
        pin_traffic: pins,
        side_traffic: Traffic::new(),
        offchip_sr_traffic: Traffic::new(),
        sr_cells_per_stage: Cells::new(sr_cells),
        stages: depth as u32,
        width: width as u32,
        faults: faults.map(|c| c.plan.stats().since(fault_base)).unwrap_or_default(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pipeline::Pipeline;
    use lattice_core::{evolve, Boundary, Shape, Window};
    use lattice_gas::{FhpRule, FhpVariant, HppRule};

    #[test]
    fn threaded_is_bit_exact() {
        let shape = Shape::grid2(24, 40).unwrap();
        let g = lattice_gas::init::random_fhp(shape, FhpVariant::III, 0.4, 3, false).unwrap();
        let rule = FhpRule::new(FhpVariant::III, 13);
        let reference = evolve(&g, &rule, Boundary::null(), 5, 4);
        let report = run_threaded(&rule, &g, 2, 4, 5).unwrap();
        assert_eq!(report.grid, reference);
    }

    #[test]
    fn threaded_matches_sequential_driver_counts() {
        let shape = Shape::grid2(16, 24).unwrap();
        let g = lattice_gas::init::random_hpp(shape, 0.4, 1).unwrap();
        let rule = HppRule::new();
        for (p, k) in [(1usize, 1usize), (2, 3), (4, 2)] {
            let seq = Pipeline::wide(p, k).run(&rule, &g, 0).unwrap();
            let thr = run_threaded(&rule, &g, p, k, 0).unwrap();
            assert_eq!(thr.grid, seq.grid, "P={p} k={k}");
            assert_eq!(thr.memory_traffic, seq.memory_traffic);
            assert_eq!(thr.pin_traffic, seq.pin_traffic);
            assert_eq!(thr.sr_cells_per_stage, seq.sr_cells_per_stage);
            // Tick counts agree up to the modeled register skew.
            let diff = thr.ticks.abs_diff(seq.ticks);

            assert!(diff <= k as u64, "P={p} k={k}: {} vs {}", thr.ticks, seq.ticks);
        }
    }

    #[test]
    fn threaded_depth_8_runs_concurrently_and_correctly() {
        let shape = Shape::grid2(32, 32).unwrap();
        let g = lattice_gas::init::random_hpp(shape, 0.3, 9).unwrap();
        let rule = HppRule::new();
        let reference = evolve(&g, &rule, Boundary::null(), 0, 8);
        let report = run_threaded(&rule, &g, 1, 8, 0).unwrap();
        assert_eq!(report.grid, reference);
        assert_eq!(report.stages, 8);
    }

    #[test]
    fn threaded_rejects_bad_configs() {
        let shape = Shape::grid2(4, 4).unwrap();
        let g = lattice_gas::init::random_hpp(shape, 0.3, 1).unwrap();
        let rule = HppRule::new();
        assert!(run_threaded(&rule, &g, 1, 0, 0).is_err());
        assert!(run_threaded(&rule, &g, 0, 1, 0).is_err());
    }

    /// Wraps HPP but kills its own thread partway through the stream —
    /// the software stand-in for a chip dying mid-run.
    struct DyingRule {
        inner: HppRule,
        die_at_updates: u64,
        counter: std::sync::atomic::AtomicU64,
    }

    impl Rule for DyingRule {
        type S = u8;
        fn update(&self, w: &Window<u8>) -> u8 {
            let k = self.counter.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
            assert!(k < self.die_at_updates, "injected worker death");
            self.inner.update(w)
        }
    }

    #[test]
    fn killed_stage_worker_returns_err_not_panic_or_garbage() {
        let shape = Shape::grid2(16, 16).unwrap();
        let g = lattice_gas::init::random_hpp(shape, 0.4, 5).unwrap();
        let rule = DyingRule {
            inner: HppRule::new(),
            die_at_updates: 100,
            counter: std::sync::atomic::AtomicU64::new(0),
        };
        let res = run_threaded(&rule, &g, 1, 3, 0);
        let err = res.expect_err("a dead worker must surface as Err");
        let msg = err.to_string();
        assert!(
            msg.contains("chip") || msg.contains("pipeline") || msg.contains("length mismatch"),
            "unexpected error: {msg}"
        );
    }

    #[test]
    fn threaded_injects_identically_to_sequential() {
        use crate::faults::{Fault, FaultKind, FaultPlan};
        use crate::pipeline::RunOptions;
        let shape = Shape::grid2(12, 20).unwrap();
        let g = lattice_gas::init::random_hpp(shape, 0.4, 2).unwrap();
        let rule = HppRule::new();
        let plan = FaultPlan::new(123).with_fault(Fault {
            component: Component::SrCell,
            chip: Some(1),
            cell: None,
            kind: FaultKind::Transient { bit: 1, rate: 0.01 },
        });
        let seq = Pipeline::wide(2, 3)
            .run_opts(
                &rule,
                &g,
                0,
                RunOptions { faults: Some(FaultCtx::new(&plan)), ..RunOptions::default() },
            )
            .unwrap();
        let plan2 = FaultPlan::new(123).with_fault(plan.faults()[0]);
        let thr =
            run_threaded_with_faults(&rule, &g, 2, 3, 0, Some(FaultCtx::new(&plan2))).unwrap();
        assert!(seq.faults.total() > 0, "the fault must actually fire");
        assert_eq!(seq.faults, thr.faults, "identical injected events");
        assert_eq!(seq.grid, thr.grid, "identical corrupted lattice");
    }
}
