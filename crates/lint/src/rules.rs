//! Pass 4 — the cross-cutting rules.
//!
//! Three rules that need more than one line (or one file) of context:
//!
//! * **determinism** — wall-clock, environment, and default-hasher
//!   iteration checks scoped to the result-affecting crates. The
//!   per-line needles run from [`scan_source`](crate::scan_source);
//!   this module owns the needle lists and the file-level hash-binding
//!   pre-pass.
//! * **lock-order** — a static deadlock guard over `crates/serve` +
//!   `crates/farm`: replay each function's lock events as a held-set
//!   simulation, propagate lock reach through the bare-name call
//!   graph, and fail on undeclared locks, inversions against
//!   [`LOCK_ORDER`], or cycles in the acquisition graph.
//! * **wire-exhaustiveness** — every `Request`/`Response` variant must
//!   appear in the encoder (`to_json`/`to_line`), the decoder
//!   (`from_json`/`from_line`), and the test corpus
//!   (`crates/serve/tests/` plus in-file `#[cfg(test)]` regions), so
//!   codec drift is a lint failure rather than a chaos-soak surprise.

use std::collections::{BTreeMap, BTreeSet};

use crate::facts::{self, boundary_matches, find_boundary, Event};
use crate::lexer::{is_ident_char, LexedLine};
use crate::parser::FnItem;
use crate::{Rule, Violation};

/// Crates whose outputs feed reported results: a nondeterministic
/// value anywhere here can reach a conservation check, a perf-ratchet
/// number, or a replayed chaos soak.
pub const RESULT_AFFECTING: [&str; 6] = [
    "crates/core/src/",
    "crates/gas/src/",
    "crates/sim/src/",
    "crates/farm/src/",
    "crates/pebbles/src/",
    "crates/vlsi/src/",
];

/// Crates the lock-order rule analyzes (the daemon and the worker
/// farm — the only places locks live).
pub const LOCK_SCOPE: [&str; 2] = ["crates/serve/src/", "crates/farm/src/"];

/// The declared global lock order, outermost first. Every lock in
/// [`LOCK_SCOPE`] must appear here, and no function may acquire a
/// lock while holding one that sorts after it.
pub const LOCK_ORDER: [&str; 1] = ["state"];

/// The wire-protocol module whose enums the exhaustiveness rule
/// audits.
pub const WIRE_PROTOCOL_FILE: &str = "crates/serve/src/protocol.rs";

/// The audited wire enums.
pub const WIRE_ENUMS: [&str; 2] = ["Request", "Response"];

/// Encoder / decoder method names (on the enum's own impl).
pub const WIRE_ENCODERS: [&str; 2] = ["to_json", "to_line"];
/// Decoder method names.
pub const WIRE_DECODERS: [&str; 2] = ["from_json", "from_line"];

/// Wall-clock / environment / randomness entry points banned from
/// result-affecting crates.
const WALL_CLOCK_NEEDLES: [&str; 8] = [
    "SystemTime::now",
    "Instant::now",
    "thread::sleep",
    "sleep_ms",
    "thread_rng",
    "from_entropy",
    "RandomState",
    "env::var",
];

const HASH_TYPE_NEEDLES: [&str; 4] = ["HashMap<", "HashMap::", "HashSet<", "HashSet::"];

const HASH_ITER_METHODS: [&str; 8] = [
    ".iter()",
    ".iter_mut()",
    ".keys()",
    ".values()",
    ".values_mut()",
    ".into_iter()",
    ".drain(",
    ".retain(",
];

/// True when `path` sits in a result-affecting crate.
#[must_use]
pub fn is_result_affecting(path: &str) -> bool {
    RESULT_AFFECTING.iter().any(|p| path.starts_with(p))
}

/// True when `path` is in lock-order scope.
#[must_use]
pub fn is_lock_scope(path: &str) -> bool {
    LOCK_SCOPE.iter().any(|p| path.starts_with(p))
}

/// Reports a banned wall-clock / environment / randomness call on a
/// blanked code line.
#[must_use]
pub fn find_wall_clock(code: &str) -> bool {
    WALL_CLOCK_NEEDLES.iter().any(|n| find_boundary(code, n).is_some())
}

/// Collects the names bound to default-hasher `HashMap`/`HashSet`
/// values in non-test code: typed annotations (`name: HashMap<…>`)
/// and let bindings (`let name = HashMap::new()`).
#[must_use]
pub fn collect_hash_names(lines: &[LexedLine]) -> BTreeSet<String> {
    let mut out = BTreeSet::new();
    for line in lines {
        if line.in_test {
            continue;
        }
        let code = &line.code;
        let mut any = false;
        for needle in HASH_TYPE_NEEDLES {
            for at in boundary_matches(code, needle) {
                any = true;
                if let Some(name) = facts::annotated_name_before(code, at) {
                    out.insert(name);
                }
            }
        }
        if any {
            if let Some(name) = facts::let_binding_name(code) {
                out.insert(name);
            }
        }
    }
    out
}

/// Reports iteration over a default-hasher container on a blanked
/// code line: `name.iter()`-family method calls and `for … in name`
/// loops. Indexed lookups (`get`, `contains`, `insert`) stay free —
/// only *order* is nondeterministic.
#[must_use]
pub fn find_hash_iteration(code: &str, names: &BTreeSet<String>) -> bool {
    for name in names {
        for method in HASH_ITER_METHODS {
            let needle = format!("{name}{method}");
            // `map.iter()` and `self.map.iter()` both count;
            // `other_map.iter()` does not.
            if !boundary_matches(code, &needle).is_empty() {
                return true;
            }
        }
    }
    // `for x in map {` / `for (k, v) in &map {` / `… in self.map {`.
    if let Some(for_at) = find_boundary(code, "for ") {
        if let Some(in_rel) = code[for_at..].find(" in ") {
            let rest = code[for_at + in_rel + 4..].trim_start();
            let rest = rest.strip_prefix('&').unwrap_or(rest);
            let rest = rest.strip_prefix("mut ").unwrap_or(rest).trim_start();
            let rest = rest.strip_prefix("self.").unwrap_or(rest);
            let ident: String = rest.chars().take_while(|&c| is_ident_char(c)).collect();
            if names.contains(&ident) {
                let tail = rest[ident.len()..].trim_start();
                if tail.is_empty() || tail.starts_with('{') {
                    return true;
                }
            }
        }
    }
    false
}

/// One lexed file addressed by its workspace-relative path.
pub type LexedFile = (String, Vec<LexedLine>);

/// Runs the cross-file rules (lock-order, wire-exhaustiveness) over
/// the lexed workspace. `wire_tests` is the extra test corpus
/// (`crates/serve/tests/*.rs`) that `workspace_sources` does not
/// collect. Allow markers are honored at the reported line.
#[must_use]
pub fn analyze(sources: &[LexedFile], wire_tests: &[LexedFile]) -> Vec<Violation> {
    let mut out = Vec::new();
    out.extend(lock_order_violations(sources, &LOCK_ORDER));
    out.extend(wire_violations(sources, wire_tests));
    out
}

/// Suppresses violations whose reported line carries an allow marker
/// for their rule.
fn honor_allows(violations: Vec<Violation>, sources: &[LexedFile]) -> Vec<Violation> {
    violations
        .into_iter()
        .filter(|v| {
            let Some((_, lines)) = sources.iter().find(|(p, _)| *p == v.file) else {
                return true;
            };
            lines.get(v.line - 1).map(|l| !l.allows.contains(&v.rule)).unwrap_or(true)
        })
        .collect()
}

// ---- lock-order ----

/// An acquisition edge: while holding `held`, `acquired` is taken (or
/// reachable through a call) at `file:line` (0-based line).
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
struct Edge {
    held: String,
    acquired: String,
    file: String,
    line: usize,
}

/// Checks the lock acquisition graph of `sources` against a declared
/// global order (outermost first). Exposed with the order as a
/// parameter so self-tests can inject synthetic orders.
#[must_use]
pub fn lock_order_violations(sources: &[LexedFile], declared: &[&str]) -> Vec<Violation> {
    let mut file_facts = Vec::new();
    let mut all_locks: BTreeSet<String> = BTreeSet::new();
    for (path, lines) in sources {
        if !is_lock_scope(path) {
            continue;
        }
        let f = facts::extract(lines);
        all_locks.extend(f.locks.iter().cloned());
        file_facts.push((path.clone(), f));
    }

    // Direct lock sets and the bare-name call graph.
    let mut direct: BTreeMap<String, BTreeSet<String>> = BTreeMap::new();
    let mut calls: BTreeMap<String, BTreeSet<String>> = BTreeMap::new();
    let mut known_fns: BTreeSet<String> = BTreeSet::new();
    for (_, f) in &file_facts {
        for fun in &f.fns {
            known_fns.insert(fun.item.name.clone());
            for ev in &fun.events {
                match ev {
                    Event::Acquire { lock, .. } => {
                        direct.entry(fun.item.name.clone()).or_default().insert(lock.clone());
                    }
                    Event::Call { callee, .. } => {
                        calls.entry(fun.item.name.clone()).or_default().insert(callee.clone());
                    }
                    Event::Drop { .. } => {}
                }
            }
        }
    }

    // Transitive lock reach per function, to a fixpoint.
    let mut reach: BTreeMap<String, BTreeSet<String>> = direct.clone();
    loop {
        let mut changed = false;
        for (caller, callees) in &calls {
            let mut add: BTreeSet<String> = BTreeSet::new();
            for callee in callees {
                if let Some(r) = reach.get(callee) {
                    add.extend(r.iter().cloned());
                }
            }
            if !add.is_empty() {
                let entry = reach.entry(caller.clone()).or_default();
                let before = entry.len();
                entry.extend(add);
                changed |= entry.len() != before;
            }
        }
        if !changed {
            break;
        }
    }

    // Held-set replay: collect acquisition edges.
    let mut edges: BTreeSet<Edge> = BTreeSet::new();
    let mut first_acquisition: BTreeMap<String, (String, usize)> = BTreeMap::new();
    for (path, f) in &file_facts {
        for fun in &f.fns {
            // `guard binding -> lock` for currently held guards.
            let mut held: BTreeMap<String, String> = BTreeMap::new();
            for ev in &fun.events {
                match ev {
                    Event::Acquire { lock, guard, line } => {
                        first_acquisition
                            .entry(lock.clone())
                            .or_insert_with(|| (path.clone(), *line));
                        for h in held.values() {
                            if h != lock {
                                edges.insert(Edge {
                                    held: h.clone(),
                                    acquired: lock.clone(),
                                    file: path.clone(),
                                    line: *line,
                                });
                            }
                        }
                        if let Some(g) = guard {
                            held.insert(g.clone(), lock.clone());
                        }
                    }
                    Event::Drop { name, .. } => {
                        held.remove(name);
                    }
                    Event::Call { callee, line } => {
                        // Re-entry through a self-call would pair every
                        // held lock with itself; skip h == reached.
                        if let Some(reached) = reach.get(callee) {
                            for h in held.values() {
                                for l in reached {
                                    if l != h {
                                        edges.insert(Edge {
                                            held: h.clone(),
                                            acquired: l.clone(),
                                            file: path.clone(),
                                            line: *line,
                                        });
                                    }
                                }
                            }
                        }
                    }
                }
            }
        }
    }

    let order_index = |lock: &str| declared.iter().position(|d| *d == lock);

    let mut out = Vec::new();
    // Every acquired lock must be declared.
    for (lock, (file, line)) in &first_acquisition {
        if order_index(lock).is_none() {
            out.push(Violation {
                rule: Rule::LockOrder,
                file: file.clone(),
                line: line + 1,
                excerpt: format!(
                    "lock `{lock}` is not in the declared global lock order (DESIGN.md §17)"
                ),
            });
        }
    }
    // No edge may run against the declared order.
    for e in &edges {
        if let (Some(h), Some(a)) = (order_index(&e.held), order_index(&e.acquired)) {
            if h > a {
                out.push(Violation {
                    rule: Rule::LockOrder,
                    file: e.file.clone(),
                    line: e.line + 1,
                    excerpt: format!(
                        "acquires `{}` while holding `{}` — inverts the declared lock order",
                        e.acquired, e.held
                    ),
                });
            }
        }
    }
    // And the acquisition graph must be acyclic regardless of the
    // declared order (a cycle between two undeclared locks is a
    // deadlock even before anyone ranks them). Edges between declared
    // locks are excluded here: a cycle among totally ordered locks
    // always contains a descending edge, which the inversion check
    // above already reports.
    let undeclared_edges: BTreeSet<Edge> = edges
        .iter()
        .filter(|e| order_index(&e.held).is_none() || order_index(&e.acquired).is_none())
        .cloned()
        .collect();
    if let Some(cycle) = find_cycle(&undeclared_edges) {
        let anchor = edges.iter().find(|e| e.held == cycle[0] && e.acquired == cycle[1]).cloned();
        if let Some(e) = anchor {
            out.push(Violation {
                rule: Rule::LockOrder,
                file: e.file,
                line: e.line + 1,
                excerpt: format!("lock acquisition cycle: {}", cycle.join(" -> ")),
            });
        }
    }
    honor_allows(out, sources)
}

/// Finds one cycle in the acquisition edge graph, returned as
/// `[a, b, …, a]`.
fn find_cycle(edges: &BTreeSet<Edge>) -> Option<Vec<String>> {
    let mut adj: BTreeMap<&str, BTreeSet<&str>> = BTreeMap::new();
    for e in edges {
        adj.entry(&e.held).or_default().insert(&e.acquired);
    }
    let nodes: Vec<&str> = adj.keys().copied().collect();
    for start in nodes {
        // DFS from each node; a path back to `start` is a cycle.
        let mut stack = vec![(start, vec![start.to_string()])];
        let mut seen: BTreeSet<&str> = BTreeSet::new();
        while let Some((node, path)) = stack.pop() {
            for next in adj.get(node).into_iter().flatten() {
                if *next == start {
                    let mut cycle = path.clone();
                    cycle.push(start.to_string());
                    return Some(cycle);
                }
                if seen.insert(next) {
                    let mut p = path.clone();
                    p.push((*next).to_string());
                    stack.push((*next, p));
                }
            }
        }
    }
    None
}

// ---- wire-exhaustiveness ----

/// True when `code` contains `token` with clean identifier boundaries
/// on both sides.
#[must_use]
pub fn contains_token(code: &str, token: &str) -> bool {
    boundary_matches(code, token).iter().any(|&at| {
        code[at + token.len()..].chars().next().map(|c| !is_ident_char(c)).unwrap_or(true)
    })
}

/// Line range (0-based, inclusive) helpers over fn bodies.
fn spans_of<'a>(fns: &'a [FnItem], enum_name: &str, names: &[&str]) -> Vec<&'a FnItem> {
    fns.iter()
        .filter(|f| {
            f.impl_type.as_deref() == Some(enum_name)
                && names.contains(&f.name.as_str())
                && f.body.is_some()
        })
        .collect()
}

fn token_in_spans(lines: &[LexedLine], spans: &[&FnItem], tokens: &[String]) -> bool {
    for f in spans {
        let Some((start, end)) = f.body else { continue };
        for line in lines.iter().take(end + 1).skip(start) {
            if tokens.iter().any(|t| contains_token(&line.code, t)) {
                return true;
            }
        }
    }
    false
}

/// Checks that every `Request`/`Response` variant appears in its
/// encoder, its decoder, and the test corpus.
#[must_use]
pub fn wire_violations(sources: &[LexedFile], wire_tests: &[LexedFile]) -> Vec<Violation> {
    let Some((proto_path, proto_lines)) =
        sources.iter().find(|(p, _)| p.ends_with(WIRE_PROTOCOL_FILE) || p == WIRE_PROTOCOL_FILE)
    else {
        return Vec::new();
    };
    let items = crate::parser::parse_items(proto_lines);
    let mut out = Vec::new();

    for enum_item in items.enums.iter().filter(|e| WIRE_ENUMS.contains(&e.name.as_str())) {
        let encoders = spans_of(&items.fns, &enum_item.name, &WIRE_ENCODERS);
        let decoders = spans_of(&items.fns, &enum_item.name, &WIRE_DECODERS);
        for (variant, line) in &enum_item.variants {
            let qualified = format!("{}::{variant}", enum_item.name);
            let tokens = [qualified.clone(), format!("Self::{variant}")];
            let in_encoder = token_in_spans(proto_lines, &encoders, &tokens);
            let in_decoder = token_in_spans(proto_lines, &decoders, &tokens);
            // Test corpus: the serve integration tests plus any
            // in-file `#[cfg(test)]` region in serve sources.
            let in_tests = wire_tests
                .iter()
                .flat_map(|(_, lines)| lines.iter())
                .any(|l| contains_token(&l.code, &qualified))
                || sources
                    .iter()
                    .filter(|(p, _)| p.starts_with("crates/serve/"))
                    .flat_map(|(_, lines)| lines.iter())
                    .any(|l| l.in_test && contains_token(&l.code, &qualified));
            let mut missing = Vec::new();
            if !in_encoder {
                missing.push("encoder");
            }
            if !in_decoder {
                missing.push("decoder");
            }
            if !in_tests {
                missing.push("test corpus");
            }
            if !missing.is_empty() {
                out.push(Violation {
                    rule: Rule::WireExhaustiveness,
                    file: proto_path.clone(),
                    line: line + 1,
                    excerpt: format!(
                        "wire variant `{qualified}` missing from: {}",
                        missing.join(", ")
                    ),
                });
            }
        }
    }
    honor_allows(out, sources)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    #[test]
    fn wall_clock_needles_fire_with_boundaries() {
        assert!(find_wall_clock("let t = Instant::now();"));
        assert!(find_wall_clock("std::thread::sleep(d);"));
        assert!(find_wall_clock("let h = RandomState::new();"));
        assert!(!find_wall_clock("let my_thread_sleep = 1;"));
        assert!(!find_wall_clock("instant_like::now_ish();"));
    }

    #[test]
    fn hash_iteration_fires_on_order_dependent_uses_only() {
        let lines = lex("let mut counts: HashMap<u32, u32> = HashMap::new();\n");
        let names = collect_hash_names(&lines);
        assert!(names.contains("counts"), "{names:?}");
        assert!(find_hash_iteration("for (k, v) in &counts {", &names));
        assert!(find_hash_iteration("let sum: u32 = counts.values().sum();", &names));
        assert!(find_hash_iteration("self.counts.iter().map(f)", &names));
        assert!(!find_hash_iteration("counts.insert(k, v);", &names));
        assert!(!find_hash_iteration("if counts.get(&k) == Some(&v) {", &names));
        assert!(!find_hash_iteration("for i in 0..counts.len() {", &names));
        assert!(!find_hash_iteration("for (k, v) in &other_counts {", &names));
    }

    fn lexed(files: &[(&str, &str)]) -> Vec<LexedFile> {
        files.iter().map(|(p, s)| (p.to_string(), lex(s))).collect()
    }

    #[test]
    fn inverted_lock_pair_is_reported() {
        let src = "\
struct S { state: Arc<Mutex<A>>, registry: Arc<Mutex<B>> }
fn good(state: &Mutex<A>, registry: &Mutex<B>) {
    let st = state.lock();
    let rg = registry.lock();
    drop(rg);
    drop(st);
}
fn bad(state: &Mutex<A>, registry: &Mutex<B>) {
    let rg = registry.lock();
    let st = state.lock();
}
";
        let sources = lexed(&[("crates/serve/src/daemon.rs", src)]);
        let v = lock_order_violations(&sources, &["state", "registry"]);
        assert_eq!(v.len(), 1, "{v:?}");
        assert_eq!(v[0].line, 10);
        assert!(v[0].excerpt.contains("acquires `state` while holding `registry`"), "{v:?}");
    }

    #[test]
    fn lock_reach_flows_through_calls() {
        let src = "\
fn helper(registry: &Mutex<B>) {
    registry.lock().touch();
}
fn outer(state: &Mutex<A>, registry: &Mutex<B>) {
    let st = state.lock();
    helper(registry);
}
";
        let sources = lexed(&[("crates/serve/src/daemon.rs", src)]);
        // `state` before `registry` is fine…
        let v = lock_order_violations(&sources, &["state", "registry"]);
        assert!(v.is_empty(), "{v:?}");
        // …but with the opposite declared order the call edge inverts.
        let v = lock_order_violations(&sources, &["registry", "state"]);
        assert_eq!(v.len(), 1, "{v:?}");
        assert_eq!(v[0].line, 6);
    }

    #[test]
    fn undeclared_locks_and_cycles_are_reported() {
        let src = "\
fn a(x: &Mutex<A>, y: &Mutex<B>) {
    let gx = x.lock();
    let gy = y.lock();
}
fn b(x: &Mutex<A>, y: &Mutex<B>) {
    let gy = y.lock();
    let gx = x.lock();
}
";
        let sources = lexed(&[("crates/farm/src/farm.rs", src)]);
        let v = lock_order_violations(&sources, &["state"]);
        let undeclared: Vec<_> =
            v.iter().filter(|v| v.excerpt.contains("not in the declared")).collect();
        assert_eq!(undeclared.len(), 2, "{v:?}");
        assert!(
            v.iter().any(|v| v.excerpt.contains("cycle")),
            "cycle x->y->x should be reported: {v:?}"
        );
    }

    #[test]
    fn wire_orphan_variant_is_reported() {
        let proto = "\
pub enum Request {
    Ping,
    Orphan,
}
impl Request {
    pub fn to_json(&self) -> Value {
        match self { Request::Ping => json(), Request::Orphan => json() }
    }
    pub fn from_json(v: &Value) -> Result<Request, E> {
        Ok(Request::Ping)
    }
}
#[cfg(test)]
mod tests {
    fn t() { let _ = Request::Ping; }
}
";
        let sources = lexed(&[("crates/serve/src/protocol.rs", proto)]);
        let v = wire_violations(&sources, &[]);
        assert_eq!(v.len(), 1, "{v:?}");
        assert_eq!(v[0].line, 3);
        assert!(
            v[0].excerpt.contains("`Request::Orphan` missing from: decoder, test corpus"),
            "{v:?}"
        );
    }

    #[test]
    fn wire_test_corpus_counts_integration_tests() {
        let proto = "\
pub enum Response {
    Bye,
}
impl Response {
    pub fn to_line(&self) -> String { match self { Response::Bye => line() } }
    pub fn from_line(s: &str) -> Result<Response, E> { Ok(Response::Bye) }
}
";
        let sources = lexed(&[("crates/serve/src/protocol.rs", proto)]);
        // Without a corpus the variant is orphaned…
        let v = wire_violations(&sources, &[]);
        assert_eq!(v.len(), 1, "{v:?}");
        // …and an integration test mentioning it closes the gap.
        let tests = lexed(&[("crates/serve/tests/codec.rs", "fn t() { check(Response::Bye); }\n")]);
        let v = wire_violations(&sources, &tests);
        assert!(v.is_empty(), "{v:?}");
    }
}
