//! `lattice-lint` — a workspace invariant checker for the
//! lattice-engines crates.
//!
//! The typed-units layer in `lattice_core::units` makes dimension
//! errors unrepresentable *where it is used*; this crate closes the
//! gaps the type system cannot see:
//!
//! * **raw-cast** — no raw `as` numeric casts in the model/accounting
//!   modules. Conversions must go through the named helpers in
//!   `core::units` (`f64_from_u64`, `u32_from_f64_floor`, …) so every
//!   narrowing is a visible, grep-able decision.
//! * **bare-float** — no new bare `f64` declarations in those same
//!   modules; dimensioned quantities carry `Secs`/`Hz`/`BitsPerTick`/…
//!   newtypes instead. Pre-existing, deliberate `f64`s (pure ratios,
//!   technology constants) are frozen in the baseline and may only
//!   shrink.
//! * **no-panic** — no `unwrap()` / `expect(` / `panic!` /
//!   `unreachable!` / `todo!` / `unimplemented!` in library crates
//!   outside test code. Fallible paths return `LatticeError`.
//! * **fs-write** — direct `std::fs` write/rename calls are confined
//!   to the audited durable-store module
//!   (`crates/core/src/checkpoint/store.rs`): every persistent byte
//!   must go through the store's write-to-temp + fsync + atomic-rename
//!   commit so crash atomicity is provable in one place. Reads are
//!   free.
//! * **raw-socket** — raw socket construction (`TcpListener::`,
//!   `TcpStream::`, …) is confined to the daemon's audited transport
//!   module (`crates/serve/src/transport.rs`): framing, flushing, and
//!   error mapping live in one place, and every other module speaks
//!   typed protocol frames through it.
//! * **counter-mutation** — the fault-recovery conservation set
//!   (`detected`, `retransmits`, `local_rollbacks`, `rollbacks`,
//!   `boards_retired`) may only be *mutated* inside the two audited
//!   accounting modules, `crates/farm/src/farm.rs` and
//!   `crates/sim/src/host.rs`, where the invariant
//!   `detected == retransmits + local_rollbacks + rollbacks +
//!   boards_retired` is maintained and asserted. Reads are free.
//!
//! Suppression is per-line and explicit: `// lattice-lint:
//! allow(rule)` on the offending line or the line above. Everything
//! else goes through the count-based ratchet baseline
//! (`lint-baseline.toml`): a file may never exceed its frozen count
//! for a rule, and shrinking the count below baseline is reported so
//! the baseline can be tightened.
//!
//! The checker is a hand-rolled lexer, not a proc-macro or `syn`
//! pass — the workspace builds offline with no registry access, so the
//! linter depends on nothing but `std`.

pub mod facts;
pub mod lexer;
pub mod parser;
pub mod rules;

use std::collections::BTreeMap;
use std::fmt;
use std::fs;
use std::path::{Path, PathBuf};

use lexer::{is_ident_char, lex};

/// The rules `lattice-lint` knows about.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Rule {
    /// Raw `as` numeric cast in an audited model/accounting module.
    RawCast,
    /// Bare `f64` declaration in an audited model/accounting module.
    BareFloat,
    /// `unwrap()`/`expect(`/`panic!`/… in library code outside tests.
    NoPanic,
    /// Conservation-set counter mutated outside the audited modules.
    CounterMutation,
    /// `std::fs` write/rename call outside the audited durable-store
    /// module.
    FsWrite,
    /// Raw socket construction (`TcpListener::`/`TcpStream::`/…)
    /// outside the audited transport module.
    RawSocket,
    /// Wall-clock, environment, randomness, or default-hasher
    /// iteration in a result-affecting crate
    /// ([`rules::RESULT_AFFECTING`]).
    Determinism,
    /// Lock acquired against the declared global order
    /// ([`rules::LOCK_ORDER`]), an undeclared lock, or an acquisition
    /// cycle — a static deadlock guard over `serve` + `farm`.
    LockOrder,
    /// A `Request`/`Response` wire variant missing from the encoder,
    /// the decoder, or the test corpus.
    WireExhaustiveness,
}

impl Rule {
    /// Stable, user-facing rule name (used by `allow(...)` markers and
    /// the baseline file).
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            Rule::RawCast => "raw-cast",
            Rule::BareFloat => "bare-float",
            Rule::NoPanic => "no-panic",
            Rule::CounterMutation => "counter-mutation",
            Rule::FsWrite => "fs-write",
            Rule::RawSocket => "raw-socket",
            Rule::Determinism => "determinism",
            Rule::LockOrder => "lock-order",
            Rule::WireExhaustiveness => "wire-exhaustiveness",
        }
    }

    /// Parses a rule name as written in an allow marker or baseline.
    #[must_use]
    pub fn from_name(name: &str) -> Option<Rule> {
        match name {
            "raw-cast" => Some(Rule::RawCast),
            "bare-float" => Some(Rule::BareFloat),
            "no-panic" => Some(Rule::NoPanic),
            "counter-mutation" => Some(Rule::CounterMutation),
            "fs-write" => Some(Rule::FsWrite),
            "raw-socket" => Some(Rule::RawSocket),
            "determinism" => Some(Rule::Determinism),
            "lock-order" => Some(Rule::LockOrder),
            "wire-exhaustiveness" => Some(Rule::WireExhaustiveness),
            _ => None,
        }
    }

    /// All rules, in report order.
    pub const ALL: [Rule; 9] = [
        Rule::RawCast,
        Rule::BareFloat,
        Rule::NoPanic,
        Rule::CounterMutation,
        Rule::FsWrite,
        Rule::RawSocket,
        Rule::Determinism,
        Rule::LockOrder,
        Rule::WireExhaustiveness,
    ];
}

impl fmt::Display for Rule {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// One diagnostic: a rule fired at `file:line`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Violation {
    /// Rule that fired.
    pub rule: Rule,
    /// Path relative to the scanned root, with `/` separators.
    pub file: String,
    /// 1-based line number.
    pub line: usize,
    /// The offending source line, trimmed.
    pub excerpt: String,
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}: {}: {}", self.file, self.line, self.rule, self.excerpt)
    }
}

impl Violation {
    /// One machine-readable ndjson record, consumed by CI to emit
    /// `::error file=…,line=…` annotations.
    #[must_use]
    pub fn to_json(&self) -> String {
        format!(
            "{{\"kind\":\"violation\",\"rule\":\"{}\",\"file\":\"{}\",\"line\":{},\"message\":\"{}\"}}",
            self.rule,
            json_escape(&self.file),
            self.line,
            json_escape(&self.excerpt)
        )
    }
}

/// Escapes a string for embedding in a JSON literal (hand-rolled — the
/// linter depends on nothing but `std`).
#[must_use]
pub fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Fields of the fault-recovery conservation set. Mutations are legal
/// only inside [`COUNTER_AUDITED`].
pub const CONSERVATION_FIELDS: [&str; 5] =
    ["detected", "retransmits", "local_rollbacks", "rollbacks", "boards_retired"];

/// The only modules allowed to mutate the conservation set.
pub const COUNTER_AUDITED: [&str; 2] = ["crates/farm/src/farm.rs", "crates/sim/src/host.rs"];

/// The only module allowed to call `std::fs` write paths: the durable
/// checkpoint store, whose temp-file + fsync + rename commit is the
/// workspace's single audited crash-atomicity point.
pub const FS_AUDITED: [&str; 1] = ["crates/core/src/checkpoint/store.rs"];

/// The only module allowed to construct raw sockets: the daemon's
/// transport layer, where framing, flushing, and error mapping are
/// audited in one place. Everything else speaks typed protocol frames
/// through it.
pub const SOCKET_AUDITED: [&str; 1] = ["crates/serve/src/transport.rs"];

/// Model/accounting modules where `raw-cast` and `bare-float` apply:
/// everything that carries paper dimensions (α, β, γ, B, Γ, ticks,
/// bits, sites) through arithmetic.
pub const DIMENSIONED_MODULES: [&str; 4] =
    ["crates/vlsi/src/", "crates/farm/src/", "crates/sim/src/metrics.rs", "crates/sim/src/host.rs"];

const PANIC_MACROS: [&str; 4] = ["panic!", "unreachable!", "todo!", "unimplemented!"];

const NUMERIC_TYPES: [&str; 14] = [
    "u8", "u16", "u32", "u64", "u128", "usize", "i8", "i16", "i32", "i64", "i128", "isize", "f32",
    "f64",
];

/// True when `path` (workspace-relative, `/`-separated) is library
/// source subject to `no-panic`: `crates/*/src/**`, excluding binary
/// targets, the bench harness, and the linter's own binary.
fn is_library_source(path: &str) -> bool {
    path.starts_with("crates/")
        && path.contains("/src/")
        && !path.contains("/src/bin/")
        && !path.ends_with("/main.rs")
        && !path.starts_with("crates/bench/")
}

/// True when `path` is a dimension-carrying model/accounting module.
fn is_dimensioned_module(path: &str) -> bool {
    DIMENSIONED_MODULES.iter().any(
        |m| {
            if m.ends_with('/') {
                path.starts_with(m)
            } else {
                path == *m
            }
        },
    )
}

/// Reports raw `as <numeric>` casts on a blanked code line.
fn find_raw_casts(code: &str) -> bool {
    let mut search_from = 0;
    while let Some(rel) = code[search_from..].find(" as ") {
        let at = search_from + rel;
        search_from = at + 4;
        let after = code[at + 4..].trim_start();
        let ident: String = after.chars().take_while(|&c| is_ident_char(c)).collect();
        if NUMERIC_TYPES.contains(&ident.as_str()) {
            return true;
        }
    }
    false
}

/// Reports bare `f64` type ascriptions (`: f64`) on a blanked code
/// line. Function returns and casts are covered by `raw-cast` and the
/// units API; the declaration form is what lets an undimensioned
/// quantity take root.
fn find_bare_float(code: &str) -> bool {
    let mut search_from = 0;
    while let Some(rel) = code[search_from..].find(": f64") {
        let at = search_from + rel;
        search_from = at + 5;
        let end = at + 5;
        // `: f64>` (generic default), `: f64)` (param), `: f64,`,
        // `: f64;`, `: f64 ` all count; `: f64x` would not.
        if code[end..].chars().next().is_none_or(|c| !is_ident_char(c)) {
            return true;
        }
    }
    false
}

/// Reports panic-capable calls on a blanked code line.
fn find_panics(code: &str) -> bool {
    for needle in [".unwrap()", ".expect("] {
        if code.contains(needle) {
            return true;
        }
    }
    for mac in PANIC_MACROS {
        let mut search_from = 0;
        while let Some(rel) = code[search_from..].find(mac) {
            let at = search_from + rel;
            search_from = at + mac.len();
            let before_ok = at == 0 || !is_ident_char(code.as_bytes()[at - 1] as char);
            if before_ok {
                return true;
            }
        }
    }
    false
}

/// Reports `std::fs` write/rename calls on a blanked code line. Only
/// mutating entry points count — reads (`fs::read`, `read_dir`, …)
/// stay free — and the needle must be a call (`(` follows) whose path
/// segment starts cleanly (no ident char before), so `myfs::write(` or
/// `refs::rename(` do not fire.
fn find_fs_writes(code: &str) -> bool {
    const WRITE_CALLS: [&str; 10] = [
        "fs::write",
        "fs::rename",
        "fs::copy",
        "fs::remove_file",
        "fs::remove_dir_all",
        "fs::remove_dir",
        "fs::create_dir_all",
        "fs::create_dir",
        "File::create",
        "OpenOptions::new",
    ];
    for needle in WRITE_CALLS {
        let mut search_from = 0;
        while let Some(rel) = code[search_from..].find(needle) {
            let at = search_from + rel;
            search_from = at + needle.len();
            let before_ok = at == 0 || !is_ident_char(code.as_bytes()[at - 1] as char);
            let after_call = code[at + needle.len()..].trim_start().starts_with('(');
            if before_ok && after_call {
                return true;
            }
        }
    }
    false
}

/// Reports raw socket construction on a blanked code line. The needle
/// is a socket type's path segment followed by `::` (so an associated
/// call like `TcpStream::connect` or a fully qualified
/// `std::net::TcpListener::bind` fires), with a clean identifier
/// boundary before it so `MyTcpStream::` does not.
fn find_raw_sockets(code: &str) -> bool {
    const SOCKET_TYPES: [&str; 5] =
        ["TcpListener::", "TcpStream::", "UdpSocket::", "UnixListener::", "UnixStream::"];
    for needle in SOCKET_TYPES {
        let mut search_from = 0;
        while let Some(rel) = code[search_from..].find(needle) {
            let at = search_from + rel;
            search_from = at + needle.len();
            let before_ok = at == 0 || !is_ident_char(code.as_bytes()[at - 1] as char);
            if before_ok {
                return true;
            }
        }
    }
    false
}

/// Reports mutations (`=`, `+=`, `-=`, `*=`) of a conservation-set
/// field access on a blanked code line. Comparisons (`==`, `>=`, …)
/// and struct-literal initialisers (`detected: 0`) do not count.
fn find_counter_mutation(code: &str) -> bool {
    for field in CONSERVATION_FIELDS {
        let needle = format!(".{field}");
        let mut search_from = 0;
        while let Some(rel) = code[search_from..].find(&needle) {
            let at = search_from + rel;
            search_from = at + needle.len();
            let end = at + needle.len();
            // The match must be the whole field name.
            if code[end..].chars().next().is_some_and(is_ident_char) {
                continue;
            }
            let rest = code[end..].trim_start();
            let mutated = rest.starts_with("+=")
                || rest.starts_with("-=")
                || rest.starts_with("*=")
                || (rest.starts_with('=') && !rest.starts_with("=="));
            if mutated {
                return true;
            }
        }
    }
    false
}

/// Scans one file's source, returning violations with 1-based lines.
#[must_use]
pub fn scan_source(rel_path: &str, source: &str) -> Vec<Violation> {
    let lines = lex(source);
    let originals: Vec<&str> = source.lines().collect();
    let mut out = Vec::new();

    let library = is_library_source(rel_path);
    let dimensioned = is_dimensioned_module(rel_path);
    let counter_audited = COUNTER_AUDITED.contains(&rel_path);
    let fs_audited = FS_AUDITED.contains(&rel_path);
    let socket_audited = SOCKET_AUDITED.contains(&rel_path);
    let result_affecting = rules::is_result_affecting(rel_path);
    // File-level pre-pass: which bindings are default-hasher
    // containers whose iteration order is nondeterministic.
    let hash_names = if result_affecting {
        rules::collect_hash_names(&lines)
    } else {
        std::collections::BTreeSet::new()
    };

    for (idx, line) in lines.iter().enumerate() {
        if line.in_test {
            continue;
        }
        let fire = |rule: Rule, out: &mut Vec<Violation>| {
            if line.allows.contains(&rule) {
                return;
            }
            out.push(Violation {
                rule,
                file: rel_path.to_string(),
                line: idx + 1,
                excerpt: originals.get(idx).map_or(String::new(), |l| l.trim().to_string()),
            });
        };
        if dimensioned && find_raw_casts(&line.code) {
            fire(Rule::RawCast, &mut out);
        }
        if dimensioned && find_bare_float(&line.code) {
            fire(Rule::BareFloat, &mut out);
        }
        if library && find_panics(&line.code) {
            fire(Rule::NoPanic, &mut out);
        }
        if !counter_audited && find_counter_mutation(&line.code) {
            fire(Rule::CounterMutation, &mut out);
        }
        if !fs_audited && find_fs_writes(&line.code) {
            fire(Rule::FsWrite, &mut out);
        }
        if !socket_audited && find_raw_sockets(&line.code) {
            fire(Rule::RawSocket, &mut out);
        }
        if result_affecting
            && (rules::find_wall_clock(&line.code)
                || rules::find_hash_iteration(&line.code, &hash_names))
        {
            fire(Rule::Determinism, &mut out);
        }
    }
    out
}

/// Collects the `.rs` files under `root` that the linter audits:
/// `crates/*/src/**` and the workspace `src/`, skipping `vendor/`,
/// `target/`, and `tests/` directories.
#[must_use]
pub fn workspace_sources(root: &Path) -> Vec<PathBuf> {
    let mut out = Vec::new();
    let mut stack = vec![root.join("crates"), root.join("src")];
    while let Some(dir) = stack.pop() {
        let Ok(entries) = fs::read_dir(&dir) else { continue };
        for entry in entries.flatten() {
            let path = entry.path();
            let name = entry.file_name();
            let name = name.to_string_lossy();
            if path.is_dir() {
                if name == "target" || name == "vendor" || name == "tests" || name == "benches" {
                    continue;
                }
                stack.push(path);
            } else if name.ends_with(".rs") {
                out.push(path);
            }
        }
    }
    out.sort();
    out
}

/// The extra wire-test corpus for the `wire-exhaustiveness` rule:
/// `crates/serve/tests/*.rs` (integration tests live outside the
/// `workspace_sources` walk, which skips `tests/` directories).
#[must_use]
pub fn wire_test_sources(root: &Path) -> Vec<PathBuf> {
    let mut out = Vec::new();
    if let Ok(entries) = fs::read_dir(root.join("crates/serve/tests")) {
        for entry in entries.flatten() {
            let path = entry.path();
            if path.extension().map(|e| e == "rs").unwrap_or(false) {
                out.push(path);
            }
        }
    }
    out.sort();
    out
}

/// Scans a set of in-memory sources — the per-file rules on every
/// file, then the cross-file rules (`lock-order`,
/// `wire-exhaustiveness`) over the whole set — returning all
/// violations sorted by file, line, rule. `wire_tests` is the extra
/// test corpus for the wire rule. Exposed so self-tests can inject
/// synthetic workspaces.
#[must_use]
pub fn scan_sources(
    sources: &[(String, String)],
    wire_tests: &[(String, String)],
) -> Vec<Violation> {
    let mut out = Vec::new();
    for (rel, text) in sources {
        out.extend(scan_source(rel, text));
    }
    let lexed: Vec<rules::LexedFile> =
        sources.iter().map(|(rel, text)| (rel.clone(), lex(text))).collect();
    let lexed_tests: Vec<rules::LexedFile> =
        wire_tests.iter().map(|(rel, text)| (rel.clone(), lex(text))).collect();
    out.extend(rules::analyze(&lexed, &lexed_tests));
    out.sort_by(|a, b| (&a.file, a.line, a.rule).cmp(&(&b.file, b.line, b.rule)));
    out
}

/// Scans the workspace rooted at `root`, returning all violations
/// (before baseline subtraction), sorted by file then line.
pub fn scan_workspace(root: &Path) -> Result<Vec<Violation>, String> {
    let read_rel = |path: &Path| -> Result<(String, String), String> {
        let rel = path
            .strip_prefix(root)
            .map_err(|e| format!("{}: {e}", path.display()))?
            .to_string_lossy()
            .replace('\\', "/");
        let source = fs::read_to_string(path).map_err(|e| format!("{}: {e}", path.display()))?;
        Ok((rel, source))
    };
    let sources =
        workspace_sources(root).iter().map(|p| read_rel(p)).collect::<Result<Vec<_>, _>>()?;
    let wire_tests =
        wire_test_sources(root).iter().map(|p| read_rel(p)).collect::<Result<Vec<_>, _>>()?;
    Ok(scan_sources(&sources, &wire_tests))
}

/// Count-based ratchet baseline: frozen violation counts per
/// `(rule, file)`. A scan is clean when no pair exceeds its frozen
/// count; pairs under their count are reported as tightening
/// opportunities.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Baseline {
    counts: BTreeMap<(Rule, String), usize>,
}

impl Baseline {
    /// Builds a baseline that freezes exactly the given violations.
    #[must_use]
    pub fn freeze(violations: &[Violation]) -> Baseline {
        let mut counts = BTreeMap::new();
        for v in violations {
            *counts.entry((v.rule, v.file.clone())).or_insert(0) += 1;
        }
        Baseline { counts }
    }

    /// Frozen count for a `(rule, file)` pair.
    #[must_use]
    pub fn allowed(&self, rule: Rule, file: &str) -> usize {
        self.counts.get(&(rule, file.to_string())).copied().unwrap_or(0)
    }

    /// Number of frozen entries.
    #[must_use]
    pub fn len(&self) -> usize {
        self.counts.len()
    }

    /// True when nothing is frozen.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.counts.is_empty()
    }

    /// Parses the TOML subset written by [`Baseline::render`]:
    /// `[[entry]]` tables with `rule`, `file`, and `count` keys. (The
    /// workspace vendors no TOML parser, so the linter reads its own.)
    pub fn parse(text: &str) -> Result<Baseline, String> {
        let mut counts = BTreeMap::new();
        let mut rule: Option<Rule> = None;
        let mut file: Option<String> = None;
        let mut count: Option<usize> = None;
        let flush = |rule: &mut Option<Rule>,
                     file: &mut Option<String>,
                     count: &mut Option<usize>,
                     counts: &mut BTreeMap<(Rule, String), usize>|
         -> Result<(), String> {
            match (rule.take(), file.take(), count.take()) {
                (None, None, None) => Ok(()),
                (Some(r), Some(f), Some(c)) => {
                    counts.insert((r, f), c);
                    Ok(())
                }
                _ => Err("incomplete [[entry]]: need rule, file, and count".to_string()),
            }
        };
        for (no, raw) in text.lines().enumerate() {
            let line = raw.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            if line == "[[entry]]" {
                flush(&mut rule, &mut file, &mut count, &mut counts)?;
                continue;
            }
            let Some((key, value)) = line.split_once('=') else {
                return Err(format!("line {}: expected `key = value`: {line}", no + 1));
            };
            let key = key.trim();
            let value = value.trim();
            match key {
                "rule" => {
                    let name = value.trim_matches('"');
                    rule = Some(
                        Rule::from_name(name)
                            .ok_or_else(|| format!("line {}: unknown rule {name}", no + 1))?,
                    );
                }
                "file" => file = Some(value.trim_matches('"').to_string()),
                "count" => {
                    count = Some(
                        value
                            .parse()
                            .map_err(|e| format!("line {}: bad count {value}: {e}", no + 1))?,
                    );
                }
                other => return Err(format!("line {}: unknown key {other}", no + 1)),
            }
        }
        flush(&mut rule, &mut file, &mut count, &mut counts)?;
        Ok(Baseline { counts })
    }

    /// Renders the baseline in the TOML subset [`Baseline::parse`]
    /// reads, stable-sorted by (rule name, file) so regeneration never
    /// produces spurious diffs — the sort key is the *name*, not the
    /// enum ordinal, so inserting a `Rule` variant does not reshuffle
    /// the file.
    #[must_use]
    pub fn render(&self) -> String {
        let mut out = String::from(
            "# lattice-lint ratchet baseline: frozen violation counts per (rule, file).\n\
             # A file may never exceed its count; shrink a count when you burn one down.\n\
             # Regenerate with: cargo run -p lattice-lint -- --write-baseline\n",
        );
        let mut entries: Vec<(&Rule, &String, usize)> =
            self.counts.iter().map(|((r, f), c)| (r, f, *c)).collect();
        entries.sort_by_key(|(r, f, _)| (r.name(), f.as_str()));
        for (rule, file, count) in entries {
            out.push_str(&format!(
                "\n[[entry]]\nrule = \"{rule}\"\nfile = \"{file}\"\ncount = {count}\n"
            ));
        }
        out
    }
}

/// Outcome of checking a scan against a baseline.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct CheckReport {
    /// Violations in excess of the baseline — these fail the build.
    /// When a `(rule, file)` pair exceeds its frozen count, all of the
    /// pair's violations are listed (the linter cannot know which are
    /// the new ones).
    pub new_violations: Vec<Violation>,
    /// `(rule, file, frozen, current)` pairs now under their frozen
    /// count: the baseline can be tightened.
    pub slack: Vec<(Rule, String, usize, usize)>,
}

impl CheckReport {
    /// True when nothing exceeds the baseline.
    #[must_use]
    pub fn is_clean(&self) -> bool {
        self.new_violations.is_empty()
    }
}

/// Checks violations against the ratchet baseline.
#[must_use]
pub fn check(violations: &[Violation], baseline: &Baseline) -> CheckReport {
    let mut by_pair: BTreeMap<(Rule, String), Vec<&Violation>> = BTreeMap::new();
    for v in violations {
        by_pair.entry((v.rule, v.file.clone())).or_default().push(v);
    }
    let mut report = CheckReport::default();
    for ((rule, file), found) in &by_pair {
        let frozen = baseline.allowed(*rule, file);
        if found.len() > frozen {
            report.new_violations.extend(found.iter().map(|v| (*v).clone()));
        } else if found.len() < frozen {
            report.slack.push((*rule, file.clone(), frozen, found.len()));
        }
    }
    for ((rule, file), frozen) in &baseline.counts {
        if *frozen > 0 && !by_pair.contains_key(&(*rule, file.clone())) {
            report.slack.push((*rule, file.clone(), *frozen, 0));
        }
    }
    report.slack.sort();
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    // ---- lexer ----

    #[test]
    fn comments_and_strings_are_blanked() {
        let src = "let x = 1; // y as f64\nlet s = \"p as f64\";\n/* z as u32 */ let w = 2;\n";
        let lines = lex(src);
        assert!(!find_raw_casts(&lines[0].code));
        assert!(!find_raw_casts(&lines[1].code));
        assert!(!find_raw_casts(&lines[2].code));
    }

    #[test]
    fn string_continuations_keep_line_numbers_aligned() {
        // A `\`-newline continuation inside a string spans two source
        // lines; diagnostics below it must not shift up.
        let src = "let s = \"a \\\n   b\";\nlet t = 1;\nlet u = v.unwrap();\n";
        let v = scan_source("crates/gas/src/x.rs", src);
        let panics: Vec<_> = v.iter().filter(|v| v.rule == Rule::NoPanic).collect();
        assert_eq!(panics.len(), 1, "{v:?}");
        assert_eq!(panics[0].line, 4, "{panics:?}");
    }

    #[test]
    fn raw_strings_and_chars_are_blanked() {
        let src = "let s = r#\"x.unwrap()\"#;\nlet c = '\"'; let d = x as u64;\n";
        let lines = lex(src);
        assert!(!find_panics(&lines[0].code));
        assert!(find_raw_casts(&lines[1].code), "{}", lines[1].code);
    }

    #[test]
    fn lifetimes_do_not_open_char_literals() {
        let src = "fn f<'a>(x: &'a str) -> &'a str { x as _; y.unwrap() }\n";
        let lines = lex(src);
        assert!(find_panics(&lines[0].code), "{}", lines[0].code);
    }

    #[test]
    fn allow_marker_suppresses_same_and_next_line() {
        let src = "\
let a = p as f64; // lattice-lint: allow(raw-cast)
// lattice-lint: allow(raw-cast)
let b = q as f64;
let c = r as f64;
";
        let v = scan_source("crates/vlsi/src/x.rs", src);
        let casts: Vec<_> = v.iter().filter(|v| v.rule == Rule::RawCast).collect();
        assert_eq!(casts.len(), 1, "{casts:?}");
        assert_eq!(casts[0].line, 4);
    }

    #[test]
    fn cfg_test_mod_is_skipped() {
        let src = "\
pub fn lib() -> u64 { 1 }
#[cfg(test)]
mod tests {
    #[test]
    fn t() { x.unwrap(); let y = 1.0 as f64; }
}
pub fn tail(v: Option<u64>) -> u64 { v.unwrap() }
";
        let v = scan_source("crates/vlsi/src/x.rs", src);
        let panics: Vec<_> = v.iter().filter(|v| v.rule == Rule::NoPanic).collect();
        assert_eq!(panics.len(), 1, "{panics:?}");
        assert_eq!(panics[0].line, 7);
        assert!(v.iter().all(|v| v.rule != Rule::RawCast), "{v:?}");
    }

    // ---- rule detectors, one injected violation per category ----

    #[test]
    fn detects_injected_raw_cast() {
        let v = scan_source("crates/vlsi/src/wsa.rs", "pub fn f(p: u32) -> u64 { p as u64 }\n");
        assert!(v.iter().any(|v| v.rule == Rule::RawCast && v.line == 1), "{v:?}");
    }

    #[test]
    fn raw_cast_ignores_trait_casts_and_idents() {
        let clean = "let b = <R::S as State>::BITS; let alias = x as MyType; let basil = 1;\n";
        let v = scan_source("crates/vlsi/src/wsa.rs", clean);
        assert!(v.iter().all(|v| v.rule != Rule::RawCast), "{v:?}");
    }

    #[test]
    fn detects_injected_bare_float() {
        let v = scan_source("crates/farm/src/farm.rs", "pub struct S { pub secs: f64 }\n");
        assert!(v.iter().any(|v| v.rule == Rule::BareFloat), "{v:?}");
        // Outside the dimensioned modules the same line is fine.
        let v = scan_source("crates/gas/src/rule.rs", "pub struct S { pub secs: f64 }\n");
        assert!(v.iter().all(|v| v.rule != Rule::BareFloat), "{v:?}");
    }

    #[test]
    fn detects_injected_panics() {
        for (snippet, what) in [
            ("pub fn f(v: Option<u8>) -> u8 { v.unwrap() }\n", "unwrap"),
            ("pub fn f(v: Option<u8>) -> u8 { v.expect(\"set\") }\n", "expect"),
            ("pub fn f() { panic!(\"boom\") }\n", "panic"),
            ("pub fn f() { unreachable!() }\n", "unreachable"),
        ] {
            let v = scan_source("crates/gas/src/x.rs", snippet);
            assert!(v.iter().any(|v| v.rule == Rule::NoPanic), "{what}: {v:?}");
        }
        // Binaries and the bench harness are exempt.
        let v = scan_source("crates/bench/src/bin/t.rs", "fn main() { x.unwrap(); }\n");
        assert!(v.is_empty(), "{v:?}");
    }

    #[test]
    fn detects_injected_counter_mutation() {
        let bad = "fn f(r: &mut RecoveryStats) { r.detected += 1; }\n";
        let v = scan_source("crates/sim/src/audit.rs", bad);
        assert!(v.iter().any(|v| v.rule == Rule::CounterMutation), "{v:?}");
        // The audited modules may mutate freely.
        let v = scan_source("crates/sim/src/host.rs", bad);
        assert!(v.iter().all(|v| v.rule != Rule::CounterMutation), "{v:?}");
    }

    #[test]
    fn counter_reads_and_initialisers_are_free() {
        let src = "\
fn f(r: &RecoveryStats) -> bool { r.detected == r.rollbacks && r.retransmits >= 1 }
fn g() -> RecoveryStats { RecoveryStats { detected: 0, ..Default::default() } }
let ratio = ft.report.retransmits as f64 / passes;
";
        let v = scan_source("crates/gas/src/x.rs", src);
        assert!(v.iter().all(|v| v.rule != Rule::CounterMutation), "{v:?}");
    }

    #[test]
    fn detects_injected_fs_write_outside_the_store() {
        for snippet in [
            "fn f() { std::fs::write(\"x\", b\"y\").ok(); }\n",
            "fn f() { fs::rename(\"a\", \"b\").ok(); }\n",
            "fn f() { let _ = std::fs::File::create(\"x\"); }\n",
            "fn f() { let _ = std::fs::OpenOptions::new().append(true); }\n",
        ] {
            let v = scan_source("crates/gas/src/x.rs", snippet);
            assert!(v.iter().any(|v| v.rule == Rule::FsWrite), "{snippet}: {v:?}");
        }
        // Reads and lookalike paths stay free.
        for clean in [
            "fn f() { let _ = std::fs::read(\"x\"); fs::read_dir(\"d\").ok(); }\n",
            "fn f() { myfs::write(\"x\"); refs::rename(\"a\", \"b\"); }\n",
            "fn f() { let fs_write = 1; }\n",
        ] {
            let v = scan_source("crates/gas/src/x.rs", clean);
            assert!(v.iter().all(|v| v.rule != Rule::FsWrite), "{clean}: {v:?}");
        }
        // The audited store module is the one sanctioned call site.
        let v = scan_source(
            "crates/core/src/checkpoint/store.rs",
            "fn f() { fs::rename(\"a\", \"b\").ok(); }\n",
        );
        assert!(v.iter().all(|v| v.rule != Rule::FsWrite), "{v:?}");
    }

    #[test]
    fn detects_injected_raw_socket_outside_the_transport() {
        for snippet in [
            "fn f() { let _ = std::net::TcpListener::bind(\"127.0.0.1:0\"); }\n",
            "fn f() { let _ = TcpStream::connect(\"127.0.0.1:1\"); }\n",
            "fn f() { let _ = UdpSocket::bind(\"127.0.0.1:0\"); }\n",
            "fn f() { let _ = UnixStream::connect(\"/tmp/s\"); }\n",
        ] {
            let v = scan_source("crates/serve/src/daemon.rs", snippet);
            assert!(v.iter().any(|v| v.rule == Rule::RawSocket), "{snippet}: {v:?}");
        }
        // Lookalike identifiers and plain mentions stay free.
        for clean in [
            "fn f() { let _ = MyTcpStream::connect(\"x\"); }\n",
            "fn f(conn: TcpStream) -> TcpStream { conn }\n",
        ] {
            let v = scan_source("crates/serve/src/daemon.rs", clean);
            assert!(v.iter().all(|v| v.rule != Rule::RawSocket), "{clean}: {v:?}");
        }
        // The audited transport module is the one sanctioned call site.
        let v = scan_source(
            "crates/serve/src/transport.rs",
            "fn f() { let _ = TcpListener::bind(\"127.0.0.1:0\"); }\n",
        );
        assert!(v.iter().all(|v| v.rule != Rule::RawSocket), "{v:?}");
    }

    #[test]
    fn detects_injected_wall_clock_in_result_affecting_crate() {
        let bad = "pub fn stamp() -> Instant { Instant::now() }\n";
        let v = scan_source("crates/gas/src/fhp.rs", bad);
        assert!(v.iter().any(|v| v.rule == Rule::Determinism && v.line == 1), "{v:?}");
        // The daemon may read clocks freely — serve is not
        // result-affecting.
        let v = scan_source("crates/serve/src/daemon.rs", bad);
        assert!(v.iter().all(|v| v.rule != Rule::Determinism), "{v:?}");
        // And an allow marker confines an audited site.
        let marked = "// lattice-lint: allow(determinism)\nlet t = Instant::now();\n";
        let v = scan_source("crates/farm/src/farm.rs", marked);
        assert!(v.iter().all(|v| v.rule != Rule::Determinism), "{v:?}");
    }

    #[test]
    fn detects_injected_hash_iteration_in_result_affecting_crate() {
        let bad = "\
pub fn tally(xs: &[u32]) -> Vec<(u32, u32)> {
    let mut counts: HashMap<u32, u32> = HashMap::new();
    for &x in xs { *counts.entry(x).or_insert(0) += 1; }
    counts.into_iter().collect()
}
";
        let v = scan_source("crates/sim/src/host.rs", bad);
        let det: Vec<_> = v.iter().filter(|v| v.rule == Rule::Determinism).collect();
        assert_eq!(det.len(), 1, "{v:?}");
        assert_eq!(det[0].line, 4, "only the iteration fires, not insert/entry: {det:?}");
    }

    #[test]
    fn detects_injected_lock_inversion_through_scan_sources() {
        // The daemon's one real lock is `state`; a second lock taken
        // before it while holding it inverts the declared order
        // (`state` is outermost).
        let bad = "\
struct S { state: Arc<Mutex<A>>, audit_log: Arc<Mutex<B>> }
fn bad(state: &Mutex<A>, audit_log: &Mutex<B>) {
    let log = audit_log.lock();
    let st = state.lock();
}
";
        let v = scan_sources(&[("crates/serve/src/daemon.rs".to_string(), bad.to_string())], &[]);
        let lock: Vec<_> = v.iter().filter(|v| v.rule == Rule::LockOrder).collect();
        assert!(
            lock.iter().any(|v| v.excerpt.contains("not in the declared global lock order")),
            "`audit_log` is undeclared: {lock:?}"
        );
    }

    #[test]
    fn detects_injected_orphan_wire_variant_through_scan_sources() {
        let proto = "\
pub enum Request {
    Ping,
    Orphan,
}
impl Request {
    pub fn to_json(&self) -> Value {
        match self { Request::Ping => j(), Request::Orphan => j() }
    }
    pub fn from_json(v: &Value) -> Result<Request, E> { Ok(Request::Ping) }
}
";
        let tests = (
            "crates/serve/tests/codec.rs".to_string(),
            "fn t() { r(Request::Ping); }\n".to_string(),
        );
        let v = scan_sources(
            &[("crates/serve/src/protocol.rs".to_string(), proto.to_string())],
            &[tests],
        );
        let wire: Vec<_> = v.iter().filter(|v| v.rule == Rule::WireExhaustiveness).collect();
        assert_eq!(wire.len(), 1, "{v:?}");
        assert_eq!(wire[0].line, 3);
        assert!(
            wire[0].excerpt.contains("`Request::Orphan` missing from: decoder, test corpus"),
            "{wire:?}"
        );
    }

    #[test]
    fn workspace_has_no_unmarked_determinism_lock_or_wire_violations() {
        // The acceptance bar for the multi-pass analyzer: the three
        // cross-cutting rules hold at zero across the workspace — not
        // merely "no more than baseline".
        let root = workspace_root();
        let violations = scan_workspace(&root).expect("scan");
        let hard: Vec<_> = violations
            .iter()
            .filter(|v| {
                matches!(v.rule, Rule::Determinism | Rule::LockOrder | Rule::WireExhaustiveness)
            })
            .collect();
        assert!(hard.is_empty(), "analyzer rules must hold at zero: {hard:?}");
    }

    #[test]
    fn baseline_render_is_stable_sorted_by_rule_name_then_file() {
        let mk = |rule: Rule, file: &str| Violation {
            rule,
            file: file.into(),
            line: 1,
            excerpt: String::new(),
        };
        // `Determinism` sorts after `RawCast` by enum ordinal but
        // before it by name — the rendered file must use name order.
        let baseline = Baseline::freeze(&[
            mk(Rule::RawCast, "crates/vlsi/src/b.rs"),
            mk(Rule::Determinism, "crates/gas/src/z.rs"),
            mk(Rule::RawCast, "crates/vlsi/src/a.rs"),
        ]);
        let text = baseline.render();
        let order: Vec<usize> = [
            "rule = \"determinism\"",
            "file = \"crates/vlsi/src/a.rs\"",
            "file = \"crates/vlsi/src/b.rs\"",
        ]
        .iter()
        .map(|n| text.find(n).expect(n))
        .collect();
        assert!(order[0] < order[1] && order[1] < order[2], "{text}");
        assert_eq!(Baseline::parse(&text).expect("round trip"), baseline);
    }

    #[test]
    fn conservation_set_matches_recovery_ladder() {
        // The invariant the audited modules maintain:
        // detected = retransmits + local_rollbacks + rollbacks + boards_retired.
        assert_eq!(
            CONSERVATION_FIELDS,
            ["detected", "retransmits", "local_rollbacks", "rollbacks", "boards_retired"]
        );
        assert!(COUNTER_AUDITED.contains(&"crates/farm/src/farm.rs"));
        assert!(COUNTER_AUDITED.contains(&"crates/sim/src/host.rs"));
    }

    // ---- baseline ----

    #[test]
    fn baseline_round_trips_through_render_and_parse() {
        let violations = vec![
            Violation {
                rule: Rule::NoPanic,
                file: "crates/gas/src/x.rs".into(),
                line: 3,
                excerpt: "x.unwrap()".into(),
            },
            Violation {
                rule: Rule::NoPanic,
                file: "crates/gas/src/x.rs".into(),
                line: 9,
                excerpt: "y.unwrap()".into(),
            },
            Violation {
                rule: Rule::BareFloat,
                file: "crates/vlsi/src/tech.rs".into(),
                line: 1,
                excerpt: "pub b: f64".into(),
            },
        ];
        let frozen = Baseline::freeze(&violations);
        let parsed = Baseline::parse(&frozen.render()).expect("round trip");
        assert_eq!(frozen, parsed);
        assert_eq!(parsed.allowed(Rule::NoPanic, "crates/gas/src/x.rs"), 2);
        assert_eq!(parsed.allowed(Rule::BareFloat, "crates/vlsi/src/tech.rs"), 1);
        assert_eq!(parsed.allowed(Rule::RawCast, "crates/gas/src/x.rs"), 0);
    }

    #[test]
    fn baseline_parse_rejects_garbage() {
        assert!(Baseline::parse("[[entry]]\nrule = \"no-panic\"\n").is_err());
        assert!(Baseline::parse("[[entry]]\nrule = \"bogus\"\nfile = \"x\"\ncount = 1\n").is_err());
        assert!(Baseline::parse("what even is this").is_err());
    }

    #[test]
    fn ratchet_blocks_growth_and_reports_slack() {
        let mk = |line: usize| Violation {
            rule: Rule::NoPanic,
            file: "crates/gas/src/x.rs".into(),
            line,
            excerpt: String::new(),
        };
        let baseline = Baseline::freeze(&[mk(1), mk(2)]);
        // Same count: clean, no slack.
        let r = check(&[mk(1), mk(5)], &baseline);
        assert!(r.is_clean() && r.slack.is_empty(), "{r:?}");
        // One more: dirty.
        let r = check(&[mk(1), mk(2), mk(3)], &baseline);
        assert_eq!(r.new_violations.len(), 3);
        // One fewer: clean with slack.
        let r = check(&[mk(1)], &baseline);
        assert!(r.is_clean());
        assert_eq!(r.slack, vec![(Rule::NoPanic, "crates/gas/src/x.rs".to_string(), 2, 1)]);
        // All burned down: slack reports the orphaned entry.
        let r = check(&[], &baseline);
        assert_eq!(r.slack, vec![(Rule::NoPanic, "crates/gas/src/x.rs".to_string(), 2, 0)]);
    }

    // ---- the workspace itself ----

    fn workspace_root() -> PathBuf {
        Path::new(env!("CARGO_MANIFEST_DIR")).join("../..").canonicalize().expect("root")
    }

    #[test]
    fn workspace_is_clean_against_committed_baseline() {
        let root = workspace_root();
        let text = fs::read_to_string(root.join("lint-baseline.toml")).expect("baseline file");
        let baseline = Baseline::parse(&text).expect("baseline parses");
        let violations = scan_workspace(&root).expect("scan");
        let report = check(&violations, &baseline);
        assert!(
            report.is_clean(),
            "new lint violations:\n{}",
            report.new_violations.iter().map(ToString::to_string).collect::<Vec<_>>().join("\n")
        );
    }

    #[test]
    fn audited_accounting_spines_carry_no_raw_casts() {
        // The acceptance bar for the typed-units refactor: the
        // dimension-carrying arithmetic in vlsi and farm has zero raw
        // casts — not merely "no more than baseline".
        let root = workspace_root();
        let violations = scan_workspace(&root).expect("scan");
        let casts: Vec<_> = violations
            .iter()
            .filter(|v| {
                v.rule == Rule::RawCast
                    && (v.file.starts_with("crates/vlsi/") || v.file.starts_with("crates/farm/"))
            })
            .collect();
        assert!(casts.is_empty(), "raw casts crept back into the model spine: {casts:?}");
    }
}
