//! Pass 1 — the lexer.
//!
//! Turns raw source text into [`LexedLine`]s: comments and
//! string/char-literal *contents* are blanked out (structure, including
//! the quote characters, is preserved so columns stay aligned),
//! `// lattice-lint: allow(...)` markers are resolved onto the lines
//! they bless, and `#[cfg(test)]` / `#[test]` regions are marked by
//! brace tracking. Every later pass — the line rules, the item parser,
//! and fact extraction — operates on the blanked `code` text and never
//! has to reason about literals again.

use crate::Rule;

/// A source line after lexing: comments and string/char literals
/// blanked out, allow-markers and test-region membership resolved.
#[derive(Debug, Clone)]
pub struct LexedLine {
    /// The line with comments and literal contents replaced by spaces;
    /// code structure (including quotes as placeholders) preserved.
    pub code: String,
    /// Rules suppressed on this line via `// lattice-lint: allow(...)`
    /// on this line or the one above.
    pub allows: Vec<Rule>,
    /// True if the line sits inside a `#[cfg(test)]` / `#[test]` item.
    pub in_test: bool,
}

/// Lexes a whole file: strips comments, strings and char literals
/// (comment *text* is scanned for allow-markers first), then marks
/// `#[cfg(test)]`/`#[test]` regions by brace tracking.
pub fn lex(source: &str) -> Vec<LexedLine> {
    #[derive(PartialEq)]
    enum Mode {
        Code,
        LineComment,
        BlockComment(u32),
        Str,
        RawStr(usize),
        Char,
    }

    let mut lines: Vec<LexedLine> = Vec::new();
    let mut code = String::new();
    let mut comment_text = String::new();
    let mut marker_rules: Vec<Rule> = Vec::new();
    let mut carried_rules: Vec<Rule> = Vec::new();
    let mut mode = Mode::Code;

    let flush_line = |code: &mut String,
                      comment_text: &mut String,
                      marker_rules: &mut Vec<Rule>,
                      carried: &mut Vec<Rule>,
                      lines: &mut Vec<LexedLine>| {
        marker_rules.extend(parse_allow_marker(comment_text));
        let mut allows = carried.clone();
        allows.extend(marker_rules.iter().copied());
        // A marker on a line carries to the next line as well, so it
        // can sit above the code it blesses.
        *carried = marker_rules.clone();
        lines.push(LexedLine { code: std::mem::take(code), allows, in_test: false });
        comment_text.clear();
        marker_rules.clear();
    };

    let mut chars = source.chars().peekable();
    while let Some(c) = chars.next() {
        if c == '\n' {
            if mode == Mode::LineComment {
                mode = Mode::Code;
            }
            flush_line(
                &mut code,
                &mut comment_text,
                &mut marker_rules,
                &mut carried_rules,
                &mut lines,
            );
            continue;
        }
        match mode {
            Mode::Code => match c {
                '/' if chars.peek() == Some(&'/') => {
                    chars.next();
                    mode = Mode::LineComment;
                    code.push_str("  ");
                }
                '/' if chars.peek() == Some(&'*') => {
                    chars.next();
                    mode = Mode::BlockComment(1);
                    code.push_str("  ");
                }
                '"' => {
                    mode = Mode::Str;
                    code.push('"');
                }
                'r' if matches!(chars.peek(), Some('"' | '#')) => {
                    // Possible raw string: r"..." or r#"..."#.
                    let mut hashes = 0usize;
                    let mut lookahead = chars.clone();
                    while lookahead.peek() == Some(&'#') {
                        lookahead.next();
                        hashes += 1;
                    }
                    if lookahead.peek() == Some(&'"') {
                        for _ in 0..=hashes {
                            chars.next();
                        }
                        mode = Mode::RawStr(hashes);
                        code.push('"');
                    } else {
                        code.push('r');
                    }
                }
                '\'' => {
                    // Char literal vs lifetime: a literal closes with a
                    // quote within a couple of chars; a lifetime does
                    // not.
                    let mut lookahead = chars.clone();
                    let mut is_char = false;
                    if let Some(first) = lookahead.next() {
                        if first == '\\' {
                            // Escape: skip to the closing quote.
                            for _ in 0..8 {
                                if lookahead.next() == Some('\'') {
                                    is_char = true;
                                    break;
                                }
                            }
                        } else if lookahead.peek() == Some(&'\'') {
                            is_char = true;
                        }
                    }
                    if is_char {
                        mode = Mode::Char;
                        code.push('\'');
                    } else {
                        code.push('\'');
                    }
                }
                _ => code.push(c),
            },
            Mode::LineComment => {
                comment_text.push(c);
                code.push(' ');
            }
            Mode::BlockComment(depth) => {
                comment_text.push(c);
                code.push(' ');
                if c == '/' && chars.peek() == Some(&'*') {
                    chars.next();
                    comment_text.push('*');
                    code.push(' ');
                    mode = Mode::BlockComment(depth + 1);
                } else if c == '*' && chars.peek() == Some(&'/') {
                    chars.next();
                    code.push(' ');
                    mode = if depth == 1 { Mode::Code } else { Mode::BlockComment(depth - 1) };
                }
            }
            Mode::Str => {
                if c == '\\' {
                    // A backslash-newline continuation must still
                    // advance the line counter, or every diagnostic
                    // below a multi-line string reports the wrong line.
                    if chars.peek() == Some(&'\n') {
                        chars.next();
                        flush_line(
                            &mut code,
                            &mut comment_text,
                            &mut marker_rules,
                            &mut carried_rules,
                            &mut lines,
                        );
                    } else {
                        chars.next();
                        code.push_str("  ");
                    }
                } else if c == '"' {
                    mode = Mode::Code;
                    code.push('"');
                } else {
                    code.push(' ');
                }
            }
            Mode::RawStr(hashes) => {
                if c == '"' {
                    let mut lookahead = chars.clone();
                    let mut seen = 0usize;
                    while seen < hashes && lookahead.peek() == Some(&'#') {
                        lookahead.next();
                        seen += 1;
                    }
                    if seen == hashes {
                        for _ in 0..hashes {
                            chars.next();
                            code.push(' ');
                        }
                        mode = Mode::Code;
                        code.push('"');
                        continue;
                    }
                }
                code.push(' ');
            }
            Mode::Char => {
                if c == '\\' {
                    chars.next();
                    code.push_str("  ");
                } else if c == '\'' {
                    mode = Mode::Code;
                    code.push('\'');
                } else {
                    code.push(' ');
                }
            }
        }
    }
    flush_line(&mut code, &mut comment_text, &mut marker_rules, &mut carried_rules, &mut lines);

    mark_test_regions(&mut lines);
    lines
}

/// Extracts rules from a `lattice-lint: allow(a, b)` marker in comment
/// text. Unknown rule names are ignored (they suppress nothing).
fn parse_allow_marker(comment: &str) -> Vec<Rule> {
    let mut rules = Vec::new();
    let mut rest = comment;
    while let Some(at) = rest.find("lattice-lint:") {
        rest = &rest[at + "lattice-lint:".len()..];
        let trimmed = rest.trim_start();
        if let Some(args) = trimmed.strip_prefix("allow(") {
            if let Some(close) = args.find(')') {
                for name in args[..close].split(',') {
                    if let Some(rule) = Rule::from_name(name.trim()) {
                        rules.push(rule);
                    }
                }
                rest = &args[close..];
            }
        }
    }
    rules
}

/// Marks every line inside a `#[cfg(test)]` or `#[test]` item by
/// walking brace depth over the comment-stripped code.
fn mark_test_regions(lines: &mut [LexedLine]) {
    let mut depth: i64 = 0;
    let mut pending_attr = false;
    let mut skip_exit: Option<i64> = None;

    for line in lines.iter_mut() {
        if skip_exit.is_some() {
            line.in_test = true;
        }
        let has_test_attr = line.code.contains("#[cfg(test)]")
            || line.code.contains("#[cfg(all(test")
            || line.code.contains("#[test]");
        if has_test_attr && skip_exit.is_none() {
            pending_attr = true;
            line.in_test = true;
        }
        for c in line.code.chars() {
            match c {
                '{' => {
                    if pending_attr && skip_exit.is_none() {
                        skip_exit = Some(depth);
                        pending_attr = false;
                        line.in_test = true;
                    }
                    depth += 1;
                }
                '}' => {
                    depth -= 1;
                    if let Some(exit) = skip_exit {
                        if depth <= exit {
                            skip_exit = None;
                        }
                    }
                }
                _ => {}
            }
        }
    }
}

/// True for characters that can appear in a Rust identifier.
pub fn is_ident_char(c: char) -> bool {
    c.is_ascii_alphanumeric() || c == '_'
}
