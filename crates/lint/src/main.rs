//! `lattice-lint` CLI.
//!
//! ```text
//! lattice-lint [--root DIR] [--allowlist FILE] [--write-baseline]
//!              [--list] [--format plain|json] [--deny-slack]
//! ```
//!
//! Scans the workspace's audited sources and checks them against the
//! count-based ratchet baseline (default `lint-baseline.toml` at the
//! workspace root). `--format json` emits one ndjson record per
//! diagnostic (kind/rule/file/line/message) plus a trailing summary
//! record, for CI annotation. `--deny-slack` additionally fails when a
//! baseline entry's actual count has dropped below its frozen count —
//! a stale baseline that must be tightened. Exit code 0 when clean, 1
//! when new violations exceed the baseline (or slack under
//! `--deny-slack`), 2 on usage or I/O errors.

use std::path::PathBuf;
use std::process::ExitCode;

use lattice_lint::{check, json_escape, scan_workspace, Baseline, Rule};

#[derive(PartialEq, Clone, Copy)]
enum Format {
    Plain,
    Json,
}

struct Args {
    root: PathBuf,
    allowlist: PathBuf,
    write_baseline: bool,
    list: bool,
    format: Format,
    deny_slack: bool,
}

fn parse_args() -> Result<Args, String> {
    let mut root = PathBuf::from(".");
    let mut allowlist: Option<PathBuf> = None;
    let mut write_baseline = false;
    let mut list = false;
    let mut format = Format::Plain;
    let mut deny_slack = false;
    let mut argv = std::env::args().skip(1);
    while let Some(arg) = argv.next() {
        match arg.as_str() {
            "--root" => {
                root = PathBuf::from(argv.next().ok_or("--root needs a directory")?);
            }
            "--allowlist" => {
                allowlist = Some(PathBuf::from(argv.next().ok_or("--allowlist needs a file")?));
            }
            "--write-baseline" => write_baseline = true,
            "--list" => list = true,
            "--format" => {
                format = match argv.next().as_deref() {
                    Some("plain") => Format::Plain,
                    Some("json") => Format::Json,
                    other => {
                        return Err(format!(
                            "--format needs `plain` or `json`, got {}",
                            other.unwrap_or("nothing")
                        ))
                    }
                };
            }
            "--deny-slack" => deny_slack = true,
            "--workspace" => {} // default and only mode; accepted for CI readability
            "--help" | "-h" => {
                return Err("usage: lattice-lint [--root DIR] [--allowlist FILE] \
                            [--write-baseline] [--list] [--format plain|json] [--deny-slack]"
                    .to_string())
            }
            other => return Err(format!("unknown argument: {other}")),
        }
    }
    let allowlist = allowlist.unwrap_or_else(|| root.join("lint-baseline.toml"));
    Ok(Args { root, allowlist, write_baseline, list, format, deny_slack })
}

fn run() -> Result<bool, String> {
    let args = parse_args()?;
    let violations = scan_workspace(&args.root)?;

    if args.write_baseline {
        let baseline = Baseline::freeze(&violations);
        std::fs::write(&args.allowlist, baseline.render())
            .map_err(|e| format!("{}: {e}", args.allowlist.display()))?;
        println!(
            "wrote {} ({} entries, {} violations frozen)",
            args.allowlist.display(),
            baseline.len(),
            violations.len()
        );
        return Ok(true);
    }

    if args.list {
        for v in &violations {
            match args.format {
                Format::Plain => println!("{v}"),
                Format::Json => println!("{}", v.to_json()),
            }
        }
        if args.format == Format::Plain {
            println!("{} total (before baseline)", violations.len());
        }
        return Ok(true);
    }

    let baseline = match std::fs::read_to_string(&args.allowlist) {
        Ok(text) => {
            Baseline::parse(&text).map_err(|e| format!("{}: {e}", args.allowlist.display()))?
        }
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => Baseline::default(),
        Err(e) => return Err(format!("{}: {e}", args.allowlist.display())),
    };

    let report = check(&violations, &baseline);
    let stale = !report.slack.is_empty() && args.deny_slack;
    let clean = report.is_clean() && !stale;

    match args.format {
        Format::Plain => {
            for v in &report.new_violations {
                println!("error: {v}");
            }
            for (rule, file, frozen, current) in &report.slack {
                let level = if args.deny_slack { "error" } else { "note" };
                println!(
                    "{level}: {file}: {rule} baseline can tighten: \
                     {frozen} frozen, {current} remain"
                );
            }
            let mut per_rule = String::new();
            for rule in Rule::ALL {
                let n = violations.iter().filter(|v| v.rule == rule).count();
                per_rule.push_str(&format!(" {rule}={n}"));
            }
            if clean {
                println!("lattice-lint: clean ({} baselined:{per_rule})", violations.len());
            } else if stale && report.is_clean() {
                println!(
                    "lattice-lint: stale baseline — {} entr(ies) below frozen count; \
                     regenerate with --write-baseline",
                    report.slack.len()
                );
            } else {
                println!(
                    "lattice-lint: {} violation(s) exceed the baseline ({} scanned:{per_rule})",
                    report.new_violations.len(),
                    violations.len()
                );
            }
        }
        Format::Json => {
            for v in &report.new_violations {
                println!("{}", v.to_json());
            }
            for (rule, file, frozen, current) in &report.slack {
                println!(
                    "{{\"kind\":\"slack\",\"rule\":\"{rule}\",\"file\":\"{}\",\
                     \"frozen\":{frozen},\"current\":{current}}}",
                    json_escape(file)
                );
            }
            println!(
                "{{\"kind\":\"summary\",\"clean\":{clean},\"new\":{},\"slack\":{},\
                 \"scanned\":{}}}",
                report.new_violations.len(),
                report.slack.len(),
                violations.len()
            );
        }
    }
    Ok(clean)
}

fn main() -> ExitCode {
    match run() {
        Ok(true) => ExitCode::SUCCESS,
        Ok(false) => ExitCode::from(1),
        Err(msg) => {
            eprintln!("lattice-lint: {msg}");
            ExitCode::from(2)
        }
    }
}
