//! Pass 2 — the item-level parser.
//!
//! Walks the blanked token stream from the [`lexer`](crate::lexer) and
//! recovers the item structure the cross-cutting rules need: function
//! items with brace-matched body spans and their enclosing `impl` type,
//! and enum items with per-variant declaration lines. This is not a
//! full Rust grammar — it is the minimal shape-preserving parse that
//! makes "which function does this line belong to" and "which variants
//! does this enum declare" answerable without `syn` (the workspace
//! builds offline; the linter depends on nothing but `std`).

use crate::lexer::{is_ident_char, LexedLine};

/// One token of blanked code: an identifier or a single punctuation
/// character, with its 0-based source line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Token {
    /// Identifier text, or a single-character punctuation string.
    pub text: String,
    /// 0-based line the token starts on.
    pub line: usize,
}

impl Token {
    fn is_ident(&self) -> bool {
        self.text.chars().next().map(|c| c.is_ascii_alphabetic() || c == '_').unwrap_or(false)
    }
}

/// Tokenizes blanked lines into identifiers and punctuation.
pub fn tokenize(lines: &[LexedLine]) -> Vec<Token> {
    let mut out = Vec::new();
    for (lineno, line) in lines.iter().enumerate() {
        let mut ident = String::new();
        for c in line.code.chars() {
            if is_ident_char(c) {
                ident.push(c);
            } else {
                if !ident.is_empty() {
                    out.push(Token { text: std::mem::take(&mut ident), line: lineno });
                }
                if !c.is_whitespace() {
                    out.push(Token { text: c.to_string(), line: lineno });
                }
            }
        }
        if !ident.is_empty() {
            out.push(Token { text: ident, line: lineno });
        }
    }
    out
}

/// A function item: name, enclosing `impl` type (if any), and the
/// brace-matched body span.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FnItem {
    /// Bare function name.
    pub name: String,
    /// The `Self` type when declared inside an `impl` block
    /// (`impl Foo` and `impl Trait for Foo` both yield `Foo`).
    pub impl_type: Option<String>,
    /// 0-based line of the `fn` keyword.
    pub sig_line: usize,
    /// 0-based inclusive line span of the body, braces included.
    /// `None` for bodiless declarations (trait methods, externs).
    pub body: Option<(usize, usize)>,
}

/// An enum item with its variant names.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EnumItem {
    /// Enum name.
    pub name: String,
    /// 0-based line of the `enum` keyword.
    pub line: usize,
    /// `(variant, 0-based declaration line)` in declaration order.
    pub variants: Vec<(String, usize)>,
}

/// Items recovered from one file.
#[derive(Debug, Clone, Default)]
pub struct Items {
    /// Function items, in source order (nested functions included).
    pub fns: Vec<FnItem>,
    /// Enum items, in source order.
    pub enums: Vec<EnumItem>,
}

/// Skips a balanced `<...>` generic-argument region starting at
/// `toks[i]` (which must be `<`); returns the index just past the
/// closing `>`. Tolerates `>>`-style closes because each `>` is its own
/// token.
fn skip_generics(toks: &[Token], mut i: usize) -> usize {
    let mut depth = 0i64;
    while i < toks.len() {
        match toks[i].text.as_str() {
            "<" => depth += 1,
            ">" => {
                depth -= 1;
                if depth <= 0 {
                    return i + 1;
                }
            }
            // `(` in generic position means we mis-guessed (comparison
            // operator, not generics); bail out rather than scan away.
            ";" | "{" => return i,
            _ => {}
        }
        i += 1;
    }
    i
}

/// Extracts the `Self` type name from an `impl` header token slice
/// (everything between `impl` and the opening `{`).
fn impl_self_type(header: &[Token]) -> Option<String> {
    // `impl<G: Graph> Trait for Type` → the type is after the last
    // top-level `for`; `impl Type` → the first path's last segment
    // would be wrong for `fmt::Display`, so take the *first* ident of
    // the relevant part and then follow `::` to the final segment.
    let mut start = 0usize;
    let mut depth = 0i64;
    for (i, t) in header.iter().enumerate() {
        match t.text.as_str() {
            "<" => depth += 1,
            ">" => depth -= 1,
            "for" if depth == 0 => start = i + 1,
            _ => {}
        }
    }
    // Walk the type path from `start`: segments separated by `::`; the
    // final segment is the type name. Skip leading `&`, lifetimes, etc.
    let mut name: Option<String> = None;
    let mut i = start;
    // Skip over generic params directly after `impl` when no `for`
    // moved `start` (e.g. `impl<S: State> FarmReport<S>`).
    if start == 0 && header.first().map(|t| t.text == "<").unwrap_or(false) {
        let mut d = 0i64;
        while i < header.len() {
            match header[i].text.as_str() {
                "<" => d += 1,
                ">" => {
                    d -= 1;
                    if d == 0 {
                        i += 1;
                        break;
                    }
                }
                _ => {}
            }
            i += 1;
        }
    }
    while i < header.len() {
        let t = &header[i];
        if t.is_ident() {
            name = Some(t.text.clone());
            // Follow `::Segment` chains.
            if i + 2 < header.len() && header[i + 1].text == ":" && header[i + 2].text == ":" {
                i += 3;
                continue;
            }
            break;
        }
        if t.text == "&" || t.text == "'" {
            i += 1;
            continue;
        }
        break;
    }
    name
}

/// Parses the item structure of one file from its blanked lines.
pub fn parse_items(lines: &[LexedLine]) -> Items {
    let toks = tokenize(lines);
    let mut items = Items::default();
    let mut depth = 0i64;
    // `(self type, depth at which the impl body opened)`.
    let mut impl_stack: Vec<(String, i64)> = Vec::new();
    let mut pending_impl: Option<String> = None;

    let mut i = 0usize;
    while i < toks.len() {
        match toks[i].text.as_str() {
            "{" => {
                if let Some(ty) = pending_impl.take() {
                    impl_stack.push((ty, depth));
                }
                depth += 1;
                i += 1;
            }
            "}" => {
                depth -= 1;
                while impl_stack.last().map(|(_, d)| *d >= depth).unwrap_or(false) {
                    impl_stack.pop();
                }
                i += 1;
            }
            "impl" => {
                // Collect the header up to the body `{` (or a `;` for
                // bodiless `impl Trait for Type;`-style items, which
                // don't exist in stable Rust but cost nothing to
                // tolerate).
                let mut j = i + 1;
                let mut hdr_depth = 0i64;
                while j < toks.len() {
                    match toks[j].text.as_str() {
                        "<" => hdr_depth += 1,
                        ">" => hdr_depth -= 1,
                        "{" if hdr_depth <= 0 => break,
                        ";" if hdr_depth <= 0 => break,
                        _ => {}
                    }
                    j += 1;
                }
                pending_impl = impl_self_type(&toks[i + 1..j]);
                i = j; // the `{` / `;` is handled by the main loop
            }
            "fn" => {
                // `fn` in type position (`fn(usize) -> u64`) has no
                // name ident after it.
                let name_tok = toks.get(i + 1);
                let named = name_tok.map(|t| t.is_ident()).unwrap_or(false);
                if !named {
                    i += 1;
                    continue;
                }
                let name = name_tok.map(|t| t.text.clone()).unwrap_or_default();
                let sig_line = toks[i].line;
                // Find the body `{` or a terminating `;` at signature
                // level (tracking `<>` and `()` so defaults and
                // where-clauses don't confuse the scan).
                let mut j = i + 2;
                let mut angle = 0i64;
                let mut paren = 0i64;
                let mut body: Option<(usize, usize)> = None;
                while j < toks.len() {
                    match toks[j].text.as_str() {
                        "<" => angle += 1,
                        ">" => angle = (angle - 1).max(0),
                        "(" => paren += 1,
                        ")" => paren -= 1,
                        ";" if paren <= 0 => break,
                        "{" if paren <= 0 => {
                            let start_line = toks[j].line;
                            // Brace-match to the end of the body.
                            let mut d = 0i64;
                            let mut k = j;
                            while k < toks.len() {
                                match toks[k].text.as_str() {
                                    "{" => d += 1,
                                    "}" => {
                                        d -= 1;
                                        if d == 0 {
                                            break;
                                        }
                                    }
                                    _ => {}
                                }
                                k += 1;
                            }
                            let end_line = toks.get(k).map(|t| t.line).unwrap_or(start_line);
                            body = Some((start_line, end_line));
                            break;
                        }
                        _ => {}
                    }
                    j += 1;
                }
                let _ = angle;
                items.fns.push(FnItem {
                    name,
                    impl_type: impl_stack.last().map(|(t, _)| t.clone()),
                    sig_line,
                    body,
                });
                // Continue from just past the signature; the body
                // braces are walked by the main loop so nested items
                // are discovered too.
                i += 2;
            }
            "enum" => {
                let name_tok = toks.get(i + 1);
                if !name_tok.map(|t| t.is_ident()).unwrap_or(false) {
                    i += 1;
                    continue;
                }
                let name = name_tok.map(|t| t.text.clone()).unwrap_or_default();
                let line = toks[i].line;
                // Skip generics, find the `{`.
                let mut j = i + 2;
                if toks.get(j).map(|t| t.text == "<").unwrap_or(false) {
                    j = skip_generics(&toks, j);
                }
                if !toks.get(j).map(|t| t.text == "{").unwrap_or(false) {
                    i += 1;
                    continue;
                }
                // Lookahead variant scan; the main loop re-walks the
                // braces for depth bookkeeping.
                let mut variants = Vec::new();
                let mut k = j + 1;
                let mut brace = 1i64;
                let mut paren = 0i64;
                let mut at_variant = true;
                while k < toks.len() && brace > 0 {
                    let t = &toks[k];
                    match t.text.as_str() {
                        "{" => {
                            brace += 1;
                            at_variant = false;
                        }
                        "}" => brace -= 1,
                        "(" => {
                            paren += 1;
                            at_variant = false;
                        }
                        ")" => paren -= 1,
                        "," if brace == 1 && paren == 0 => at_variant = true,
                        "#" if at_variant => {
                            // Skip a variant attribute `#[...]`.
                            if toks.get(k + 1).map(|t| t.text == "[").unwrap_or(false) {
                                let mut d = 0i64;
                                k += 1;
                                while k < toks.len() {
                                    match toks[k].text.as_str() {
                                        "[" => d += 1,
                                        "]" => {
                                            d -= 1;
                                            if d == 0 {
                                                break;
                                            }
                                        }
                                        _ => {}
                                    }
                                    k += 1;
                                }
                            }
                        }
                        "=" => at_variant = false, // discriminant
                        _ => {
                            if at_variant && t.is_ident() && brace == 1 && paren == 0 {
                                variants.push((t.text.clone(), t.line));
                                at_variant = false;
                            }
                        }
                    }
                    k += 1;
                }
                items.enums.push(EnumItem { name, line, variants });
                i = j; // main loop handles the `{`
            }
            _ => i += 1,
        }
    }
    items
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn parse(src: &str) -> Items {
        parse_items(&lex(src))
    }

    #[test]
    fn fns_get_bodies_and_impl_context() {
        let src = "\
pub fn free(x: u64) -> u64 {
    x + 1
}
impl fmt::Display for Rule {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}
impl<S: State> FarmReport<S> {
    pub fn grid(&self) -> &Grid<S> { &self.machine.grid }
}
";
        let items = parse(src);
        let names: Vec<_> =
            items.fns.iter().map(|f| (f.name.as_str(), f.impl_type.as_deref())).collect();
        assert_eq!(
            names,
            vec![("free", None), ("fmt", Some("Rule")), ("grid", Some("FarmReport"))],
            "{items:?}"
        );
        assert_eq!(items.fns[0].body, Some((0, 2)));
        assert_eq!(items.fns[2].body, Some((9, 9)));
    }

    #[test]
    fn trait_decls_have_no_body_and_nested_fns_are_found() {
        let src = "\
trait T {
    fn decl(&self) -> u64;
    fn defaulted(&self) -> u64 {
        fn nested() -> u64 { 7 }
        nested()
    }
}
";
        let items = parse(src);
        let by_name: Vec<_> = items.fns.iter().map(|f| (f.name.as_str(), f.body)).collect();
        assert_eq!(
            by_name,
            vec![("decl", None), ("defaulted", Some((2, 5))), ("nested", Some((3, 3)))],
            "{items:?}"
        );
    }

    #[test]
    fn enums_yield_variants_with_payloads_skipped() {
        let src = "\
pub enum Response {
    Created { session: String, admitted: bool },
    Report(ReportFrame),
    Pair(u32, u32),
    #[allow(dead_code)]
    Bye,
    Error { message: String },
}
";
        let items = parse(src);
        assert_eq!(items.enums.len(), 1);
        let e = &items.enums[0];
        assert_eq!(e.name, "Response");
        let names: Vec<_> = e.variants.iter().map(|(n, _)| n.as_str()).collect();
        assert_eq!(names, vec!["Created", "Report", "Pair", "Bye", "Error"], "{e:?}");
        assert_eq!(e.variants[3], ("Bye".to_string(), 5));
    }

    #[test]
    fn fn_pointer_types_are_not_items() {
        let items = parse("type F = fn(usize) -> u64;\npub fn real() -> F { todo }\n");
        let names: Vec<_> = items.fns.iter().map(|f| f.name.as_str()).collect();
        assert_eq!(names, vec!["real"]);
    }
}
