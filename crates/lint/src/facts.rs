//! Pass 3 — per-function fact extraction.
//!
//! Walks each function body recovered by the [`parser`](crate::parser)
//! and extracts the facts the cross-cutting rules consume: lock
//! acquisition/release events, guard bindings, and outgoing calls (in
//! source order, so the lock-order rule can replay them as a held-set
//! simulation), plus the file-level lock declarations that tell the
//! rules which names *are* locks in the first place.

use std::collections::BTreeSet;

use crate::lexer::{is_ident_char, LexedLine};
use crate::parser::{parse_items, FnItem, Items};

/// One event inside a function body, in source order.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Event {
    /// A lock acquisition: `NAME.lock()` / `NAME.read()` /
    /// `NAME.write()` where `NAME` is a declared lock. When the guard
    /// is let-bound its binding name is recorded so a later
    /// `drop(guard)` releases it; a temporary guard (no binding) is
    /// treated as held only for its own statement.
    Acquire {
        /// Declared lock name.
        lock: String,
        /// Guard binding (`let g = state.lock()…` → `g`), if any.
        guard: Option<String>,
        /// 0-based source line.
        line: usize,
    },
    /// `drop(NAME)` — releases the guard bound to `NAME`, if any.
    Drop {
        /// The dropped binding.
        name: String,
        /// 0-based source line.
        line: usize,
    },
    /// A call to a bare function name (`helper(...)`). Method calls and
    /// macro invocations are not calls for lock-reach purposes.
    Call {
        /// Bare callee name.
        callee: String,
        /// 0-based source line.
        line: usize,
    },
}

/// The extracted facts for one function.
#[derive(Debug, Clone)]
pub struct FnFacts {
    /// The parsed item this body belongs to.
    pub item: FnItem,
    /// Body events in source order.
    pub events: Vec<Event>,
}

/// The extracted facts for one file.
#[derive(Debug, Clone, Default)]
pub struct FileFacts {
    /// Item structure (functions, enums).
    pub items: Items,
    /// Per-function event streams, aligned with `items.fns` order.
    pub fns: Vec<FnFacts>,
    /// Lock names declared in this file (bindings, fields, and params
    /// whose type mentions `Mutex<` / `RwLock<`).
    pub locks: BTreeSet<String>,
}

const KEYWORDS: [&str; 18] = [
    "if", "else", "match", "while", "for", "loop", "return", "let", "fn", "impl", "pub", "mod",
    "use", "move", "in", "as", "where", "ref",
];

/// Extracts every fact the cross-file rules need from one lexed file.
pub fn extract(lines: &[LexedLine]) -> FileFacts {
    let items = parse_items(lines);
    let locks = collect_lock_names(lines);
    let fns = items
        .fns
        .iter()
        .map(|item| FnFacts { item: item.clone(), events: extract_events(lines, item, &locks) })
        .collect();
    FileFacts { items, fns, locks }
}

/// Finds the names bound to `Mutex`/`RwLock` values anywhere in the
/// file: struct fields and fn params (`name: …Mutex<…`), and let
/// bindings (`let name = …Mutex::new(…` / `…RwLock::new(…`).
fn collect_lock_names(lines: &[LexedLine]) -> BTreeSet<String> {
    let mut out = BTreeSet::new();
    for line in lines {
        let code = &line.code;
        // Typed form: each `Mutex<` / `RwLock<` occurrence names the
        // binding whose `name:` annotation sits to its left.
        for needle in ["Mutex<", "RwLock<"] {
            for at in boundary_matches(code, needle) {
                if let Some(name) = annotated_name_before(code, at) {
                    out.insert(name);
                }
            }
        }
        // Binding form: `let name = Arc::new(Mutex::new(…))`.
        if find_boundary(code, "Mutex::new").is_some()
            || find_boundary(code, "RwLock::new").is_some()
        {
            if let Some(name) = let_binding_name(code) {
                out.insert(name);
            }
        }
    }
    out
}

/// Walks backward from `at` to the nearest single `:` (not part of a
/// `::` path separator) and returns the identifier before it — the
/// `name` of a `name: …Lock<…>` annotation. Stops at separators that
/// end the binding (`,`, `(`, `)`, `;`, `=`, `>`, braces), so a lock
/// type in return position (`-> Mutex<…>`) or with no annotation to
/// its left yields nothing.
pub(crate) fn annotated_name_before(code: &str, at: usize) -> Option<String> {
    let bytes = code.as_bytes();
    let mut i = at;
    while i > 0 {
        i -= 1;
        match bytes[i] as char {
            ':' => {
                let part_of_path = (i > 0 && bytes[i - 1] == b':')
                    || (i + 1 < bytes.len() && bytes[i + 1] == b':');
                if part_of_path {
                    continue;
                }
                return ident_before(code, i);
            }
            ',' | '(' | ')' | ';' | '=' | '>' | '{' | '}' | '|' => return None,
            _ => {}
        }
    }
    None
}

/// The identifier ending immediately before byte offset `at`
/// (whitespace between is tolerated).
fn ident_before(code: &str, at: usize) -> Option<String> {
    let bytes = code.as_bytes();
    let mut end = at;
    while end > 0 && (bytes[end - 1] as char).is_whitespace() {
        end -= 1;
    }
    let mut start = end;
    while start > 0 && is_ident_char(bytes[start - 1] as char) {
        start -= 1;
    }
    if start == end {
        return None;
    }
    let name = &code[start..end];
    if name.chars().next().map(|c| c.is_ascii_digit()).unwrap_or(true) {
        return None;
    }
    Some(name.to_string())
}

/// The binding name of the first `let [mut] name = …` on the line, if
/// any (the `let` may sit mid-line, e.g. inside a one-line body).
pub(crate) fn let_binding_name(code: &str) -> Option<String> {
    let at = find_boundary(code, "let ")?;
    let rest = code[at + 4..].trim_start();
    let rest = rest.strip_prefix("mut ").unwrap_or(rest).trim_start();
    let name: String = rest.chars().take_while(|&c| is_ident_char(c)).collect();
    if name.is_empty() || name == "_" {
        None
    } else {
        Some(name)
    }
}

/// Finds `needle` in `code` at a clean identifier boundary (no ident
/// char immediately before), returning the byte offset.
pub fn find_boundary(code: &str, needle: &str) -> Option<usize> {
    boundary_matches(code, needle).into_iter().next()
}

/// All boundary-clean occurrences of `needle` in `code`.
pub fn boundary_matches(code: &str, needle: &str) -> Vec<usize> {
    let mut out = Vec::new();
    let mut search_from = 0;
    while let Some(rel) = code[search_from..].find(needle) {
        let at = search_from + rel;
        search_from = at + needle.len();
        if at == 0 || !is_ident_char(code.as_bytes()[at - 1] as char) {
            out.push(at);
        }
    }
    out
}

/// Extracts ordered events from one function body.
fn extract_events(lines: &[LexedLine], item: &FnItem, locks: &BTreeSet<String>) -> Vec<Event> {
    let Some((start, end)) = item.body else { return Vec::new() };
    let mut events = Vec::new();
    for (lineno, line) in lines.iter().enumerate().take(end + 1).skip(start) {
        scan_line_events(&line.code, lineno, locks, &mut events);
    }
    events
}

/// Scans one blanked line for acquisitions, drops, and calls, pushing
/// them in left-to-right order.
fn scan_line_events(code: &str, lineno: usize, locks: &BTreeSet<String>, out: &mut Vec<Event>) {
    let bytes = code.as_bytes();
    let mut i = 0usize;
    while i < bytes.len() {
        let c = bytes[i] as char;
        if !is_ident_char(c) || (i > 0 && is_ident_char(bytes[i - 1] as char)) {
            i += 1;
            continue;
        }
        // Identifier starts at i.
        let mut j = i;
        while j < bytes.len() && is_ident_char(bytes[j] as char) {
            j += 1;
        }
        let ident = &code[i..j];
        let after = code[j..].trim_start();
        let digit_start = ident.chars().next().map(|c| c.is_ascii_digit()).unwrap_or(true);
        if digit_start {
            i = j;
            continue;
        }
        // `ident.lock()` / `.read()` / `.write()` on a declared lock.
        if locks.contains(ident) {
            for method in [".lock()", ".read()", ".write()"] {
                if after.starts_with(method) {
                    out.push(Event::Acquire {
                        lock: ident.to_string(),
                        guard: let_binding_name(code),
                        line: lineno,
                    });
                    break;
                }
            }
        }
        // `drop(name)`.
        if ident == "drop" && after.starts_with('(') {
            if let Some(arg) = after.strip_prefix('(') {
                let name: String =
                    arg.trim_start().chars().take_while(|&c| is_ident_char(c)).collect();
                if !name.is_empty() {
                    out.push(Event::Drop { name, line: lineno });
                }
            }
            i = j;
            continue;
        }
        // A bare call: `ident(` not preceded by `.` (method) or `:`
        // (path — `Type::method` reaches no free function we track;
        // qualified helper calls are rare in the scoped crates) and not
        // a macro (`ident!`) or keyword.
        let preceded_by = if i == 0 { ' ' } else { bytes[i - 1] as char };
        // `fn name(` is a declaration, not a call (the signature line
        // sits inside the brace-matched body span).
        let before = code[..i].trim_end();
        let declared = before.ends_with("fn")
            && (before.len() == 2 || !is_ident_char(before.as_bytes()[before.len() - 3] as char));
        if after.starts_with('(')
            && preceded_by != '.'
            && preceded_by != ':'
            && !KEYWORDS.contains(&ident)
            && ident != "drop"
            && !declared
        {
            out.push(Event::Call { callee: ident.to_string(), line: lineno });
        }
        i = j;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    #[test]
    fn lock_declarations_are_collected_from_fields_params_and_lets() {
        let src = "\
struct S { state: Arc<Mutex<ServerState>>, count: u64 }
fn serve(reg: &RwLock<Registry>) {}
fn init() { let queue = Arc::new(Mutex::new(Vec::new())); }
fn not_a_lock() { let mutex_like = 1; }
";
        let facts = extract(&lex(src));
        let names: Vec<_> = facts.locks.iter().map(String::as_str).collect();
        assert_eq!(names, vec!["queue", "reg", "state"], "{facts:?}");
    }

    #[test]
    fn acquisitions_record_guards_and_drops() {
        let src = "\
fn handler(state: &Mutex<ServerState>, reg: &Mutex<Registry>) {
    let mut st = state.lock().unwrap_or_else(PoisonError::into_inner);
    st.requests += 1;
    drop(st);
    reg.lock().expect_clean();
    helper(state);
}
";
        let facts = extract(&lex(src));
        assert_eq!(facts.fns.len(), 1);
        let ev = &facts.fns[0].events;
        assert_eq!(
            ev,
            &vec![
                Event::Acquire { lock: "state".into(), guard: Some("st".into()), line: 1 },
                Event::Drop { name: "st".into(), line: 3 },
                Event::Acquire { lock: "reg".into(), guard: None, line: 4 },
                Event::Call { callee: "helper".into(), line: 5 },
            ],
            "{ev:?}"
        );
    }

    #[test]
    fn method_calls_and_macros_are_not_calls() {
        let src = "\
fn f(state: &Mutex<u64>) {
    conn.flush();
    writeln!(out);
    Value::parse(x);
    real_call(y);
}
";
        let facts = extract(&lex(src));
        let calls: Vec<_> = facts.fns[0]
            .events
            .iter()
            .filter_map(|e| match e {
                Event::Call { callee, .. } => Some(callee.as_str()),
                _ => None,
            })
            .collect();
        assert_eq!(calls, vec!["real_call"], "{:?}", facts.fns[0].events);
    }
}
