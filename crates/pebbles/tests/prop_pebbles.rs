//! Property tests for the pebbling proof machinery on random
//! schedules: Theorem 2's partition construction must verify for every
//! legal pebbling the strategies can produce.

use lattice_pebbles::bounds::tau_upper_bound;
use lattice_pebbles::division::{two_s_partition, IoDivision};
use lattice_pebbles::strategies::{naive_sweep_logged, tiled_schedule_logged};
use lattice_pebbles::{LatticeGraph, PebbleGraph};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Theorem 2 end to end: any legal pebbling's move log yields a
    /// verified 2S-partition whose size equals the S-I/O-division's, and
    /// Lemma 1's bound q > S(h−1) holds by construction.
    #[test]
    fn theorem2_partition_verifies_on_random_schedules(
        d in 1usize..=2,
        r_half in 2usize..5,
        t in 1usize..5,
        s_exp in 4u32..8,
        tiled in any::<bool>(),
    ) {
        let r = r_half * 2;
        let s = 2usize.pow(s_exp);
        let graph = LatticeGraph::new(d, r, t);
        let log = if tiled {
            match tiled_schedule_logged(&graph, s, None) {
                Ok((_, log)) => log,
                Err(_) => return Ok(()), // S too small for a tile plan
            }
        } else {
            naive_sweep_logged(&graph, s.max(2 * d + 2)).unwrap().1
        };
        let s_used = if tiled { s } else { s.max(2 * d + 2) };
        let blocks = two_s_partition(&graph, &log, s_used).unwrap();
        let division = IoDivision::new(&log, s_used);
        prop_assert_eq!(blocks.len(), division.h());
        prop_assert!(division.check_trivial_bound());
        // Every non-input vertex appears in exactly one block.
        let total: usize = blocks.iter().map(|b| b.v.len()).sum();
        prop_assert_eq!(total, graph.layer_len() * graph.t());
        // Dominators and minimum sets are within 2S.
        for b in &blocks {
            prop_assert!(b.dominator.len() <= 2 * s_used);
            prop_assert!(b.minimum.len() <= 2 * s_used);
        }
    }

    /// Lemma 2 via the constructed partition: the division size h is at
    /// least |X|/(2S·τ(2S)) — the inequality chain the lower bound
    /// stands on, checked against real pebblings.
    #[test]
    fn division_size_respects_lemma2(
        d in 1usize..=2,
        r_half in 3usize..6,
        t in 2usize..6,
        s_exp in 4u32..8,
    ) {
        let r = r_half * 2;
        let s = 2usize.pow(s_exp);
        let graph = LatticeGraph::new(d, r, t);
        let Ok((_, log)) = tiled_schedule_logged(&graph, s, None) else { return Ok(()) };
        let division = IoDivision::new(&log, s);
        let tau = tau_upper_bound(d, s);
        let g_min = graph.n_vertices() as f64 / (2.0 * s as f64 * tau);
        prop_assert!(
            division.h() as f64 >= g_min.floor(),
            "h = {} < bound {g_min}",
            division.h()
        );
    }
}
