//! S-I/O-divisions and 2S-partitions — the §7 proof machinery, made
//! constructive and checkable.
//!
//! The paper's definitions:
//!
//! * an **S-I/O-division** of a pebbling `P` splits it into consecutive
//!   subsequences `P₁ … P_h`, each containing exactly `S` I/O moves
//!   (the last may have fewer). Then `Q > S·(h − 1)` trivially, and the
//!   whole lower-bound argument is about bounding `h` from below.
//! * Theorem 2's construction: "in `P`, consider every vertex that has
//!   never had a red pebble placed on it by any moves in `P_i, i < k`,
//!   and is red pebbled during `P_k`. This set of vertices is `V_k`."
//!   The dominator `D_k` is the reds at the start of `P_k` plus the
//!   vertices read during `P_k` (≤ 2S); the minimum set `M_k` is the
//!   members of `V_k` with no children in `V_k` (≤ 2S).
//!
//! [`two_s_partition`] builds `{V_k, D_k, M_k}` from a recorded move log
//! and *verifies* all the partition properties the proof uses, so
//! Theorem 2 can be checked on any actual pebbling rather than trusted.

use crate::game::Move;
use crate::graph::PebbleGraph;

/// An S-I/O-division of a move log.
#[derive(Debug, Clone)]
pub struct IoDivision {
    /// Half-open move-index ranges of the blocks `P_1 … P_h`.
    pub blocks: Vec<(usize, usize)>,
    /// The S used.
    pub s: usize,
    /// Total I/O moves.
    pub q: u64,
}

impl IoDivision {
    /// Splits `log` into consecutive blocks of exactly `s` I/O moves
    /// (the final block may have fewer).
    pub fn new(log: &[Move], s: usize) -> Self {
        assert!(s > 0);
        let mut blocks = Vec::new();
        let mut start = 0usize;
        let mut io_in_block = 0usize;
        let mut q = 0u64;
        for (i, m) in log.iter().enumerate() {
            if matches!(m, Move::Read(_) | Move::Write(_)) {
                io_in_block += 1;
                q += 1;
                if io_in_block == s {
                    blocks.push((start, i + 1));
                    start = i + 1;
                    io_in_block = 0;
                }
            }
        }
        if start < log.len() || blocks.is_empty() {
            blocks.push((start, log.len()));
        }
        IoDivision { blocks, s, q }
    }

    /// The division size `h`.
    pub fn h(&self) -> usize {
        self.blocks.len()
    }

    /// The trivial bound `q ≥ S·(h − 1)` (equality-adjacent by
    /// construction; recorded for cross-checks).
    pub fn check_trivial_bound(&self) -> bool {
        self.q >= (self.s as u64) * (self.h() as u64 - 1)
    }
}

/// One subset of a 2S-partition with its dominator and minimum sets.
#[derive(Debug, Clone)]
pub struct PartitionBlock {
    /// `V_k`: vertices first red-pebbled in this block.
    pub v: Vec<usize>,
    /// `D_k`: dominator set (reds at block start + reads in block).
    pub dominator: Vec<usize>,
    /// `M_k`: members of `V_k` with no children in `V_k`.
    pub minimum: Vec<usize>,
}

/// Errors from partition verification — any of these firing means the
/// move log was not a legal pebbling (or the construction is buggy),
/// which is exactly what this module exists to detect.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PartitionError {
    /// A computed vertex appeared in two blocks.
    DuplicateVertex(usize),
    /// A vertex's predecessor is neither in an earlier-or-same block's
    /// `V` nor in the block's dominator.
    UndominatedPath {
        /// The vertex whose support fails.
        vertex: usize,
        /// The unaccounted predecessor.
        pred: usize,
    },
    /// A dominator or minimum set exceeded 2S.
    SetTooBig {
        /// Block index.
        block: usize,
        /// Observed size.
        size: usize,
        /// The 2S cap.
        cap: usize,
    },
}

/// Builds the Theorem-2 partition from a move log and verifies every
/// property the Hong–Kung argument relies on. Returns the blocks.
pub fn two_s_partition<G: PebbleGraph>(
    graph: &G,
    log: &[Move],
    s: usize,
) -> Result<Vec<PartitionBlock>, PartitionError> {
    let n = graph.n_vertices();
    let division = IoDivision::new(log, s);
    let mut first_pebbled: Vec<Option<usize>> = vec![None; n]; // vertex -> block
    let mut blocks: Vec<PartitionBlock> = Vec::with_capacity(division.h());

    // Replay the log tracking red state. `computed` records every
    // rule-4 target of the block (including *recomputations* of
    // vertices first pebbled earlier — tiled schedules recompute their
    // skirts), which the domination check must walk through.
    let mut red = vec![false; n];
    let mut preds_buf = Vec::new();
    let mut computed_per_block: Vec<Vec<usize>> = Vec::with_capacity(division.h());
    for (k, &(lo, hi)) in division.blocks.iter().enumerate() {
        let red_at_start: Vec<usize> = (0..n).filter(|&v| red[v]).collect();
        let mut reads = Vec::new();
        let mut v_k = Vec::new();
        let mut computed = Vec::new();
        for m in &log[lo..hi] {
            match *m {
                Move::Read(v) => {
                    reads.push(v);
                    red[v] = true;
                }
                Move::Compute(v) => {
                    if first_pebbled[v].is_none() {
                        first_pebbled[v] = Some(k);
                        v_k.push(v);
                    }
                    computed.push(v);
                    red[v] = true;
                }
                Move::Slide { from, to } => {
                    if first_pebbled[to].is_none() {
                        first_pebbled[to] = Some(k);
                        v_k.push(to);
                    }
                    computed.push(to);
                    red[from] = false;
                    red[to] = true;
                }
                Move::RemoveRed(v) => red[v] = false,
                Move::Write(_) | Move::RemoveBlue(_) => {}
            }
        }
        let mut dominator = red_at_start;
        dominator.extend(reads);
        dominator.sort_unstable();
        dominator.dedup();
        computed_per_block.push(computed);
        blocks.push(PartitionBlock { v: v_k, dominator, minimum: Vec::new() });
    }

    // Verify: disjointness is by construction (first_pebbled); check
    // the dominator property and set sizes, and build minimum sets.
    // Domination walks through the block's full computed set (V_k plus
    // recomputations): every path into the block's work must enter
    // through the dominator.
    let cap = 2 * s;
    let block_of: Vec<Option<usize>> = first_pebbled.clone();
    for (k, block) in blocks.iter_mut().enumerate() {
        if block.dominator.len() > cap {
            return Err(PartitionError::SetTooBig { block: k, size: block.dominator.len(), cap });
        }
        let in_v: std::collections::HashSet<usize> = block.v.iter().copied().collect();
        let in_computed: std::collections::HashSet<usize> =
            computed_per_block[k].iter().copied().collect();
        for &v in &computed_per_block[k] {
            graph.preds(v, &mut preds_buf);
            for &p in &preds_buf {
                let dominated = block.dominator.binary_search(&p).is_ok();
                if !dominated && !in_computed.contains(&p) {
                    return Err(PartitionError::UndominatedPath { vertex: v, pred: p });
                }
            }
        }
        for &v in &block.v {
            graph.preds(v, &mut preds_buf);
            // Acyclicity across blocks: preds first pebbled in a LATER
            // block would be a cycle among the partition subsets.
            for &p in &preds_buf {
                if let Some(bp) = block_of[p] {
                    if bp > k {
                        return Err(PartitionError::UndominatedPath { vertex: v, pred: p });
                    }
                }
            }
        }
        // Minimum set: members of V_k with no children inside V_k.
        let mut has_child_in_v: std::collections::HashSet<usize> = std::collections::HashSet::new();
        for &v in &block.v {
            graph.preds(v, &mut preds_buf);
            for &p in &preds_buf {
                if in_v.contains(&p) {
                    has_child_in_v.insert(p);
                }
            }
        }
        block.minimum = block.v.iter().copied().filter(|v| !has_child_in_v.contains(v)).collect();
        if block.minimum.len() > cap {
            return Err(PartitionError::SetTooBig { block: k, size: block.minimum.len(), cap });
        }
    }
    Ok(blocks)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::game::Game;
    use crate::graph::LatticeGraph;
    use crate::strategies::{naive_sweep_logged, tiled_schedule_logged};

    #[test]
    fn division_counts_blocks() {
        let log =
            vec![Move::Read(0), Move::Compute(3), Move::Read(1), Move::Write(3), Move::Read(2)];
        let d = IoDivision::new(&log, 2);
        assert_eq!(d.h(), 2);
        assert_eq!(d.q, 4);
        assert!(d.check_trivial_bound());
        // Blocks split after the 2nd and 4th I/O moves.
        assert_eq!(d.blocks[0], (0, 3));
        assert_eq!(d.blocks[1], (3, 5));
    }

    #[test]
    fn division_of_empty_log() {
        let d = IoDivision::new(&[], 4);
        assert_eq!(d.h(), 1);
        assert_eq!(d.q, 0);
    }

    #[test]
    fn partition_of_naive_sweep_verifies() {
        let graph = LatticeGraph::new(1, 6, 3);
        let (stats, log) = naive_sweep_logged(&graph, 8).unwrap();
        let blocks = two_s_partition(&graph, &log, 8).unwrap();
        // Every non-input vertex appears exactly once.
        let total: usize = blocks.iter().map(|b| b.v.len()).sum();
        assert_eq!(total as u64, stats.n_updates);
        // Theorem 2: g = h for this division.
        let d = IoDivision::new(&log, 8);
        assert_eq!(blocks.len(), d.h());
        for (k, b) in blocks.iter().enumerate() {
            assert!(b.dominator.len() <= 16, "block {k}");
            assert!(b.minimum.len() <= 16, "block {k}");
            assert!(b.minimum.len() <= b.v.len().max(1));
        }
    }

    #[test]
    fn partition_of_tiled_schedule_verifies() {
        let graph = LatticeGraph::new(2, 8, 4);
        let s = 64;
        let (_, log) = tiled_schedule_logged(&graph, s, None).unwrap();
        let blocks = two_s_partition(&graph, &log, s).unwrap();
        let d = IoDivision::new(&log, s);
        assert_eq!(blocks.len(), d.h());
        // Lemma 2's inequality: h ≥ |X|/(2S·τ(2S)).
        let tau = crate::bounds::tau_upper_bound(2, s);
        let g_bound = graph.n_vertices() as f64 / (2.0 * s as f64 * tau);
        assert!(blocks.len() as f64 >= g_bound.floor());
    }

    #[test]
    fn partition_rejects_corrupted_log() {
        // A log that "computes" a vertex whose predecessor was never
        // pebbled in-block or dominated: inject by hand.
        let graph = LatticeGraph::new(1, 3, 1);
        let log = vec![Move::Compute(4)]; // preds {0,1,2} never red
        let err = two_s_partition(&graph, &log, 2).unwrap_err();
        assert!(matches!(err, PartitionError::UndominatedPath { vertex: 4, .. }));
    }

    #[test]
    fn logged_game_records_moves() {
        let graph = LatticeGraph::new(1, 3, 1);
        let mut game = Game::new(&graph, 6);
        game.enable_log();
        game.apply(Move::Read(0)).unwrap();
        game.apply(Move::Read(1)).unwrap();
        assert_eq!(game.log().unwrap().len(), 2);
        // Rejected moves are not logged.
        assert!(game.apply(Move::Compute(0)).is_err());
        assert_eq!(game.log().unwrap().len(), 2);
    }
}
