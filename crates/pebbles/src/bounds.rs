//! Analytic bounds — §7's Theorems 2–4, Lemmas 1, 2, 8.
//!
//! The chain of results:
//!
//! * **Lemma 1** (Hong–Kung): `Q > S·(g − 1)` where `g` is the minimum
//!   size of a 2S-partition.
//! * **Lemma 2**: `g ≥ |X*| / (2S·τ(2S))` where `τ` is the line-time and
//!   `|X*|` the number of on-line vertices (all of them, for `C_d`).
//! * **Lemma 8**: the line-spread of `C_d` satisfies `T_d(j) > j^d/d!`
//!   (number of lattice points in the j-simplex).
//! * **Theorem 4**: `τ(2S) < 2·(d!·2S)^{1/d}`.
//! * Combining: `Q = Ω(|X|/τ(2S))`, and with memory bandwidth `B`
//!   (site values per tick) and update rate `R = |X|/p`:
//!   **`R = O(B·τ(2S)) = O(B·S^{1/d})`** — the headline result.

/// Factorial as f64 (d ≤ 20 is ample; `C_d` uses d ≤ 4).
pub fn factorial(d: usize) -> f64 {
    (1..=d).map(|i| i as f64).product()
}

/// Theorem 4's line-time bound: `τ(2S) < 2·(d!·2S)^{1/d}`.
///
/// `s` is the processor storage S in site values.
pub fn tau_upper_bound(d: usize, s: usize) -> f64 {
    assert!(d >= 1);
    2.0 * (factorial(d) * 2.0 * s as f64).powf(1.0 / d as f64)
}

/// The I/O lower bound implied by Lemmas 1–2 and Theorem 4:
/// `Q ≥ S·(⌈|X|/(2S·τ(2S))⌉ − 1)`, in site values.
///
/// Returns 0 when the partition bound `g` is ≤ 1 (small graphs).
pub fn io_lower_bound(n_vertices: u64, d: usize, s: usize) -> f64 {
    if s == 0 {
        return f64::INFINITY;
    }
    let tau = tau_upper_bound(d, s);
    let g = (n_vertices as f64 / (2.0 * s as f64 * tau)).ceil();
    (s as f64 * (g - 1.0)).max(0.0)
}

/// The rate upper bound `R ≤ B·τ(2S)` (site updates per tick when `B`
/// is in site values per tick): the executable form of
/// `R = O(B·S^{1/d})`.
pub fn rate_upper_bound(bandwidth_sites_per_tick: f64, d: usize, s: usize) -> f64 {
    bandwidth_sites_per_tick * tau_upper_bound(d, s)
}

/// Empirical line-spread `t_G(u, j)` of the §7 lattice `G` measured from
/// the *origin* (the minimizing vertex for the orthant lattice): the
/// number of lattice points reachable in at most `j` steps — i.e. the
/// number of lines covered by paths of length ≤ `j` in `C_d` (Lemmas
/// 5–7 reduce line counting to lattice reachability).
///
/// `r` is the lattice side; counts points of `{x : Σxᵢ ≤ j, 0 ≤ xᵢ < r}`.
pub fn line_spread(d: usize, r: usize, j: usize) -> u64 {
    // Dynamic programming over dimensions: ways to reach coordinate sums.
    // count[s] = number of points with coordinate sum exactly s.
    let mut count = vec![0u64; j + 1];
    count[0] = 1;
    for _ in 0..d {
        let mut next = vec![0u64; j + 1];
        for (s, &c) in count.iter().enumerate() {
            if c == 0 {
                continue;
            }
            for x in 0..r.min(j - s + 1) {
                next[s + x] += c;
            }
        }
        count = next;
    }
    count.iter().sum()
}

/// Lemma 8's lower bound on the line-spread: `j^d / d!`.
pub fn line_spread_lower_bound(d: usize, j: usize) -> f64 {
    (j as f64).powi(d as i32) / factorial(d)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn factorials() {
        assert_eq!(factorial(0), 1.0);
        assert_eq!(factorial(1), 1.0);
        assert_eq!(factorial(3), 6.0);
        assert_eq!(factorial(5), 120.0);
    }

    #[test]
    fn tau_bound_values() {
        // d = 1: τ(2S) < 2·(2S) = 4S/... precisely 2·(1!·2S)^1 = 4S.
        assert!((tau_upper_bound(1, 8) - 32.0).abs() < 1e-9);
        // d = 2: 2·(2·2S)^(1/2) = 2·sqrt(4S)... = 2·(2·2·16)^0.5 = 16.
        assert!((tau_upper_bound(2, 16) - 16.0).abs() < 1e-9);
        // d = 3: 2·(6·2S)^(1/3) with S = 18 → 2·(216)^(1/3) = 12.
        assert!((tau_upper_bound(3, 18) - 12.0).abs() < 1e-9);
    }

    #[test]
    fn tau_grows_sublinearly_in_s() {
        // Doubling S multiplies τ by 2^(1/d).
        for d in 1..=3 {
            let a = tau_upper_bound(d, 64);
            let b = tau_upper_bound(d, 128);
            assert!((b / a - 2f64.powf(1.0 / d as f64)).abs() < 1e-9, "d={d}");
        }
    }

    #[test]
    fn io_lower_bound_behavior() {
        // Large graph, small S: positive bound that shrinks as S grows.
        let n = 1_000_000u64;
        let q8 = io_lower_bound(n, 2, 8);
        let q64 = io_lower_bound(n, 2, 64);
        assert!(q8 > 0.0 && q64 > 0.0);
        // I/O per vertex falls like S^{1/d}/S ∼ S^{-1/2} for d = 2.
        assert!(q8 / n as f64 > q64 / n as f64);
        // Tiny graph: bound degenerates to 0, never negative.
        assert_eq!(io_lower_bound(10, 2, 64), 0.0);
        assert!(io_lower_bound(10, 2, 0).is_infinite());
    }

    #[test]
    fn rate_bound_scales_like_s_to_1_over_d() {
        let b = 1.0;
        for d in 1..=3usize {
            let r1 = rate_upper_bound(b, d, 100);
            let r2 = rate_upper_bound(b, d, 100 * 1024);
            let measured_exponent = (r2 / r1).ln() / 1024f64.ln();
            assert!(
                (measured_exponent - 1.0 / d as f64).abs() < 1e-9,
                "d={d}: exponent {measured_exponent}"
            );
        }
    }

    #[test]
    fn line_spread_hand_values() {
        // d = 1: points with x ≤ j → j+1 (capped at r).
        assert_eq!(line_spread(1, 100, 5), 6);
        assert_eq!(line_spread(1, 4, 10), 4);
        // d = 2, j = 2, large r: {(0,0),(0,1),(1,0),(0,2),(1,1),(2,0)} = 6.
        assert_eq!(line_spread(2, 100, 2), 6);
        // d = 3, j = 1: origin + 3 unit points.
        assert_eq!(line_spread(3, 100, 1), 4);
    }

    #[test]
    fn line_spread_respects_lemma_8() {
        // T_d(j) > j^d/d! for all tested d, j (with r large enough that
        // the simplex is untruncated).
        for d in 1..=3usize {
            for j in 1..=20usize {
                let t = line_spread(d, 64, j) as f64;
                let lb = line_spread_lower_bound(d, j);
                assert!(t > lb, "d={d}, j={j}: {t} <= {lb}");
            }
        }
    }

    #[test]
    fn line_spread_truncated_by_lattice() {
        // Small lattice: spread saturates at r^d.
        assert_eq!(line_spread(2, 3, 100), 9);
        assert_eq!(line_spread(3, 2, 100), 8);
    }
}
