//! Parallel-machine schedules: driving the parallel-red-blue game over
//! `C_d`, with a bandwidth-limited channel per cycle.
//!
//! §7 applies the parallel game "to a machine model which has the same
//! features as a CRCW PRAM, but has a limited communication bandwidth":
//! per machine cycle the channel moves at most `β` site values. This
//! module schedules whole-layer sweeps and tiled sweeps on that model
//! and reports cycles, realized rate `R = updates/cycle`, and the bound
//! check `R ≤ β·τ(2S)/…` — the concrete accounting behind the
//! `Bp ≥ Q` step of the Theorem 4 argument.

use crate::bounds::tau_upper_bound;
use crate::game::GameError;
use crate::graph::LatticeGraph;
use crate::parallel::ParallelGame;

/// Result of a parallel-machine schedule.
#[derive(Debug, Clone, Copy)]
pub struct ParallelRun {
    /// Machine cycles consumed.
    pub cycles: u64,
    /// Total I/O moves.
    pub io_moves: u64,
    /// Site updates performed.
    pub updates: u64,
    /// Channel bandwidth (site values per cycle) the schedule obeyed.
    pub beta: usize,
    /// Peak register usage.
    pub max_red_used: usize,
}

impl ParallelRun {
    /// Realized updates per cycle.
    pub fn rate(&self) -> f64 {
        self.updates as f64 / self.cycles as f64
    }
}

/// Layer-sweep schedule on the parallel game: keep two full layers in
/// registers, compute each next layer in one calculate phase, and pump
/// reads/writes through a `β`-wide channel. Requires
/// `S ≥ 2·r^d + β` registers.
///
/// I/O totals only the unavoidable `r^d` reads + `r^d` writes, but the
/// cycle count is inflated by the channel: `⌈r^d/β⌉` cycles to load and
/// `⌈r^d/β⌉` to drain — bandwidth bounds wall-clock even when I/O
/// volume is optimal.
pub fn parallel_layer_sweep(
    graph: &LatticeGraph,
    s: usize,
    beta: usize,
) -> Result<ParallelRun, GameError> {
    assert!(beta >= 1);
    let layer = graph.layer_len();
    let mut game = ParallelGame::new(graph, s);

    // Load layer 0, β sites per cycle.
    let inputs: Vec<usize> = (0..layer).collect();
    for chunk in inputs.chunks(beta) {
        game.cycle(&[], &[], &[], chunk)?;
    }
    // One calculate cycle per layer, releasing the grandparent layer.
    for t in 1..=graph.t() {
        let cur: Vec<usize> = (0..layer).map(|i| graph.vertex(i, t)).collect();
        let prev: Vec<usize> = (0..layer).map(|i| graph.vertex(i, t - 1)).collect();
        game.cycle(&[], &cur, &prev, &[])?;
    }
    // Drain the output layer, β per cycle.
    let outputs: Vec<usize> = (0..layer).map(|i| graph.vertex(i, graph.t())).collect();
    for chunk in outputs.chunks(beta) {
        game.cycle(chunk, &[], &[], &[])?;
    }
    debug_assert!(game.is_complete());
    Ok(ParallelRun {
        cycles: game.cycles(),
        io_moves: game.io_moves(),
        updates: (layer * graph.t()) as u64,
        beta,
        max_red_used: game.max_red_used(),
    })
}

/// The §7 rate bound specialized to a parallel machine: the realized
/// rate can never exceed `β·τ(2S)` updates per cycle.
pub fn parallel_rate_bound(d: usize, s: usize, beta: usize) -> f64 {
    beta as f64 * tau_upper_bound(d, s)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn layer_sweep_completes_with_minimal_io() {
        let g = LatticeGraph::new(1, 16, 8);
        let run = parallel_layer_sweep(&g, 2 * 16 + 4, 4).unwrap();
        assert_eq!(run.io_moves, 32); // 16 in + 16 out
                                      // Cycles: 4 load + 8 compute + 4 drain.
        assert_eq!(run.cycles, 16);
        assert_eq!(run.updates, 128);
        assert!(run.max_red_used <= 2 * 16 + 4);
    }

    #[test]
    fn narrow_channel_inflates_cycles_not_io() {
        let g = LatticeGraph::new(1, 32, 8);
        let wide = parallel_layer_sweep(&g, 80, 32).unwrap();
        let narrow = parallel_layer_sweep(&g, 80, 2).unwrap();
        assert_eq!(wide.io_moves, narrow.io_moves);
        assert!(narrow.cycles > 3 * wide.cycles);
        assert!(narrow.rate() < wide.rate());
    }

    #[test]
    fn rate_respects_parallel_bound() {
        for (d, r, t) in [(1usize, 32usize, 16usize), (2, 8, 4)] {
            let g = LatticeGraph::new(d, r, t);
            let s = 2 * g.layer_len() + 8;
            for beta in [1usize, 4, 16] {
                let run = parallel_layer_sweep(&g, s, beta).unwrap();
                let bound = parallel_rate_bound(d, s, beta);
                assert!(
                    run.rate() <= bound,
                    "d={d} beta={beta}: rate {} > bound {bound}",
                    run.rate()
                );
            }
        }
    }

    #[test]
    fn undersized_registers_fail_loudly() {
        let g = LatticeGraph::new(1, 16, 4);
        assert!(matches!(parallel_layer_sweep(&g, 15, 4), Err(GameError::CapacityExceeded { .. })));
    }
}
