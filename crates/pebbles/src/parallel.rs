//! The parallel-red-blue pebble game — the paper's §7 extension.
//!
//! "The game consists of cyclic repetition of three phases: write phase,
//! calculate phase, read phase." (Definition, §7.) The calculate phase
//! uses place-holder (pink) pebbles so one red input can fan out to many
//! simultaneous calculations and a result may overwrite a register used
//! as an input; we realize the same semantics by validating every
//! calculation against the red set *at the start of the phase* and
//! applying all results (plus any register releases) at once.
//!
//! Each cycle models one machine step of a CRCW-PRAM-like processor
//! array with `S` registers and a bandwidth-limited channel; the I/O
//! count per cycle is `|writes| + |reads|`, so a machine of channel
//! bandwidth `B` site-values/tick needs `≥ q/B` cycles — exactly the
//! `R·p ≤ B·p·τ(2S)` accounting behind Theorem 4's application.

use crate::game::{BitSet, GameError};
use crate::graph::PebbleGraph;

/// A parallel-red-blue game in progress.
pub struct ParallelGame<'g, G: PebbleGraph> {
    graph: &'g G,
    s: usize,
    red: BitSet,
    blue: BitSet,
    io_moves: u64,
    cycles: u64,
    computations: u64,
    max_red_used: usize,
}

impl<'g, G: PebbleGraph> ParallelGame<'g, G> {
    /// Starts a game with `s` registers: inputs blue, no reds.
    pub fn new(graph: &'g G, s: usize) -> Self {
        let n = graph.n_vertices();
        let mut blue = BitSet::new(n);
        for v in graph.inputs() {
            blue.insert(v);
        }
        ParallelGame {
            graph,
            s,
            red: BitSet::new(n),
            blue,
            io_moves: 0,
            cycles: 0,
            computations: 0,
            max_red_used: 0,
        }
    }

    /// Total I/O moves so far.
    pub fn io_moves(&self) -> u64 {
        self.io_moves
    }

    /// Cycles executed.
    pub fn cycles(&self) -> u64 {
        self.cycles
    }

    /// Calculations performed.
    pub fn computations(&self) -> u64 {
        self.computations
    }

    /// Peak register usage.
    pub fn max_red_used(&self) -> usize {
        self.max_red_used
    }

    /// Whether `v` currently holds a red pebble.
    pub fn is_red(&self, v: usize) -> bool {
        self.red.contains(v)
    }

    /// True when every output is blue.
    pub fn is_complete(&self) -> bool {
        self.graph.outputs().iter().all(|&v| self.blue.contains(v))
    }

    /// Executes one write/calculate/read cycle.
    ///
    /// * `writes` — vertices written to main memory; must be red at the
    ///   start of the cycle.
    /// * `computes` — vertices calculated; predecessors must be red at
    ///   the start of the calculate phase (fan-out is free).
    /// * `releases` — registers freed simultaneously with the
    ///   calculations (the pink-pebble overwrite: a register may be both
    ///   a support and a release in the same phase).
    /// * `reads` — vertices fetched from main memory (must be blue).
    ///
    /// Register capacity `S` is enforced at the end of the calculate
    /// phase and at the end of the read phase.
    pub fn cycle(
        &mut self,
        writes: &[usize],
        computes: &[usize],
        releases: &[usize],
        reads: &[usize],
    ) -> Result<(), GameError> {
        let n = self.graph.n_vertices();
        for &v in writes.iter().chain(computes).chain(releases).chain(reads) {
            if v >= n {
                return Err(GameError::BadVertex(v));
            }
        }
        // Write phase: sources must already be red (a datum calculated
        // this cycle cannot also be written this cycle — §7: "a node
        // must contain a red pebble before a blue pebble may be placed
        // on it, and that red pebble must have been placed in a
        // previous C_i").
        for &v in writes {
            if !self.red.contains(v) {
                return Err(GameError::NotRed(v));
            }
        }
        // Calculate phase: validate against the phase-start red set.
        for &v in computes {
            if self.graph.is_input(v) {
                return Err(GameError::ComputeInput(v));
            }
            let mut preds = Vec::new();
            self.graph.preds(v, &mut preds);
            if let Some(&missing) = preds.iter().find(|&&p| !self.red.contains(p)) {
                return Err(GameError::PredNotRed { vertex: v, missing });
            }
        }
        // Apply writes.
        for &v in writes {
            self.blue.insert(v);
        }
        self.io_moves += writes.len() as u64;
        // Apply releases and calculations atomically.
        for &v in releases {
            if !self.red.remove(v) {
                return Err(GameError::NothingToRemove(v));
            }
        }
        for &v in computes {
            self.red.insert(v);
            self.computations += 1;
        }
        if self.red.len() > self.s {
            return Err(GameError::CapacityExceeded { s: self.s });
        }
        self.max_red_used = self.max_red_used.max(self.red.len());
        // Read phase.
        for &v in reads {
            if !self.blue.contains(v) {
                return Err(GameError::NotBlue(v));
            }
            self.red.insert(v);
        }
        self.io_moves += reads.len() as u64;
        if self.red.len() > self.s {
            return Err(GameError::CapacityExceeded { s: self.s });
        }
        self.max_red_used = self.max_red_used.max(self.red.len());
        self.cycles += 1;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::ExplicitDag;

    /// Fan-out graph: v0 feeds v1, v2, v3 (vertex 0 is the only input).
    fn fan_out() -> ExplicitDag {
        ExplicitDag::new(vec![vec![], vec![0], vec![0], vec![0]], vec![1, 2, 3]).unwrap()
    }

    #[test]
    fn fan_out_in_one_calculate_phase() {
        let g = fan_out();
        let mut game = ParallelGame::new(&g, 4);
        game.cycle(&[], &[], &[], &[0]).unwrap();
        // All three dependents computed simultaneously from one register.
        game.cycle(&[], &[1, 2, 3], &[0], &[]).unwrap();
        game.cycle(&[1, 2, 3], &[], &[], &[]).unwrap();
        assert!(game.is_complete());
        assert_eq!(game.io_moves(), 4);
        assert_eq!(game.cycles(), 3);
        assert_eq!(game.computations(), 3);
    }

    #[test]
    fn overwrite_register_in_place() {
        // With S = 1: read v0, then compute v1 while releasing v0 in the
        // same phase (the pink-pebble overwrite), then write.
        let g = ExplicitDag::new(vec![vec![], vec![0]], vec![1]).unwrap();
        let mut game = ParallelGame::new(&g, 1);
        game.cycle(&[], &[], &[], &[0]).unwrap();
        game.cycle(&[], &[1], &[0], &[]).unwrap();
        game.cycle(&[1], &[], &[], &[]).unwrap();
        assert!(game.is_complete());
        assert_eq!(game.max_red_used(), 1);
    }

    #[test]
    fn same_cycle_compute_then_write_is_rejected() {
        let g = ExplicitDag::new(vec![vec![], vec![0]], vec![1]).unwrap();
        let mut game = ParallelGame::new(&g, 2);
        game.cycle(&[], &[], &[], &[0]).unwrap();
        // v1 is computed this cycle; writing it this cycle violates the
        // phase ordering (writes precede calculations).
        assert_eq!(game.cycle(&[1], &[1], &[], &[]), Err(GameError::NotRed(1)));
    }

    #[test]
    fn capacity_checked_per_phase() {
        let g = fan_out();
        let mut game = ParallelGame::new(&g, 2);
        game.cycle(&[], &[], &[], &[0]).unwrap();
        // 3 computes + kept input = 4 > 2.
        assert_eq!(
            game.cycle(&[], &[1, 2, 3], &[], &[]),
            Err(GameError::CapacityExceeded { s: 2 })
        );
    }

    #[test]
    fn calculations_validate_against_phase_start() {
        // v2 depends on v1 which is computed in the same cycle: illegal.
        let g = ExplicitDag::new(vec![vec![], vec![0], vec![1]], vec![2]).unwrap();
        let mut game = ParallelGame::new(&g, 4);
        game.cycle(&[], &[], &[], &[0]).unwrap();
        assert!(matches!(
            game.cycle(&[], &[1, 2], &[], &[]),
            Err(GameError::PredNotRed { vertex: 2, missing: 1 })
        ));
    }

    #[test]
    fn reads_require_blue_and_writes_require_red() {
        let g = fan_out();
        let mut game = ParallelGame::new(&g, 4);
        assert_eq!(game.cycle(&[], &[], &[], &[1]), Err(GameError::NotBlue(1)));
        assert_eq!(game.cycle(&[0], &[], &[], &[]), Err(GameError::NotRed(0)));
        assert_eq!(game.cycle(&[], &[], &[0], &[]), Err(GameError::NothingToRemove(0)));
        assert_eq!(game.cycle(&[], &[], &[], &[9]), Err(GameError::BadVertex(9)));
    }

    #[test]
    fn parallel_matches_sequential_io_on_chain() {
        // On a chain there is no parallelism to exploit; I/O equals the
        // sequential game's: read input, write output.
        let g = ExplicitDag::new(vec![vec![], vec![0], vec![1], vec![2]], vec![3]).unwrap();
        let mut game = ParallelGame::new(&g, 2);
        game.cycle(&[], &[], &[], &[0]).unwrap();
        game.cycle(&[], &[1], &[0], &[]).unwrap();
        game.cycle(&[], &[2], &[1], &[]).unwrap();
        game.cycle(&[], &[3], &[2], &[]).unwrap();
        game.cycle(&[3], &[], &[], &[]).unwrap();
        assert!(game.is_complete());
        assert_eq!(game.io_moves(), 2);
    }
}
