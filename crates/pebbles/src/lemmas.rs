//! §7's structural lemmas about `C_d`, executable.
//!
//! The Theorem 4 proof rests on a chain of path lemmas (3–7) about the
//! layered computation graph. This module implements the graph-theoretic
//! predicates directly so the lemmas can be *checked* on concrete
//! graphs rather than trusted:
//!
//! * **Lemma 3** — "every (u,v)-path p has length d(u,v)": in a layered
//!   graph all paths between two vertices have the same length, the
//!   layer difference.
//! * **Lemma 4** — every vertex at half the distance between same-line
//!   `u, v` lies on some (u,v)-path.
//! * **Lemma 7** — `(z, t+j)` is reachable from `(x, t)` in `C_d` in `j`
//!   steps iff `z` is reachable from `x` in at most `j` steps in the
//!   lattice `G`.
//!
//! (Lemmas 5, 6 are counting corollaries of these; Lemma 8's
//! line-spread bound lives in [`crate::bounds`].)

use crate::graph::LatticeGraph;
use std::collections::VecDeque;

/// Directed distances (in arcs, following layer order) from `u` to
/// every vertex of `C_d`; `None` = unreachable.
pub fn distances_from(g: &LatticeGraph, u: usize) -> Vec<Option<usize>> {
    let n = (g.t() + 1) * g.layer_len();
    let mut dist = vec![None; n];
    dist[u] = Some(0);
    let mut q = VecDeque::from([u]);
    let mut nb = Vec::new();
    while let Some(v) = q.pop_front() {
        let d = dist[v].expect("queued vertices have distances");
        let (site, layer) = g.site_layer(v);
        if layer == g.t() {
            continue;
        }
        g.neighborhood(site, &mut nb);
        for &s in &nb {
            let w = g.vertex(s, layer + 1);
            if dist[w].is_none() {
                dist[w] = Some(d + 1);
                q.push_back(w);
            }
        }
    }
    dist
}

/// Lemma 3: every vertex reachable from `u` has distance exactly its
/// layer difference (all paths in a layered graph share one length).
pub fn lemma3_holds(g: &LatticeGraph, u: usize) -> bool {
    let (_, lu) = g.site_layer(u);
    distances_from(g, u).iter().enumerate().all(|(v, d)| match d {
        None => true,
        Some(d) => {
            let (_, lv) = g.site_layer(v);
            *d == lv - lu
        }
    })
}

/// Lemma 4: for same-line vertices `u = (x, t)` and `v = (x, t + D)`,
/// every vertex `w` with `d(u, w) = ⌊D/2⌋` lies on some (u,v)-path —
/// equivalently `d(u,w) + d(w,v) = d(u,v)`.
pub fn lemma4_holds(g: &LatticeGraph, site: usize, t: usize, span: usize) -> bool {
    assert!(t + span <= g.t(), "v must be inside the graph");
    let u = g.vertex(site, t);
    let v = g.vertex(site, t + span);
    let du = distances_from(g, u);
    let half = span / 2;
    let duv = match du[v] {
        Some(d) => d,
        None => return false,
    };
    (0..(g.t() + 1) * g.layer_len()).filter(|&w| du[w] == Some(half)).all(|w| match distances_from(
        g, w,
    )[v]
    {
        Some(dwv) => half + dwv == duv,
        None => false,
    })
}

/// Lattice-side BFS: sites of `G` reachable from `x` within `j` steps.
pub fn lattice_reachable(g: &LatticeGraph, x: usize, j: usize) -> Vec<bool> {
    let n = g.layer_len();
    let mut dist = vec![usize::MAX; n];
    dist[x] = 0;
    let mut q = VecDeque::from([x]);
    let mut nb = Vec::new();
    while let Some(s) = q.pop_front() {
        if dist[s] == j {
            continue;
        }
        g.neighborhood(s, &mut nb);
        for &t in &nb {
            if dist[t] == usize::MAX {
                dist[t] = dist[s] + 1;
                q.push_back(t);
            }
        }
    }
    dist.into_iter().map(|d| d <= j).collect()
}

/// Lemma 7: `(z, t + j)` reachable from `(x, t)` in `C_d` ⟺ `z`
/// reachable from `x` in ≤ `j` lattice steps (forward direction needs
/// `t + j ≤ T`). Checks both directions for all `z` at one `j`.
pub fn lemma7_holds(g: &LatticeGraph, x: usize, t: usize, j: usize) -> bool {
    if t + j > g.t() {
        return true; // out of the graph's time range; lemma vacuous
    }
    let du = distances_from(g, g.vertex(x, t));
    let reach = lattice_reachable(g, x, j);
    (0..g.layer_len()).all(|z| {
        let in_cd = du[g.vertex(z, t + j)] == Some(j);
        in_cd == reach[z]
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lemma3_on_small_graphs() {
        for (d, r, t) in [(1usize, 5usize, 4usize), (2, 4, 3), (3, 3, 2)] {
            let g = LatticeGraph::new(d, r, t);
            for u in [0usize, g.layer_len() / 2, g.vertex(0, 1)] {
                assert!(lemma3_holds(&g, u), "d={d} u={u}");
            }
        }
    }

    #[test]
    fn lemma3_on_torus_graphs() {
        let g = LatticeGraph::new_periodic(2, 4, 3);
        assert!(lemma3_holds(&g, 0));
        assert!(lemma3_holds(&g, 5));
    }

    #[test]
    fn lemma4_midpoints_lie_on_paths() {
        for (d, r, t) in [(1usize, 7usize, 6usize), (2, 5, 4)] {
            let g = LatticeGraph::new(d, r, t);
            let center = g.layer_len() / 2;
            for span in 2..=4usize {
                assert!(lemma4_holds(&g, center, 0, span), "d={d} span={span}");
                // Odd spans exercise the ⌊·⌋ in the lemma statement.
                if span < g.t() {
                    assert!(lemma4_holds(&g, center, 1, span.min(g.t() - 1)));
                }
            }
        }
    }

    #[test]
    fn lemma7_reachability_correspondence() {
        for (d, r, t) in [(1usize, 8usize, 6usize), (2, 5, 4), (3, 3, 2)] {
            let g = LatticeGraph::new(d, r, t);
            for x in [0usize, g.layer_len() - 1, g.layer_len() / 2] {
                for j in 0..=g.t() {
                    assert!(lemma7_holds(&g, x, 0, j), "d={d} x={x} j={j}");
                }
            }
        }
    }

    #[test]
    fn distances_track_light_cone() {
        // From a corner of a 1-D lattice, the reachable set at layer j
        // is exactly the first j+1 sites: the lattice light cone.
        let g = LatticeGraph::new(1, 10, 5);
        let du = distances_from(&g, 0);
        for j in 0..=5usize {
            for z in 0..10usize {
                let expect = z <= j;
                assert_eq!(du[g.vertex(z, j)] == Some(j), expect, "j={j} z={z}");
            }
        }
    }

    #[test]
    fn line_spread_consistency_with_lemma_6() {
        // Lemma 6: #lines covered by ≤j-paths = #vertices reachable in
        // exactly j steps = the bounds module's line_spread count
        // (measured from the corner = the minimizing vertex).
        use crate::bounds::line_spread;
        for (d, r) in [(1usize, 9usize), (2, 5), (3, 4)] {
            let t = 3;
            let g = LatticeGraph::new(d, r, t);
            let du = distances_from(&g, 0);
            for j in 0..=t {
                let reached =
                    (0..g.layer_len()).filter(|&z| du[g.vertex(z, j)] == Some(j)).count() as u64;
                assert_eq!(reached, line_spread(d, r, j), "d={d} j={j}");
            }
        }
    }
}
