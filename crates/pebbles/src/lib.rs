//! # lattice-pebbles
//!
//! The paper's §7: I/O lower bounds for lattice computations via pebble
//! games, made executable.
//!
//! * [`graph`] — layered computation graphs `C_d` of a d-dimensional
//!   LGCA (one layer per generation, arcs from each site's neighborhood
//!   at time `t` to the site at `t + 1`), plus explicit DAGs for small
//!   cases.
//! * [`game`] — the Hong–Kung red-blue pebble game (ref \[5\]): red =
//!   processor memory (at most `S` pebbles), blue = main memory; rules
//!   (1)–(4) enforced move by move, I/O moves counted.
//! * [`parallel`] — the paper's *parallel-red-blue* extension: cyclic
//!   write / calculate / read phases with place-holder (pink) pebbles,
//!   modeling a CRCW-PRAM-style machine with bounded memory bandwidth.
//! * [`strategies`] — executable pebbling schedules: a naïve
//!   site-at-a-time sweep (`Θ(1)` I/O per update, independent of `S`)
//!   and the space-time *tiled* schedule that achieves
//!   `O(1/S^{1/d})` I/O per update, matching the paper's upper bound
//!   `R = O(B·S^{1/d})` up to constants.
//! * [`bounds`] — the analytic side: line-time bound
//!   `τ(2S) < 2(d!·2S)^{1/d}` (Theorem 4), the induced I/O lower bound
//!   `Q ≥ S·(⌈|X|/(2S·τ(2S))⌉ − 1)` (Lemma 1 + Lemma 2), the rate bound
//!   `R = O(B·τ(2S))`, and an empirical line-spread calculator verifying
//!   Lemma 8 (`T_d(j) > j^d/d!`).
//! * [`optimal`] — exact minimum-I/O pebbling for tiny graphs by 0-1
//!   BFS over game states (the paper's closing "further research" goal:
//!   "discover an optimal pebbling for any problem in this class").
//!
//! I/O is measured in units of one site value throughout, exactly as in
//! the paper ("memory and I/O are measured in units of storage required
//! to store a single site value").

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bounds;
pub mod division;
pub mod game;
pub mod graph;
pub mod lemmas;
pub mod optimal;
pub mod parallel;
pub mod schedule;
pub mod strategies;

pub use bounds::{io_lower_bound, line_spread, rate_upper_bound, tau_upper_bound};
pub use game::{Game, GameError, Move};
pub use graph::{ExplicitDag, LatticeGraph, PebbleGraph};
pub use optimal::{min_io_exact, min_io_exact_with_plan};
pub use parallel::ParallelGame;
pub use schedule::{parallel_layer_sweep, parallel_rate_bound, ParallelRun};
pub use strategies::{naive_sweep, tiled_schedule, TilePlan};
