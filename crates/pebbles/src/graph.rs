//! Computation graphs for pebbling.
//!
//! §7: "We form the computation graph of the LGCA by identifying the
//! vertices in each layer of the computation graph with the vertices in
//! the lattice G. … C is a layered graph of T + 1 layers." The lattice
//! `G` is the d-dimensional orthogonal grid with nearest-neighbor edges
//! (§7 assumption 1 — minimum connectivity); boundary vertices appear in
//! `C` with truncated neighborhoods (assumption 2).

use lattice_core::Shape;

/// A directed acyclic graph playable by the pebble games.
///
/// Vertices are `0..n_vertices()`; predecessor lists are produced on the
/// fly so lattice graphs need no adjacency storage.
pub trait PebbleGraph {
    /// Number of vertices.
    fn n_vertices(&self) -> usize;

    /// Pushes the immediate predecessors of `v` into `out` (cleared
    /// first).
    fn preds(&self, v: usize, out: &mut Vec<usize>);

    /// True if `v` is an input (no predecessors).
    fn is_input(&self, v: usize) -> bool {
        let mut tmp = Vec::new();
        self.preds(v, &mut tmp);
        tmp.is_empty()
    }

    /// The output vertices (those that must end blue).
    fn outputs(&self) -> Vec<usize>;

    /// The input vertices (blue at the start).
    fn inputs(&self) -> Vec<usize> {
        (0..self.n_vertices()).filter(|&v| self.is_input(v)).collect()
    }
}

/// The layered computation graph `C_d` of a d-dimensional LGCA on an
/// `r^d` lattice evolved for `T` generations: `(T+1)·r^d` vertices.
///
/// Vertex `(x, t)` has id `t·r^d + linear(x)`; its predecessors are
/// `N(x) = {x} ∪ {orthogonal neighbors of x}` at layer `t − 1`,
/// truncated at the lattice boundary.
#[derive(Debug, Clone)]
pub struct LatticeGraph {
    shape: Shape,
    t_layers: usize,
    periodic: bool,
}

impl LatticeGraph {
    /// Creates `C_d` for a `d`-dimensional side-`r` lattice over `t`
    /// generations (so `t + 1` layers), with truncated (null-boundary)
    /// neighborhoods — §7 assumption 2's default.
    ///
    /// # Panics
    /// Panics if `d` is 0 or exceeds `lattice_core::MAX_DIMS`.
    pub fn new(d: usize, r: usize, t: usize) -> Self {
        let shape = Shape::cube(d, r).expect("valid lattice dimensions");
        LatticeGraph { shape, t_layers: t, periodic: false }
    }

    /// The toroidally-connected variant (§7 assumption 2's last case):
    /// every site has the full `2d + 1` von Neumann neighborhood, wrapped.
    pub fn new_periodic(d: usize, r: usize, t: usize) -> Self {
        let shape = Shape::cube(d, r).expect("valid lattice dimensions");
        LatticeGraph { shape, t_layers: t, periodic: true }
    }

    /// Whether the lattice wraps toroidally.
    pub fn is_periodic(&self) -> bool {
        self.periodic
    }

    /// The lattice dimension `d`.
    pub fn d(&self) -> usize {
        self.shape.rank()
    }

    /// The lattice side `r`.
    pub fn r(&self) -> usize {
        self.shape.dims()[0]
    }

    /// Number of generations `T`.
    pub fn t(&self) -> usize {
        self.t_layers
    }

    /// Sites per layer (`r^d`).
    pub fn layer_len(&self) -> usize {
        self.shape.len()
    }

    /// Vertex id of `(site, layer)`.
    pub fn vertex(&self, site: usize, layer: usize) -> usize {
        debug_assert!(site < self.layer_len() && layer <= self.t_layers);
        layer * self.layer_len() + site
    }

    /// Decomposes a vertex id into `(site, layer)`.
    pub fn site_layer(&self, v: usize) -> (usize, usize) {
        (v % self.layer_len(), v / self.layer_len())
    }

    /// The von Neumann neighborhood `N(x) = {x} ∪ neighbors` of a site:
    /// truncated at the boundary, or wrapped for periodic graphs.
    pub fn neighborhood(&self, site: usize, out: &mut Vec<usize>) {
        out.clear();
        out.push(site);
        let c = self.shape.coord(site);
        let rank = self.shape.rank();
        let mut delta = [0isize; lattice_core::MAX_DIMS];
        for axis in 0..rank {
            for step in [-1isize, 1] {
                delta[..rank].fill(0);
                delta[axis] = step;
                if let Some(nc) = self.shape.offset(c, &delta[..rank], self.periodic) {
                    let n = self.shape.linear(nc);
                    // A side-2 torus would duplicate neighbors; dedup.
                    if !out.contains(&n) {
                        out.push(n);
                    }
                }
            }
        }
    }
}

impl PebbleGraph for LatticeGraph {
    fn n_vertices(&self) -> usize {
        (self.t_layers + 1) * self.layer_len()
    }

    fn preds(&self, v: usize, out: &mut Vec<usize>) {
        out.clear();
        let (site, layer) = self.site_layer(v);
        if layer == 0 {
            return;
        }
        let mut nb = Vec::with_capacity(2 * self.d() + 1);
        self.neighborhood(site, &mut nb);
        let base = (layer - 1) * self.layer_len();
        out.extend(nb.into_iter().map(|s| base + s));
    }

    fn is_input(&self, v: usize) -> bool {
        v < self.layer_len()
    }

    fn outputs(&self) -> Vec<usize> {
        let base = self.t_layers * self.layer_len();
        (base..base + self.layer_len()).collect()
    }

    fn inputs(&self) -> Vec<usize> {
        (0..self.layer_len()).collect()
    }
}

/// An explicit DAG from adjacency lists, for small examples and the
/// exact optimal-pebbling search.
#[derive(Debug, Clone)]
pub struct ExplicitDag {
    preds: Vec<Vec<usize>>,
    outputs: Vec<usize>,
}

impl ExplicitDag {
    /// Creates a DAG from per-vertex predecessor lists and an output
    /// set. Validates that predecessor ids are in range and acyclic
    /// (predecessors must have smaller ids — a topological labeling).
    pub fn new(preds: Vec<Vec<usize>>, outputs: Vec<usize>) -> Result<Self, String> {
        let n = preds.len();
        for (v, ps) in preds.iter().enumerate() {
            for &p in ps {
                if p >= n {
                    return Err(format!("vertex {v} has out-of-range predecessor {p}"));
                }
                if p >= v {
                    return Err(format!(
                        "vertex {v} has predecessor {p}; vertices must be topologically labeled"
                    ));
                }
            }
        }
        for &o in &outputs {
            if o >= n {
                return Err(format!("output {o} out of range"));
            }
        }
        Ok(ExplicitDag { preds, outputs })
    }
}

impl PebbleGraph for ExplicitDag {
    fn n_vertices(&self) -> usize {
        self.preds.len()
    }

    fn preds(&self, v: usize, out: &mut Vec<usize>) {
        out.clear();
        out.extend_from_slice(&self.preds[v]);
    }

    fn outputs(&self) -> Vec<usize> {
        self.outputs.clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lattice_graph_1d_structure() {
        let g = LatticeGraph::new(1, 4, 2);
        assert_eq!(g.n_vertices(), 12);
        assert_eq!(g.inputs(), vec![0, 1, 2, 3]);
        assert_eq!(g.outputs(), vec![8, 9, 10, 11]);
        let mut p = Vec::new();
        // Interior vertex (site 1, layer 1): preds {0,1,2} at layer 0.
        g.preds(g.vertex(1, 1), &mut p);
        p.sort();
        assert_eq!(p, vec![0, 1, 2]);
        // Boundary vertex (site 0, layer 2): preds {0,1} at layer 1.
        g.preds(g.vertex(0, 2), &mut p);
        p.sort();
        assert_eq!(p, vec![4, 5]);
        // Inputs have no preds.
        g.preds(2, &mut p);
        assert!(p.is_empty());
        assert!(g.is_input(2));
        assert!(!g.is_input(5));
    }

    #[test]
    fn lattice_graph_2d_neighborhood_size() {
        let g = LatticeGraph::new(2, 3, 1);
        let mut p = Vec::new();
        // Center site 4 of the 3×3 lattice: 5 preds (von Neumann + self).
        g.preds(g.vertex(4, 1), &mut p);
        assert_eq!(p.len(), 5);
        // Corner site 0: 3 preds.
        g.preds(g.vertex(0, 1), &mut p);
        assert_eq!(p.len(), 3);
        // Edge site 1: 4 preds.
        g.preds(g.vertex(1, 1), &mut p);
        assert_eq!(p.len(), 4);
    }

    #[test]
    fn lattice_graph_3d_interior_has_seven_preds() {
        let g = LatticeGraph::new(3, 3, 1);
        let center = g.shape.linear(lattice_core::Coord::c3(1, 1, 1));
        let mut p = Vec::new();
        g.preds(g.vertex(center, 1), &mut p);
        assert_eq!(p.len(), 7);
    }

    #[test]
    fn vertex_site_layer_roundtrip() {
        let g = LatticeGraph::new(2, 5, 3);
        for v in 0..g.n_vertices() {
            let (s, l) = g.site_layer(v);
            assert_eq!(g.vertex(s, l), v);
        }
    }

    #[test]
    fn periodic_graph_has_full_neighborhoods_everywhere() {
        let g = LatticeGraph::new_periodic(2, 4, 2);
        assert!(g.is_periodic());
        let mut p = Vec::new();
        for site in 0..g.layer_len() {
            g.preds(g.vertex(site, 1), &mut p);
            assert_eq!(p.len(), 5, "site {site}");
        }
        // Corner site 0 wraps to sites 3 (west) and 12 (north).
        g.preds(g.vertex(0, 1), &mut p);
        p.sort();
        assert_eq!(p, vec![0, 1, 3, 4, 12]);
        // Truncated graph has only 3 preds at the corner.
        let gt = LatticeGraph::new(2, 4, 2);
        assert!(!gt.is_periodic());
        gt.preds(gt.vertex(0, 1), &mut p);
        assert_eq!(p.len(), 3);
    }

    #[test]
    fn tiny_torus_dedups_neighbors() {
        // Side-2 torus: +1 and -1 wrap to the same site.
        let g = LatticeGraph::new_periodic(1, 2, 1);
        let mut p = Vec::new();
        g.preds(g.vertex(0, 1), &mut p);
        p.sort();
        assert_eq!(p, vec![0, 1]);
    }

    #[test]
    fn explicit_dag_validation() {
        assert!(ExplicitDag::new(vec![vec![], vec![0], vec![0, 1]], vec![2]).is_ok());
        // Forward reference rejected.
        assert!(ExplicitDag::new(vec![vec![1], vec![]], vec![1]).is_err());
        // Out-of-range pred rejected.
        assert!(ExplicitDag::new(vec![vec![], vec![7]], vec![1]).is_err());
        // Out-of-range output rejected.
        assert!(ExplicitDag::new(vec![vec![]], vec![3]).is_err());
    }

    #[test]
    fn explicit_dag_queries() {
        let dag = ExplicitDag::new(vec![vec![], vec![], vec![0, 1]], vec![2]).unwrap();
        assert_eq!(dag.n_vertices(), 3);
        assert_eq!(dag.inputs(), vec![0, 1]);
        assert_eq!(dag.outputs(), vec![2]);
        let mut p = Vec::new();
        dag.preds(2, &mut p);
        assert_eq!(p, vec![0, 1]);
    }
}
