//! Exact minimum-I/O pebbling for tiny graphs.
//!
//! §8's closing research goal: "a further goal would be to discover an
//! optimal pebbling for any problem in this class." For graphs of at
//! most [`MAX_OPTIMAL_VERTICES`] vertices we answer exactly, by 0-1 BFS
//! over game states `(red set, blue set)`: compute/slide/remove moves
//! cost 0, I/O moves cost 1.
//!
//! Blue-pebble removals are omitted: removing a blue pebble never
//! enables a move (no rule is conditioned on a vertex *lacking* a blue
//! pebble), so an optimal play never needs one.

use crate::game::Move;
use crate::graph::PebbleGraph;
use std::collections::{HashMap, VecDeque};

/// Largest graph the exact search accepts (state space 4^n).
pub const MAX_OPTIMAL_VERTICES: usize = 14;

#[derive(Clone, Copy, PartialEq, Eq, Hash)]
struct State {
    red: u32,
    blue: u32,
}

/// Computes the exact minimum number of I/O moves to pebble `graph`
/// with `s` red pebbles, or `None` if the graph cannot be completed
/// (e.g. `s` smaller than some vertex's in-degree + 1 without a usable
/// slide).
///
/// # Panics
/// Panics if the graph has more than [`MAX_OPTIMAL_VERTICES`] vertices.
pub fn min_io_exact<G: PebbleGraph>(graph: &G, s: usize) -> Option<u64> {
    min_io_search(graph, s, false).map(|(q, _)| q)
}

/// Like [`min_io_exact`], but also reconstructs an optimal move
/// sequence, replayable on a rule-checking [`crate::Game`].
pub fn min_io_exact_with_plan<G: PebbleGraph>(graph: &G, s: usize) -> Option<(u64, Vec<Move>)> {
    min_io_search(graph, s, true).map(|(q, plan)| (q, plan.expect("plan requested")))
}

fn min_io_search<G: PebbleGraph>(
    graph: &G,
    s: usize,
    want_plan: bool,
) -> Option<(u64, Option<Vec<Move>>)> {
    let n = graph.n_vertices();
    assert!(
        n <= MAX_OPTIMAL_VERTICES,
        "exact search is exponential; max {MAX_OPTIMAL_VERTICES} vertices"
    );
    let full = |mask: u32, i: usize| mask >> i & 1 != 0;

    let mut preds: Vec<u32> = Vec::with_capacity(n);
    let mut tmp = Vec::new();
    for v in 0..n {
        graph.preds(v, &mut tmp);
        preds.push(tmp.iter().fold(0u32, |m, &p| m | 1 << p));
    }
    let inputs: u32 = graph.inputs().iter().fold(0, |m, &v| m | 1 << v);
    let goal: u32 = graph.outputs().iter().fold(0, |m, &v| m | 1 << v);

    let start = State { red: 0, blue: inputs };
    let mut dist: HashMap<State, u64> = HashMap::new();
    dist.insert(start, 0);
    let mut parent: HashMap<State, (State, Move)> = HashMap::new();
    // 0-1 BFS deque.
    let mut dq: VecDeque<(State, u64)> = VecDeque::new();
    dq.push_back((start, 0));
    let mut best: Option<(u64, State)> = None;

    while let Some((st, d)) = dq.pop_front() {
        if dist.get(&st) != Some(&d) {
            continue; // stale entry
        }
        if st.blue & goal == goal {
            if best.is_none_or(|(b, _)| d < b) {
                best = Some((d, st));
            }
            continue;
        }
        if let Some((b, _)) = best {
            if d >= b {
                continue;
            }
        }
        let red_count = st.red.count_ones() as usize;
        let mut push = |next: State, nd: u64, front: bool, mv: Move| {
            let e = dist.entry(next).or_insert(u64::MAX);
            if nd < *e {
                *e = nd;
                if want_plan {
                    parent.insert(next, (st, mv));
                }
                if front {
                    dq.push_front((next, nd));
                } else {
                    dq.push_back((next, nd));
                }
            }
        };

        #[allow(clippy::needless_range_loop)] // v is a vertex id, not just an index
        for v in 0..n {
            let bit = 1u32 << v;
            // Compute (rule 4), non-input, preds all red.
            if !full(st.red, v) && inputs & bit == 0 && st.red & preds[v] == preds[v] {
                if red_count < s {
                    push(State { red: st.red | bit, blue: st.blue }, d, true, Move::Compute(v));
                }
                // Slide from each predecessor.
                let mut pm = preds[v];
                while pm != 0 {
                    let p = pm.trailing_zeros() as usize;
                    pm &= pm - 1;
                    push(
                        State { red: (st.red & !(1 << p)) | bit, blue: st.blue },
                        d,
                        true,
                        Move::Slide { from: p, to: v },
                    );
                }
            }
            // Remove red (rule 1).
            if full(st.red, v) {
                push(State { red: st.red & !bit, blue: st.blue }, d, true, Move::RemoveRed(v));
            }
            // Read (rule 2): blue -> red, costs 1.
            if full(st.blue, v) && !full(st.red, v) && red_count < s {
                push(State { red: st.red | bit, blue: st.blue }, d + 1, false, Move::Read(v));
            }
            // Write (rule 3): red -> blue, costs 1.
            if full(st.red, v) && !full(st.blue, v) {
                push(State { red: st.red, blue: st.blue | bit }, d + 1, false, Move::Write(v));
            }
        }
    }
    let (q, goal_state) = best?;
    if !want_plan {
        return Some((q, None));
    }
    // Walk parents back to the start.
    let mut plan = Vec::new();
    let mut cur = goal_state;
    while cur != start {
        let (prev, mv) = parent.get(&cur).copied().expect("parent chain intact");
        plan.push(mv);
        cur = prev;
    }
    plan.reverse();
    Some((q, Some(plan)))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::{ExplicitDag, LatticeGraph};

    #[test]
    fn single_edge_needs_two_io() {
        // v1 = f(v0): read input, write output.
        let g = ExplicitDag::new(vec![vec![], vec![0]], vec![1]).unwrap();
        assert_eq!(min_io_exact(&g, 1), Some(2));
    }

    #[test]
    fn tiny_join_needs_three_io() {
        let g = ExplicitDag::new(vec![vec![], vec![], vec![0, 1]], vec![2]).unwrap();
        assert_eq!(min_io_exact(&g, 2), Some(3)); // slide makes S=2 enough
        assert_eq!(min_io_exact(&g, 3), Some(3));
        assert_eq!(min_io_exact(&g, 1), None); // two live inputs needed at once
    }

    #[test]
    fn chain_is_two_io_regardless_of_length() {
        let g =
            ExplicitDag::new(vec![vec![], vec![0], vec![1], vec![2], vec![3]], vec![4]).unwrap();
        assert_eq!(min_io_exact(&g, 1), Some(2)); // slide down the chain
        assert_eq!(min_io_exact(&g, 3), Some(2));
    }

    #[test]
    fn small_lattice_exact_matches_io_floor() {
        // 1-D lattice, r = 3, T = 1: 3 inputs, 3 outputs. Any complete
        // computation reads all 3 inputs and writes all 3 outputs → 6.
        let g = LatticeGraph::new(1, 3, 1);
        assert_eq!(min_io_exact(&g, 4), Some(6));
        // Tight memory costs extra I/O or fails, never helps.
        let loose = min_io_exact(&g, 6).unwrap();
        assert!(loose >= 6);
    }

    #[test]
    fn deeper_lattice_reuses_reds() {
        // 1-D lattice r = 3, T = 2: with S = 4 the middle layer can stay
        // red: still only 3 reads + 3 writes.
        let g = LatticeGraph::new(1, 3, 2);
        assert_eq!(min_io_exact(&g, 4), Some(6));
    }

    #[test]
    fn exact_respects_lower_bound_and_strategies_respect_exact() {
        let g = LatticeGraph::new(1, 4, 2);
        let s = 6;
        let exact = min_io_exact(&g, s).unwrap() as f64;
        let lb = crate::bounds::io_lower_bound(g.n_vertices() as u64, 1, s);
        assert!(exact >= lb);
        let tiled = crate::strategies::tiled_schedule(&g, s, None).unwrap();
        assert!(tiled.io_moves as f64 >= exact);
    }

    #[test]
    fn optimal_io_is_monotone_in_storage() {
        // More red pebbles can never force more I/O: q*(S) is
        // non-increasing, and it floors at reads+writes of the
        // inputs/outputs actually needed.
        let g = LatticeGraph::new(1, 4, 2);
        let mut prev = u64::MAX;
        for s in 2..=8usize {
            if let Some(q) = min_io_exact(&g, s) {
                assert!(q <= prev, "S={s}: {q} > {prev}");
                assert!(q >= 8, "S={s}: below the 4-in/4-out floor");
                prev = q;
            }
        }
        assert_eq!(prev, 8, "ample storage reaches the floor");
    }

    #[test]
    fn optimal_plan_replays_legally() {
        use crate::game::Game;
        for (g, s) in [
            (LatticeGraph::new(1, 3, 1), 4usize),
            (LatticeGraph::new(1, 3, 2), 4),
            (LatticeGraph::new(1, 4, 2), 5),
        ] {
            let (q, plan) = min_io_exact_with_plan(&g, s).unwrap();
            let mut game = Game::new(&g, s);
            game.apply_all(plan.iter().copied()).expect("optimal plan is legal");
            assert!(game.is_complete(), "plan completes the computation");
            assert_eq!(game.io_moves(), q, "plan achieves the optimum");
            assert!(game.max_red_used() <= s);
        }
    }

    #[test]
    fn plan_matches_min_io_value() {
        let g = ExplicitDag::new(vec![vec![], vec![], vec![0, 1]], vec![2]).unwrap();
        let (q, plan) = min_io_exact_with_plan(&g, 2).unwrap();
        assert_eq!(q, 3);
        assert_eq!(min_io_exact(&g, 2), Some(3));
        // The S = 2 optimum needs a slide.
        assert!(plan.iter().any(|m| matches!(m, Move::Slide { .. })));
    }

    #[test]
    #[should_panic(expected = "exact search")]
    fn size_guard() {
        let g = LatticeGraph::new(2, 4, 1); // 32 vertices
        let _ = min_io_exact(&g, 4);
    }
}
