//! Executable pebbling schedules for `C_d`.
//!
//! Two schedules bracket the design space:
//!
//! * [`naive_sweep`] — compute one site at a time, reading its whole
//!   neighborhood from main memory and writing the result back:
//!   `q ≈ (2d + 2)·|X|`, *independent of S*. This is what a processor
//!   with no useful on-chip state does.
//! * [`tiled_schedule`] — the space-time trapezoid schedule: load a
//!   `(b + 2h)^d` block of one generation, compute `h` generations of
//!   shrinking blocks entirely in red pebbles, write out the `b^d` top,
//!   and repeat. Per-update I/O falls as `Θ(1/h) = Θ(1/S^{1/d})`,
//!   matching Theorem 4's `R = O(B·S^{1/d})` bound up to constants —
//!   this is the *achievability* side of the paper's asymptotics.
//!
//! Both produce genuine move sequences executed on a rule-checking
//! [`Game`], so the reported I/O counts are certified legal pebblings.

use crate::game::{Game, GameError, Move};
use crate::graph::{LatticeGraph, PebbleGraph};

/// Statistics of a completed pebbling.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PebbleStats {
    /// I/O moves (the paper's `q`), in site values.
    pub io_moves: u64,
    /// Rule-4 computations performed (≥ the vertex count when the
    /// schedule recomputes).
    pub computations: u64,
    /// Peak red-pebble usage.
    pub max_red_used: usize,
    /// Vertices in the graph, `|X|` (excluding nothing).
    pub n_vertices: u64,
    /// Distinct non-input vertices (the site updates the LGCA needs).
    pub n_updates: u64,
}

impl PebbleStats {
    /// I/O moves per site update — the reciprocal of the paper's
    /// `R/B` figure of merit.
    pub fn io_per_update(&self) -> f64 {
        self.io_moves as f64 / self.n_updates as f64
    }
}

fn stats_from(game: &Game<'_, LatticeGraph>, g: &LatticeGraph) -> PebbleStats {
    PebbleStats {
        io_moves: game.io_moves(),
        computations: game.computations(),
        max_red_used: game.max_red_used(),
        n_vertices: g.n_vertices() as u64,
        n_updates: (g.layer_len() * g.t()) as u64,
    }
}

/// The naïve site-at-a-time schedule. Requires `S ≥ 2d + 2`.
pub fn naive_sweep(graph: &LatticeGraph, s: usize) -> Result<PebbleStats, GameError> {
    let mut game = Game::new(graph, s);
    naive_sweep_on(&mut game, graph)?;
    Ok(stats_from(&game, graph))
}

/// [`naive_sweep`] with move logging, for division/partition analysis.
pub fn naive_sweep_logged(
    graph: &LatticeGraph,
    s: usize,
) -> Result<(PebbleStats, Vec<Move>), GameError> {
    let mut game = Game::new(graph, s);
    game.enable_log();
    naive_sweep_on(&mut game, graph)?;
    let log = game.log().expect("logging enabled").to_vec();
    Ok((stats_from(&game, graph), log))
}

fn naive_sweep_on(
    game: &mut Game<'_, LatticeGraph>,
    graph: &LatticeGraph,
) -> Result<(), GameError> {
    let mut nb = Vec::new();
    for layer in 1..=graph.t() {
        for site in 0..graph.layer_len() {
            let v = graph.vertex(site, layer);
            graph.preds(v, &mut nb);
            let preds = nb.clone();
            for &p in &preds {
                game.apply(Move::Read(p))?;
            }
            game.apply(Move::Compute(v))?;
            game.apply(Move::Write(v))?;
            for &p in &preds {
                game.apply(Move::RemoveRed(p))?;
            }
            game.apply(Move::RemoveRed(v))?;
        }
    }
    debug_assert!(game.is_complete());
    Ok(())
}

/// A space-time tile plan: base side `b`, height `h`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TilePlan {
    /// Tile base side length.
    pub b: usize,
    /// Generations computed per pass.
    pub h: usize,
}

impl TilePlan {
    /// Picks the largest balanced plan fitting red capacity `s` for
    /// dimension `d`: block side `m = b + 2h` with `2·m^d ≤ s`,
    /// `h ≈ m/3`. Returns `None` when `s < 2·3^d` (no room for even the
    /// minimal `b = h = 1` trapezoid).
    pub fn auto(d: usize, s: usize) -> Option<TilePlan> {
        // Integer-exact largest m with 2·m^d ≤ s (float root, then fix up).
        let mut m = ((s as f64 / 2.0).powf(1.0 / d as f64)).floor() as usize;
        while 2 * (m + 1).pow(d as u32) <= s {
            m += 1;
        }
        while m > 0 && 2 * m.pow(d as u32) > s {
            m -= 1;
        }
        if m < 3 {
            return None;
        }
        let h = ((m - 1) / 3).max(1);
        let b = m - 2 * h;
        debug_assert!(b >= 1);
        Some(TilePlan { b, h })
    }

    /// The block side `m = b + 2h`.
    pub fn block_side(&self) -> usize {
        self.b + 2 * self.h
    }
}

/// Runs the tiled trapezoid schedule on `C_d` with red capacity `s`.
///
/// Uses [`TilePlan::auto`] unless `plan` is given. Errors (from the
/// rule-checking game) if the plan exceeds capacity — by construction it
/// never should; an error here is a bug, which is the point of playing
/// the moves rather than just counting them.
///
/// ```
/// use lattice_pebbles::{tiled_schedule, LatticeGraph};
/// let graph = LatticeGraph::new(2, 16, 8);
/// let small = tiled_schedule(&graph, 32, None)?;
/// let large = tiled_schedule(&graph, 2048, None)?;
/// // More on-chip storage, less I/O per update: R = O(B·S^{1/d}).
/// assert!(large.io_per_update() < small.io_per_update());
/// # Ok::<(), lattice_pebbles::GameError>(())
/// ```
pub fn tiled_schedule(
    graph: &LatticeGraph,
    s: usize,
    plan: Option<TilePlan>,
) -> Result<PebbleStats, GameError> {
    let mut game = Game::new(graph, s);
    tiled_schedule_on(&mut game, graph, s, plan)?;
    Ok(stats_from(&game, graph))
}

/// [`tiled_schedule`] with move logging, for division/partition
/// analysis.
pub fn tiled_schedule_logged(
    graph: &LatticeGraph,
    s: usize,
    plan: Option<TilePlan>,
) -> Result<(PebbleStats, Vec<Move>), GameError> {
    let mut game = Game::new(graph, s);
    game.enable_log();
    tiled_schedule_on(&mut game, graph, s, plan)?;
    let log = game.log().expect("logging enabled").to_vec();
    Ok((stats_from(&game, graph), log))
}

fn tiled_schedule_on(
    game: &mut Game<'_, LatticeGraph>,
    graph: &LatticeGraph,
    s: usize,
    plan: Option<TilePlan>,
) -> Result<(), GameError> {
    if graph.is_periodic() {
        // Trapezoid skirts assume truncation at the boundary; on a torus
        // the wrapped dependencies would make the computes illegal. The
        // game would catch it move-by-move — reject it up front instead.
        return Err(GameError::PredNotRed { vertex: 0, missing: 0 });
    }
    let plan =
        plan.or_else(|| TilePlan::auto(graph.d(), s)).ok_or(GameError::CapacityExceeded { s })?;
    let d = graph.d();
    let r = graph.r();

    // Enumerate axis-aligned boxes: the tile grid.
    let tiles_per_axis = r.div_ceil(plan.b);
    let n_tiles = tiles_per_axis.pow(d as u32);

    let mut t0 = 0usize;
    while t0 < graph.t() {
        let h_eff = plan.h.min(graph.t() - t0);
        for tile in 0..n_tiles {
            // Tile origin per axis.
            let mut origin = [0usize; lattice_core::MAX_DIMS];
            let mut rem = tile;
            for o in origin.iter_mut().take(d) {
                *o = (rem % tiles_per_axis) * plan.b;
                rem /= tiles_per_axis;
            }
            // Region at inflation level `inf`: per-axis
            // [origin - inf, origin + b - 1 + inf] ∩ [0, r).
            #[allow(clippy::needless_range_loop)]
            let region = |inf: usize, out: &mut Vec<usize>| {
                out.clear();
                let mut lo = [0usize; lattice_core::MAX_DIMS];
                let mut hi = [0usize; lattice_core::MAX_DIMS];
                for ax in 0..d {
                    lo[ax] = origin[ax].saturating_sub(inf);
                    hi[ax] = (origin[ax] + plan.b - 1 + inf).min(r - 1);
                }
                // Iterate the box.
                let mut cur = lo;
                loop {
                    let mut site = 0usize;
                    for ax in 0..d {
                        site = site * r + cur[ax];
                    }
                    out.push(site);
                    // Increment odometer.
                    let mut ax = d;
                    loop {
                        if ax == 0 {
                            return;
                        }
                        ax -= 1;
                        if cur[ax] < hi[ax] {
                            cur[ax] += 1;
                            cur[(ax + 1)..d].copy_from_slice(&lo[(ax + 1)..d]);
                            break;
                        } else if ax == 0 {
                            return;
                        }
                    }
                }
            };

            let mut bottom = Vec::new();
            region(h_eff, &mut bottom);
            // Load the bottom of the trapezoid.
            for &site in &bottom {
                game.apply(Move::Read(graph.vertex(site, t0)))?;
            }
            let mut prev = bottom;
            for j in 1..=h_eff {
                let mut cur = Vec::new();
                region(h_eff - j, &mut cur);
                for &site in &cur {
                    game.apply(Move::Compute(graph.vertex(site, t0 + j)))?;
                }
                // Previous layer no longer needed inside this tile.
                for &site in &prev {
                    game.apply(Move::RemoveRed(graph.vertex(site, t0 + j - 1)))?;
                }
                prev = cur;
            }
            // Write the tile top (inflation 0 = the tile itself).
            for &site in &prev {
                game.apply(Move::Write(graph.vertex(site, t0 + h_eff)))?;
                game.apply(Move::RemoveRed(graph.vertex(site, t0 + h_eff)))?;
            }
        }
        t0 += h_eff;
    }
    debug_assert!(game.is_complete());
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn naive_io_is_flat_in_s() {
        let g = LatticeGraph::new(2, 8, 4);
        let a = naive_sweep(&g, 8).unwrap();
        let b = naive_sweep(&g, 64).unwrap();
        assert_eq!(a.io_moves, b.io_moves);
        // ≈ (preds + 1) per update; interior sites have 5 preds.
        assert!(a.io_per_update() > 5.0 && a.io_per_update() < 7.0);
    }

    #[test]
    fn naive_needs_neighborhood_capacity() {
        let g = LatticeGraph::new(2, 4, 1);
        assert!(naive_sweep(&g, 5).is_err()); // needs 5 preds + result
        assert!(naive_sweep(&g, 6).is_ok());
    }

    #[test]
    fn tile_plan_auto_fits_capacity() {
        for d in 1..=3usize {
            for s in [2 * 3usize.pow(d as u32), 100, 1000, 10000] {
                if let Some(p) = TilePlan::auto(d, s) {
                    assert!(p.b >= 1 && p.h >= 1);
                    assert!(2 * p.block_side().pow(d as u32) <= s, "d={d} s={s} plan={p:?}");
                }
            }
            assert!(TilePlan::auto(d, 2 * 3usize.pow(d as u32) - 1).is_none());
        }
    }

    #[test]
    fn tiled_beats_naive_when_s_allows_depth() {
        let g = LatticeGraph::new(1, 64, 16);
        let s = 128;
        let naive = naive_sweep(&g, s).unwrap();
        let tiled = tiled_schedule(&g, s, None).unwrap();
        assert!(
            tiled.io_per_update() < naive.io_per_update() / 2.0,
            "tiled {} vs naive {}",
            tiled.io_per_update(),
            naive.io_per_update()
        );
    }

    #[test]
    fn tiled_io_falls_with_s_for_each_dimension() {
        for (d, r, t) in [(1usize, 64usize, 16usize), (2, 16, 8)] {
            let g = LatticeGraph::new(d, r, t);
            let small = tiled_schedule(&g, 2 * 3usize.pow(d as u32) + 1, None).unwrap();
            let large = tiled_schedule(&g, 4000, None).unwrap();
            assert!(
                large.io_per_update() < small.io_per_update(),
                "d={d}: {} !< {}",
                large.io_per_update(),
                small.io_per_update()
            );
        }
    }

    #[test]
    fn tiled_respects_capacity_and_completes() {
        let g = LatticeGraph::new(2, 12, 6);
        for s in [18usize, 64, 256, 1024] {
            let st = tiled_schedule(&g, s, None).unwrap();
            assert!(st.max_red_used <= s, "S={s}: used {}", st.max_red_used);
            // Recomputation is expected: computations ≥ updates.
            assert!(st.computations >= st.n_updates);
        }
    }

    #[test]
    fn tiled_with_explicit_plan() {
        let g = LatticeGraph::new(1, 32, 8);
        let st = tiled_schedule(&g, 1000, Some(TilePlan { b: 4, h: 2 })).unwrap();
        assert!(st.io_moves > 0);
        // Block side 8, two layers in flight ≤ 16 reds… plus margin.
        assert!(st.max_red_used <= 2 * 8);
    }

    #[test]
    fn tiled_errors_when_capacity_too_small() {
        let g = LatticeGraph::new(2, 8, 4);
        assert!(matches!(tiled_schedule(&g, 5, None), Err(GameError::CapacityExceeded { .. })));
        // Explicit oversized plan against tiny S is caught by the game.
        assert!(tiled_schedule(&g, 6, Some(TilePlan { b: 4, h: 4 })).is_err());
    }

    #[test]
    fn tiled_rejects_periodic_graphs_naive_handles_them() {
        let g = LatticeGraph::new_periodic(1, 16, 4);
        assert!(tiled_schedule(&g, 256, None).is_err());
        // The naive sweep reads explicit preds, so wrap is fine.
        let st = naive_sweep(&g, 8).unwrap();
        // Every site now has exactly 3 preds: io = (3 + 1)·updates.
        assert_eq!(st.io_moves, 4 * st.n_updates);
    }

    #[test]
    fn io_lower_bound_holds_for_all_schedules() {
        // Every legal pebbling's q must respect Lemma 1+2's lower bound.
        for (d, r, t) in [(1usize, 32usize, 32usize), (2, 12, 12)] {
            let g = LatticeGraph::new(d, r, t);
            for s in [20usize, 60, 200] {
                let lb = crate::bounds::io_lower_bound(g.n_vertices() as u64, d, s);
                if let Ok(st) = tiled_schedule(&g, s, None) {
                    assert!(
                        st.io_moves as f64 >= lb,
                        "d={d} s={s}: q={} < bound={lb}",
                        st.io_moves
                    );
                }
                let st = naive_sweep(&g, s).unwrap();
                assert!(st.io_moves as f64 >= lb);
            }
        }
    }
}
