//! The sequential red-blue pebble game (Hong & Kung, paper ref [5]).
//!
//! Rules (§7):
//!
//! 1. A pebble may be removed from a vertex at any time.
//! 2. A red pebble may be placed on any vertex that has a blue pebble.
//! 3. A blue pebble may be placed on any vertex that has a red pebble.
//! 4. If all immediate predecessors of a (non-input) vertex `v` are red
//!    pebbled, `v` may be red pebbled.
//!
//! "A vertex that is blue-pebbled represents the associated value's
//! presence in main memory. A red-pebbled vertex represents presence in
//! processor (chip) memory. Rules (2) and (3) represent I/O, and rule
//! (4) represents the computation of a new value."
//!
//! The game starts with the inputs blue-pebbled and ends when all
//! outputs are blue-pebbled; at most `S` red pebbles may be in play.
//! Every move is validated; `q` counts I/O moves (the paper's quantity).

use crate::graph::PebbleGraph;
use std::fmt;

/// A single pebble-game move.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Move {
    /// Rule 2: read — place a red pebble on a blue vertex.
    Read(usize),
    /// Rule 3: write — place a blue pebble on a red vertex.
    Write(usize),
    /// Rule 4: compute — red-pebble a vertex whose predecessors are all
    /// red.
    Compute(usize),
    /// Rule 4, slide form: compute `to` by *moving* the red pebble from
    /// predecessor `from` onto it (capacity-neutral). §7 discusses this
    /// explicitly: "lifting the red pebble from a supporting node and
    /// sliding it to one of the dependent nodes" — it models computing
    /// into a register that held an input.
    Slide {
        /// The predecessor whose red pebble moves.
        from: usize,
        /// The vertex being computed.
        to: usize,
    },
    /// Rule 1: remove the red pebble from a vertex.
    RemoveRed(usize),
    /// Rule 1: remove the blue pebble from a vertex.
    RemoveBlue(usize),
}

/// Errors from illegal moves.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum GameError {
    /// Rule-2 violation: vertex not blue.
    NotBlue(usize),
    /// Rule-3 violation: vertex not red.
    NotRed(usize),
    /// Rule-4 violation: a predecessor lacks a red pebble.
    PredNotRed {
        /// Vertex being computed.
        vertex: usize,
        /// The unpebbled predecessor.
        missing: usize,
    },
    /// Rule-4 on an input vertex (inputs are given, not computed).
    ComputeInput(usize),
    /// Red-pebble capacity `S` exceeded.
    CapacityExceeded {
        /// The capacity.
        s: usize,
    },
    /// Removing a pebble that is not there.
    NothingToRemove(usize),
    /// Vertex id out of range.
    BadVertex(usize),
}

impl fmt::Display for GameError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GameError::NotBlue(v) => write!(f, "vertex {v} has no blue pebble to read"),
            GameError::NotRed(v) => write!(f, "vertex {v} has no red pebble to write"),
            GameError::PredNotRed { vertex, missing } => {
                write!(f, "cannot compute {vertex}: predecessor {missing} not red")
            }
            GameError::ComputeInput(v) => {
                write!(f, "vertex {v} is an input; inputs are read, not computed")
            }
            GameError::CapacityExceeded { s } => write!(f, "red pebble capacity S = {s} exceeded"),
            GameError::NothingToRemove(v) => write!(f, "vertex {v} has no such pebble"),
            GameError::BadVertex(v) => write!(f, "vertex {v} out of range"),
        }
    }
}

impl std::error::Error for GameError {}

/// Word-packed vertex set.
#[derive(Debug, Clone, PartialEq, Eq)]
pub(crate) struct BitSet {
    words: Vec<u64>,
    count: usize,
}

impl BitSet {
    pub(crate) fn new(n: usize) -> Self {
        BitSet { words: vec![0; n.div_ceil(64)], count: 0 }
    }

    pub(crate) fn contains(&self, i: usize) -> bool {
        self.words[i / 64] >> (i % 64) & 1 != 0
    }

    /// Inserts; returns true if newly inserted.
    pub(crate) fn insert(&mut self, i: usize) -> bool {
        let w = &mut self.words[i / 64];
        let m = 1u64 << (i % 64);
        if *w & m != 0 {
            return false;
        }
        *w |= m;
        self.count += 1;
        true
    }

    /// Removes; returns true if present.
    pub(crate) fn remove(&mut self, i: usize) -> bool {
        let w = &mut self.words[i / 64];
        let m = 1u64 << (i % 64);
        if *w & m == 0 {
            return false;
        }
        *w &= !m;
        self.count -= 1;
        true
    }

    pub(crate) fn len(&self) -> usize {
        self.count
    }
}

/// A red-blue pebble game in progress on a graph.
///
/// ```
/// use lattice_pebbles::{Game, LatticeGraph, Move};
/// // 1-D lattice of 3 sites, one generation: vertices 0..3 are inputs,
/// // 3..6 the outputs.
/// let graph = LatticeGraph::new(1, 3, 1);
/// let mut game = Game::new(&graph, 4);
/// game.apply_all([
///     Move::Read(0), Move::Read(1), Move::Read(2),
///     Move::Compute(4),                  // center needs all three
///     Move::Slide { from: 0, to: 3 },    // edges reuse registers
///     Move::Slide { from: 2, to: 5 },
///     Move::Write(3), Move::Write(4), Move::Write(5),
/// ])?;
/// assert!(game.is_complete());
/// assert_eq!(game.io_moves(), 6); // 3 reads + 3 writes, the optimum
/// # Ok::<(), lattice_pebbles::GameError>(())
/// ```
pub struct Game<'g, G: PebbleGraph> {
    graph: &'g G,
    s: usize,
    red: BitSet,
    blue: BitSet,
    io_moves: u64,
    computations: u64,
    max_red_used: usize,
    scratch: Vec<usize>,
    log: Option<Vec<Move>>,
}

impl<'g, G: PebbleGraph> Game<'g, G> {
    /// Starts a game with red capacity `s`: inputs blue, no reds.
    pub fn new(graph: &'g G, s: usize) -> Self {
        let n = graph.n_vertices();
        let mut blue = BitSet::new(n);
        for v in graph.inputs() {
            blue.insert(v);
        }
        Game {
            graph,
            s,
            red: BitSet::new(n),
            blue,
            io_moves: 0,
            computations: 0,
            max_red_used: 0,
            scratch: Vec::new(),
            log: None,
        }
    }

    /// Enables move logging (for S-I/O-division and partition analysis;
    /// see [`crate::division`]). Call before playing.
    pub fn enable_log(&mut self) {
        self.log = Some(Vec::new());
    }

    /// The recorded move log, if logging was enabled.
    pub fn log(&self) -> Option<&[Move]> {
        self.log.as_deref()
    }

    /// The red-pebble capacity `S`.
    pub fn capacity(&self) -> usize {
        self.s
    }

    /// I/O moves so far (the paper's `q`).
    pub fn io_moves(&self) -> u64 {
        self.io_moves
    }

    /// Rule-4 (compute) moves so far.
    pub fn computations(&self) -> u64 {
        self.computations
    }

    /// Peak number of red pebbles in play.
    pub fn max_red_used(&self) -> usize {
        self.max_red_used
    }

    /// Current red-pebble count.
    pub fn red_count(&self) -> usize {
        self.red.len()
    }

    /// Whether `v` is red-pebbled.
    pub fn is_red(&self, v: usize) -> bool {
        self.red.contains(v)
    }

    /// Whether `v` is blue-pebbled.
    pub fn is_blue(&self, v: usize) -> bool {
        self.blue.contains(v)
    }

    /// True when every output carries a blue pebble (complete
    /// computation).
    pub fn is_complete(&self) -> bool {
        self.graph.outputs().iter().all(|&v| self.blue.contains(v))
    }

    fn check_vertex(&self, v: usize) -> Result<(), GameError> {
        if v >= self.graph.n_vertices() {
            Err(GameError::BadVertex(v))
        } else {
            Ok(())
        }
    }

    fn place_red(&mut self, v: usize) -> Result<(), GameError> {
        if !self.red.contains(v) && self.red.len() + 1 > self.s {
            return Err(GameError::CapacityExceeded { s: self.s });
        }
        self.red.insert(v);
        self.max_red_used = self.max_red_used.max(self.red.len());
        Ok(())
    }

    /// Applies one move.
    pub fn apply(&mut self, m: Move) -> Result<(), GameError> {
        self.apply_inner(m)?;
        if let Some(log) = &mut self.log {
            log.push(m);
        }
        Ok(())
    }

    fn apply_inner(&mut self, m: Move) -> Result<(), GameError> {
        match m {
            Move::Read(v) => {
                self.check_vertex(v)?;
                if !self.blue.contains(v) {
                    return Err(GameError::NotBlue(v));
                }
                self.place_red(v)?;
                self.io_moves += 1;
            }
            Move::Write(v) => {
                self.check_vertex(v)?;
                if !self.red.contains(v) {
                    return Err(GameError::NotRed(v));
                }
                self.blue.insert(v);
                self.io_moves += 1;
            }
            Move::Compute(v) => {
                self.check_vertex(v)?;
                if self.graph.is_input(v) {
                    return Err(GameError::ComputeInput(v));
                }
                let mut preds = std::mem::take(&mut self.scratch);
                self.graph.preds(v, &mut preds);
                let missing = preds.iter().find(|&&p| !self.red.contains(p)).copied();
                self.scratch = preds;
                if let Some(missing) = missing {
                    return Err(GameError::PredNotRed { vertex: v, missing });
                }
                self.place_red(v)?;
                self.computations += 1;
            }
            Move::Slide { from, to } => {
                self.check_vertex(from)?;
                self.check_vertex(to)?;
                if self.graph.is_input(to) {
                    return Err(GameError::ComputeInput(to));
                }
                let mut preds = std::mem::take(&mut self.scratch);
                self.graph.preds(to, &mut preds);
                let missing = preds.iter().find(|&&p| !self.red.contains(p)).copied();
                let from_is_pred = preds.contains(&from);
                self.scratch = preds;
                if let Some(missing) = missing {
                    return Err(GameError::PredNotRed { vertex: to, missing });
                }
                if !from_is_pred {
                    return Err(GameError::PredNotRed { vertex: to, missing: from });
                }
                self.red.remove(from);
                self.place_red(to).expect("slide is capacity-neutral");
                self.computations += 1;
            }
            Move::RemoveRed(v) => {
                self.check_vertex(v)?;
                if !self.red.remove(v) {
                    return Err(GameError::NothingToRemove(v));
                }
            }
            Move::RemoveBlue(v) => {
                self.check_vertex(v)?;
                if !self.blue.remove(v) {
                    return Err(GameError::NothingToRemove(v));
                }
            }
        }
        Ok(())
    }

    /// Applies a sequence of moves, stopping at the first error.
    pub fn apply_all(&mut self, moves: impl IntoIterator<Item = Move>) -> Result<(), GameError> {
        for m in moves {
            self.apply(m)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::ExplicitDag;

    /// v2 = f(v0, v1); output v2.
    fn tiny() -> ExplicitDag {
        ExplicitDag::new(vec![vec![], vec![], vec![0, 1]], vec![2]).unwrap()
    }

    #[test]
    fn happy_path_counts_io() {
        let g = tiny();
        let mut game = Game::new(&g, 3);
        game.apply_all([Move::Read(0), Move::Read(1), Move::Compute(2), Move::Write(2)]).unwrap();
        assert!(game.is_complete());
        assert_eq!(game.io_moves(), 3);
        assert_eq!(game.computations(), 1);
        assert_eq!(game.max_red_used(), 3);
    }

    #[test]
    fn compute_requires_all_preds_red() {
        let g = tiny();
        let mut game = Game::new(&g, 3);
        game.apply(Move::Read(0)).unwrap();
        assert_eq!(
            game.apply(Move::Compute(2)),
            Err(GameError::PredNotRed { vertex: 2, missing: 1 })
        );
    }

    #[test]
    fn inputs_cannot_be_computed() {
        let g = tiny();
        let mut game = Game::new(&g, 3);
        assert_eq!(game.apply(Move::Compute(0)), Err(GameError::ComputeInput(0)));
    }

    #[test]
    fn capacity_is_enforced() {
        let g = tiny();
        let mut game = Game::new(&g, 1);
        game.apply(Move::Read(0)).unwrap();
        assert_eq!(game.apply(Move::Read(1)), Err(GameError::CapacityExceeded { s: 1 }));
        // Removing frees capacity.
        game.apply(Move::RemoveRed(0)).unwrap();
        game.apply(Move::Read(1)).unwrap();
        assert_eq!(game.red_count(), 1);
    }

    #[test]
    fn s2_blocks_plain_compute_on_tiny_graph() {
        // With S = 2, computing v2 = f(v0, v1) by *placement* requires a
        // third red pebble; and dropping a predecessor first loses a
        // required support. Only the slide form (see
        // slide_computes_without_extra_capacity) completes at S = 2 —
        // exactly the blockage §7's pink-pebble discussion describes.
        let g = tiny();
        let mut game = Game::new(&g, 2);
        game.apply_all([Move::Read(0), Move::Read(1)]).unwrap();
        assert_eq!(game.apply(Move::Compute(2)), Err(GameError::CapacityExceeded { s: 2 }));
        game.apply(Move::RemoveRed(0)).unwrap();
        assert_eq!(
            game.apply(Move::Compute(2)),
            Err(GameError::PredNotRed { vertex: 2, missing: 0 })
        );
    }

    #[test]
    fn read_requires_blue_write_requires_red() {
        let g = tiny();
        let mut game = Game::new(&g, 3);
        assert_eq!(game.apply(Move::Read(2)), Err(GameError::NotBlue(2)));
        assert_eq!(game.apply(Move::Write(2)), Err(GameError::NotRed(2)));
        assert_eq!(game.apply(Move::RemoveRed(2)), Err(GameError::NothingToRemove(2)));
        assert_eq!(game.apply(Move::Read(9)), Err(GameError::BadVertex(9)));
    }

    #[test]
    fn reread_after_spill_works() {
        let g = tiny();
        let mut game = Game::new(&g, 2);
        game.apply_all([
            Move::Read(0),
            Move::Write(0), // redundant but legal (already blue: blue stays)
            Move::RemoveRed(0),
            Move::Read(0),
        ])
        .unwrap();
        assert_eq!(game.io_moves(), 3);
    }

    #[test]
    fn slide_computes_without_extra_capacity() {
        // With S = 2 and no slide, the tiny graph is stuck (see
        // s2_forces_extra_io_on_tiny_graph); slide completes it.
        let g = tiny();
        let mut game = Game::new(&g, 2);
        game.apply_all([
            Move::Read(0),
            Move::Read(1),
            Move::Slide { from: 0, to: 2 },
            Move::Write(2),
        ])
        .unwrap();
        assert!(game.is_complete());
        assert_eq!(game.io_moves(), 3);
        assert_eq!(game.max_red_used(), 2);
        assert!(!game.is_red(0));
        assert!(game.is_red(2));
    }

    #[test]
    fn slide_validates_preds_and_source() {
        let g = tiny();
        let mut game = Game::new(&g, 3);
        game.apply(Move::Read(0)).unwrap();
        // Missing predecessor 1.
        assert!(matches!(
            game.apply(Move::Slide { from: 0, to: 2 }),
            Err(GameError::PredNotRed { vertex: 2, .. })
        ));
        game.apply(Move::Read(1)).unwrap();
        // Sliding from a non-predecessor is rejected.
        let dag2 = ExplicitDag::new(vec![vec![], vec![], vec![0], vec![0, 1]], vec![3]).unwrap();
        let mut g2 = Game::new(&dag2, 4);
        g2.apply_all([Move::Read(0), Move::Read(1), Move::Compute(2)]).unwrap();
        assert!(matches!(
            g2.apply(Move::Slide { from: 2, to: 3 }),
            Err(GameError::PredNotRed { vertex: 3, missing: 2 })
        ));
        // Sliding onto an input is rejected.
        assert!(matches!(
            game.apply(Move::Slide { from: 1, to: 0 }),
            Err(GameError::ComputeInput(0))
        ));
    }

    #[test]
    fn error_messages_render() {
        for e in [
            GameError::NotBlue(1),
            GameError::NotRed(2),
            GameError::PredNotRed { vertex: 3, missing: 1 },
            GameError::ComputeInput(0),
            GameError::CapacityExceeded { s: 4 },
            GameError::NothingToRemove(5),
            GameError::BadVertex(6),
        ] {
            assert!(!e.to_string().is_empty());
        }
    }
}
