//! Chip technology model.

use lattice_core::units::{
    f64_from_u64, u32_from_f64_floor, usize_from_f64_floor, Bits, BitsPerTick, ChipArea, Hz, Pins,
    Secs, Sites, SitesPerSec, SitesPerTick, Ticks,
};
use serde::{Deserialize, Serialize};

/// The chip-level constants that parameterize every design-space
/// computation (§6 of the paper).
///
/// Areas are *normalized to the usable chip area α*: `b = β/α` is the
/// area of one site's worth of shift register, `g = γ/α` the area of one
/// PE, so a chip "fills up" when a design's normalized area reaches 1.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Technology {
    /// `D` — bits per lattice site crossing a chip boundary.
    pub d_bits: u32,
    /// `Π` — usable I/O pins per chip.
    pub pins: u32,
    /// `B = β/α` — normalized area of one site of shift-register storage.
    pub b: f64,
    /// `Γ = γ/α` — normalized area of one processing element.
    pub g: f64,
    /// `E` — bits exchanged to complete a neighborhood split across an
    /// SPA slice boundary.
    pub e_bits: u32,
    /// `F` — major cycle (clock) frequency, Hz.
    pub clock_hz: f64,
}

impl Technology {
    /// The paper's measured 3µ-CMOS constants ("figures derived from our
    /// actual layouts", §6.1): `D = 8`, `Π = 72`, `B = 576×10⁻⁶`,
    /// `Γ = 19.4×10⁻³`, `E = 3`, `F = 10 MHz`.
    pub fn paper_1987() -> Self {
        Technology { d_bits: 8, pins: 72, b: 576e-6, g: 19.4e-3, e_bits: 3, clock_hz: 10e6 }
    }

    /// A scaled technology: feature size shrunk by `s` (> 1 is smaller
    /// features). Storage and logic areas shrink as `1/s²`; pad-limited
    /// pin count grows only as `s` — the paper's closing observation that
    /// "as feature sizes shrink … this effect will become even more
    /// dramatic" (processors get even cheaper relative to I/O).
    pub fn scaled(&self, s: f64) -> Self {
        assert!(s > 0.0);
        Technology {
            d_bits: self.d_bits,
            pins: u32_from_f64_floor(f64::from(self.pins) * s),
            b: self.b / (s * s),
            g: self.g / (s * s),
            e_bits: self.e_bits,
            clock_hz: self.clock_hz * s,
        }
    }

    /// Validates the constants (positive areas, nonzero pins/width).
    pub fn validate(&self) -> Result<(), String> {
        if self.d_bits == 0 {
            return Err("D must be positive".into());
        }
        if self.pins < 2 * self.d_bits {
            return Err(format!(
                "need at least 2D = {} pins to stream one site in and out",
                2 * self.d_bits
            ));
        }
        let positive = |v: f64| v.is_finite() && v > 0.0;
        if !positive(self.b) || !positive(self.g) {
            return Err("normalized areas must be positive".into());
        }
        if !positive(self.clock_hz) {
            return Err("clock must be positive".into());
        }
        Ok(())
    }

    /// Maximum number of storage cells that fit on an otherwise empty
    /// chip: `⌊(1 − Γ)/B⌋` cells alongside one PE.
    pub fn max_cells_with_one_pe(&self) -> usize {
        usize_from_f64_floor((ChipArea::new(1.0) - self.pe_area()).capacity(self.cell_area()))
    }

    // --- Typed accessors: the named α/β/γ conversion boundary -------------
    //
    // Model code upstream works in `core::units` quantities; these
    // accessors are the only place the scalar technology constants turn
    // into dimensioned values.

    /// `Π` as a typed pin count.
    pub fn pin_budget(&self) -> Pins {
        Pins::new(self.pins)
    }

    /// `B = β/α` — the normalized area of one shift-register cell.
    pub fn cell_area(&self) -> ChipArea {
        ChipArea::new(self.b)
    }

    /// `Γ = γ/α` — the normalized area of one processing element.
    pub fn pe_area(&self) -> ChipArea {
        ChipArea::new(self.g)
    }

    /// `F` — the engine clock.
    pub fn clock(&self) -> Hz {
        Hz::new(self.clock_hz)
    }

    /// The bits `n` sites occupy on a chip boundary (`n·D`).
    pub fn bits_for_sites(&self, sites: Sites) -> Bits {
        Bits::new(u128::from(sites.get()) * u128::from(self.d_bits))
    }

    /// The chip's streaming I/O demand for `p` sites in and `p` sites
    /// out per tick: `2·D·p` bits/tick (§6's pin constraint).
    pub fn stream_demand(&self, sites_per_tick: u32) -> BitsPerTick {
        BitsPerTick::new(f64::from(2 * self.d_bits * sites_per_tick))
    }

    /// Wall-clock time of `t` ticks at this technology's clock.
    pub fn secs(&self, t: Ticks) -> Secs {
        t.secs_at(self.clock())
    }

    /// A per-tick update rate expressed in real time (`R = rate·F`).
    pub fn per_second(&self, rate: SitesPerTick) -> SitesPerSec {
        rate * self.clock()
    }

    /// The update rate of a design retiring `updates` site updates per
    /// tick, in sites per second.
    pub fn throughput(&self, updates_per_tick: u64) -> SitesPerSec {
        self.per_second(SitesPerTick::new(f64_from_u64(updates_per_tick)))
    }
}

impl Default for Technology {
    fn default() -> Self {
        Technology::paper_1987()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_constants() {
        let t = Technology::paper_1987();
        assert_eq!(t.d_bits, 8);
        assert_eq!(t.pins, 72);
        assert!((t.b - 576e-6).abs() < 1e-12);
        assert!((t.g - 19.4e-3).abs() < 1e-12);
        assert_eq!(t.e_bits, 3);
        assert!(t.validate().is_ok());
    }

    #[test]
    fn default_is_paper() {
        assert_eq!(Technology::default(), Technology::paper_1987());
    }

    #[test]
    fn validation_catches_bad_configs() {
        let mut t = Technology::paper_1987();
        t.pins = 8;
        assert!(t.validate().is_err());
        let mut t = Technology::paper_1987();
        t.b = 0.0;
        assert!(t.validate().is_err());
        let mut t = Technology::paper_1987();
        t.d_bits = 0;
        assert!(t.validate().is_err());
        let mut t = Technology::paper_1987();
        t.clock_hz = 0.0;
        assert!(t.validate().is_err());
    }

    #[test]
    fn scaling_shrinks_area_faster_than_it_adds_pins() {
        let t = Technology::paper_1987();
        let t2 = t.scaled(2.0);
        assert_eq!(t2.pins, 144);
        assert!((t2.b - t.b / 4.0).abs() < 1e-15);
        // Cells per chip quadruple; pins only double.
        assert!(t2.max_cells_with_one_pe() > 3 * t.max_cells_with_one_pe());
    }

    #[test]
    fn max_cells_sanity() {
        let t = Technology::paper_1987();
        // (1 - 0.0194) / 576e-6 ≈ 1702.
        assert_eq!(t.max_cells_with_one_pe(), 1702);
    }

    #[test]
    fn typed_accessors_agree_with_the_scalar_constants() {
        let t = Technology::paper_1987();
        assert_eq!(t.pin_budget(), Pins::new(72));
        assert_eq!(t.cell_area().get(), 576e-6);
        assert_eq!(t.pe_area().get(), 19.4e-3);
        assert_eq!(t.clock().get(), 10e6);
        assert_eq!(t.bits_for_sites(Sites::new(785)), Bits::new(785 * 8));
        assert_eq!(t.stream_demand(4).get(), 64.0);
        // One pass of the paper's L = 785 window at P = 4:
        // t = L²/P ticks → seconds at 10 MHz.
        let pass = Ticks::new(785 * 785 / 4);
        assert!((t.secs(pass).get() - 0.0154056).abs() < 1e-12);
        assert_eq!(t.throughput(4), SitesPerSec::new(40e6));
    }

    #[test]
    fn ticks_to_secs_round_trip_is_exact_at_paper_clock() {
        // The satellite property: sites → ticks → secs and back is
        // exact at F = 10 MHz for every count the models produce.
        let t = Technology::paper_1987();
        for n in [1u64, 4, 785, 785 * 785, 785 * 785 / 4, 1 << 40] {
            let ticks = Ticks::new(n);
            assert_eq!(t.secs(ticks).ticks_at(t.clock()), ticks, "{n}");
        }
    }
}
