//! Chip technology model.

use serde::{Deserialize, Serialize};

/// The chip-level constants that parameterize every design-space
/// computation (§6 of the paper).
///
/// Areas are *normalized to the usable chip area α*: `b = β/α` is the
/// area of one site's worth of shift register, `g = γ/α` the area of one
/// PE, so a chip "fills up" when a design's normalized area reaches 1.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Technology {
    /// `D` — bits per lattice site crossing a chip boundary.
    pub d_bits: u32,
    /// `Π` — usable I/O pins per chip.
    pub pins: u32,
    /// `B = β/α` — normalized area of one site of shift-register storage.
    pub b: f64,
    /// `Γ = γ/α` — normalized area of one processing element.
    pub g: f64,
    /// `E` — bits exchanged to complete a neighborhood split across an
    /// SPA slice boundary.
    pub e_bits: u32,
    /// `F` — major cycle (clock) frequency, Hz.
    pub clock_hz: f64,
}

impl Technology {
    /// The paper's measured 3µ-CMOS constants ("figures derived from our
    /// actual layouts", §6.1): `D = 8`, `Π = 72`, `B = 576×10⁻⁶`,
    /// `Γ = 19.4×10⁻³`, `E = 3`, `F = 10 MHz`.
    pub fn paper_1987() -> Self {
        Technology { d_bits: 8, pins: 72, b: 576e-6, g: 19.4e-3, e_bits: 3, clock_hz: 10e6 }
    }

    /// A scaled technology: feature size shrunk by `s` (> 1 is smaller
    /// features). Storage and logic areas shrink as `1/s²`; pad-limited
    /// pin count grows only as `s` — the paper's closing observation that
    /// "as feature sizes shrink … this effect will become even more
    /// dramatic" (processors get even cheaper relative to I/O).
    pub fn scaled(&self, s: f64) -> Self {
        assert!(s > 0.0);
        Technology {
            d_bits: self.d_bits,
            pins: ((self.pins as f64) * s).floor() as u32,
            b: self.b / (s * s),
            g: self.g / (s * s),
            e_bits: self.e_bits,
            clock_hz: self.clock_hz * s,
        }
    }

    /// Validates the constants (positive areas, nonzero pins/width).
    pub fn validate(&self) -> Result<(), String> {
        if self.d_bits == 0 {
            return Err("D must be positive".into());
        }
        if self.pins < 2 * self.d_bits {
            return Err(format!(
                "need at least 2D = {} pins to stream one site in and out",
                2 * self.d_bits
            ));
        }
        let positive = |v: f64| v.is_finite() && v > 0.0;
        if !positive(self.b) || !positive(self.g) {
            return Err("normalized areas must be positive".into());
        }
        if !positive(self.clock_hz) {
            return Err("clock must be positive".into());
        }
        Ok(())
    }

    /// Maximum number of storage cells that fit on an otherwise empty
    /// chip: `⌊(1 − Γ)/B⌋` cells alongside one PE.
    pub fn max_cells_with_one_pe(&self) -> usize {
        ((1.0 - self.g) / self.b).floor() as usize
    }
}

impl Default for Technology {
    fn default() -> Self {
        Technology::paper_1987()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_constants() {
        let t = Technology::paper_1987();
        assert_eq!(t.d_bits, 8);
        assert_eq!(t.pins, 72);
        assert!((t.b - 576e-6).abs() < 1e-12);
        assert!((t.g - 19.4e-3).abs() < 1e-12);
        assert_eq!(t.e_bits, 3);
        assert!(t.validate().is_ok());
    }

    #[test]
    fn default_is_paper() {
        assert_eq!(Technology::default(), Technology::paper_1987());
    }

    #[test]
    fn validation_catches_bad_configs() {
        let mut t = Technology::paper_1987();
        t.pins = 8;
        assert!(t.validate().is_err());
        let mut t = Technology::paper_1987();
        t.b = 0.0;
        assert!(t.validate().is_err());
        let mut t = Technology::paper_1987();
        t.d_bits = 0;
        assert!(t.validate().is_err());
        let mut t = Technology::paper_1987();
        t.clock_hz = 0.0;
        assert!(t.validate().is_err());
    }

    #[test]
    fn scaling_shrinks_area_faster_than_it_adds_pins() {
        let t = Technology::paper_1987();
        let t2 = t.scaled(2.0);
        assert_eq!(t2.pins, 144);
        assert!((t2.b - t.b / 4.0).abs() < 1e-15);
        // Cells per chip quadruple; pins only double.
        assert!(t2.max_cells_with_one_pe() > 3 * t.max_cells_with_one_pe());
    }

    #[test]
    fn max_cells_sanity() {
        let t = Technology::paper_1987();
        // (1 - 0.0194) / 576e-6 ≈ 1702.
        assert_eq!(t.max_cells_with_one_pe(), 1702);
    }
}
