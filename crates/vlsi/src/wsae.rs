//! WSA-E: the extensible wide-serial variant — §6.3.
//!
//! "The extension can be accomplished by moving a portion of the shift
//! register off chip. The pin constraints given previously, with the same
//! constants, allow only one processor per chip in this case. A stage in
//! the pipeline consists of a processor chip and associated shift
//! registers sufficient to hold the remainder of the 2L + 10 node values
//! which do not fit onto the processor chip."
//!
//! WSA-E trades silicon for extensibility: its bandwidth demand is a
//! constant `2D = 16` bits/tick regardless of lattice size, but its area
//! per stage grows linearly with `L` — the exact mirror image of SPA,
//! whose per-chip area is constant but whose bandwidth grows linearly
//! with `L`. §6.3's summary comparison at `L = 1000`: "WSA-E requires
//! about twice as much area as SPA, while requiring about one twentieth
//! as much bandwidth."

use crate::tech::Technology;
use lattice_core::units::{BitsPerTick, Cells, ChipArea, SitesPerSec};
use serde::{Deserialize, Serialize};

/// A WSA-E pipeline stage design (always one PE per chip).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct WsaeDesign {
    /// Lattice side supported (any; that is the point).
    pub l: u32,
    /// Total delay cells per stage: `2L + 10`.
    pub cells: Cells,
    /// Delay cells that fit on the processor chip itself.
    pub cells_on_chip: Cells,
    /// Delay cells in external shift-register packages.
    pub cells_off_chip: Cells,
    /// Total normalized area per stage: processor chip (1) plus external
    /// storage at `B` per cell.
    pub stage_area: ChipArea,
    /// Main-memory bandwidth demand (constant `2D`).
    pub bandwidth: BitsPerTick,
}

/// The WSA-E design model.
#[derive(Debug, Clone, Copy)]
pub struct Wsae {
    tech: Technology,
}

impl Wsae {
    /// Creates the model.
    pub fn new(tech: Technology) -> Self {
        Wsae { tech }
    }

    /// The technology in effect.
    pub fn tech(&self) -> &Technology {
        &self.tech
    }

    /// PEs per chip under the doubled pin load of off-chip shift
    /// registers: the pipeline path costs `2D` pins and the SR loop
    /// another `4D`, so `P ≤ Π/6D` — 1 with the paper's constants
    /// ("allow only one processor per chip in this case").
    pub fn p_per_chip(&self) -> u32 {
        (self.tech.pins / (6 * self.tech.d_bits)).max(1)
    }

    /// Delay cells per stage for lattice side `l`: `2L + 10`.
    pub fn cells(&self, l: u32) -> Cells {
        Cells::new(2 * u64::from(l) + 10)
    }

    /// Storage area per processor in normalized units, the paper's
    /// "(2L + 10)B storage area per processor".
    pub fn storage_area_per_pe(&self, l: u32) -> ChipArea {
        self.tech.cell_area().times_cells(self.cells(l))
    }

    /// Builds the stage design for lattice side `l`.
    ///
    /// The processor chip hosts as much of the window as fits beside the
    /// PE; the remainder moves to external shift registers. Stage area
    /// counts the full processor chip plus the *entire* delay storage at
    /// `B` per cell (external SR silicon is not free), which is the
    /// conservative reading behind §6.3's "about twice as much area".
    pub fn design(&self, l: u32) -> WsaeDesign {
        let cells = self.cells(l);
        let capacity = Cells::new(u64::try_from(self.tech.max_cells_with_one_pe()).unwrap_or(0));
        let on = cells.min(capacity);
        let off = cells - on;
        WsaeDesign {
            l,
            cells,
            cells_on_chip: on,
            cells_off_chip: off,
            stage_area: ChipArea::new(1.0) + self.tech.cell_area().times_cells(cells),
            bandwidth: self.tech.stream_demand(1),
        }
    }

    /// System throughput for `n` stages (each one PE): `R = F·n` site
    /// updates per second.
    pub fn throughput(&self, n_stages: u32) -> SitesPerSec {
        self.tech.throughput(u64::from(n_stages))
    }

    /// Total system area for `n` stages at lattice side `l`.
    pub fn system_area(&self, n_stages: u32, l: u32) -> ChipArea {
        self.design(l).stage_area * f64::from(n_stages)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn paper() -> Wsae {
        Wsae::new(Technology::paper_1987())
    }

    #[test]
    fn one_pe_per_chip() {
        // Π/6D = 72/48 = 1.5 → 1 ("only one processor per chip").
        assert_eq!(paper().p_per_chip(), 1);
    }

    #[test]
    fn bandwidth_is_constant_16_bits() {
        // §6.3: "WSA-E has a constant bandwidth requirement of 16 bits
        // per clock tick".
        for l in [100u32, 785, 1000, 5000] {
            assert_eq!(paper().design(l).bandwidth, BitsPerTick::new(16.0));
        }
    }

    #[test]
    fn storage_formula() {
        let w = paper();
        let d = w.design(1000);
        assert_eq!(d.cells, Cells::new(2010));
        assert!((w.storage_area_per_pe(1000).get() - 2010.0 * 576e-6).abs() < 1e-12);
        // ≈ 1.16 chip areas of pure storage per processor.
        assert!((d.stage_area.get() - 2.158).abs() < 0.01);
    }

    #[test]
    fn overflow_cells_move_off_chip() {
        let w = paper();
        // Small lattice: everything fits on chip.
        let d = w.design(100);
        assert_eq!(d.cells_off_chip, Cells::ZERO);
        assert_eq!(d.cells_on_chip, Cells::new(210));
        // Large lattice: capacity 1702 cells, the rest off-chip.
        let d = w.design(1000);
        assert_eq!(d.cells_on_chip, Cells::new(1702));
        assert_eq!(d.cells_off_chip, Cells::new(2010 - 1702));
    }

    #[test]
    fn unbounded_lattice_sizes_are_supported() {
        // WSA proper caps at L ≈ 846; WSA-E does not.
        let w = paper();
        let d = w.design(100_000);
        assert!(d.stage_area > ChipArea::new(100.0));
        assert_eq!(d.bandwidth, BitsPerTick::new(16.0));
    }

    #[test]
    fn throughput_and_area_scale_with_stages() {
        let w = paper();
        assert!((w.throughput(12).get() - 120e6).abs() < 1.0);
        let ten = w.system_area(10, 1000);
        assert!((ten.get() - 10.0 * w.design(1000).stage_area.get()).abs() < 1e-9);
    }
}
