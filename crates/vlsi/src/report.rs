//! Machine-readable design reports.
//!
//! A tiny hand-rolled JSON emitter (the workspace's dependency policy
//! admits `serde` for derives but no serializer crate), sufficient for
//! the flat numeric records this crate produces. Keys are emitted in a
//! stable order so reports diff cleanly across runs.

use crate::compare::{ArchComparison, WsaeSpaComparison};
use crate::spa::SpaDesign;
use crate::tech::Technology;
use crate::wsa::WsaDesign;
use crate::wsae::WsaeDesign;
use lattice_core::units::{u64_from_f64_floor, BitsPerTick};

/// A flat JSON object under construction.
#[derive(Debug, Default, Clone)]
pub struct JsonObject {
    fields: Vec<(String, String)>,
}

impl JsonObject {
    /// Creates an empty object.
    pub fn new() -> Self {
        JsonObject::default()
    }

    /// Adds an integer field.
    pub fn int(mut self, key: &str, v: impl Into<i128>) -> Self {
        self.fields.push((key.into(), v.into().to_string()));
        self
    }

    /// Adds a float field (finite values only; NaN/inf become null).
    pub fn float(mut self, key: &str, v: f64) -> Self {
        let s = if v.is_finite() { format!("{v}") } else { "null".into() };
        self.fields.push((key.into(), s));
        self
    }

    /// Adds a string field (escaped).
    pub fn string(mut self, key: &str, v: &str) -> Self {
        let escaped: String = v
            .chars()
            .flat_map(|c| match c {
                '"' => vec!['\\', '"'],
                '\\' => vec!['\\', '\\'],
                '\n' => vec!['\\', 'n'],
                c if u32::from(c) < 0x20 => format!("\\u{:04x}", u32::from(c)).chars().collect(),
                c => vec![c],
            })
            .collect();
        self.fields.push((key.into(), format!("\"{escaped}\"")));
        self
    }

    /// Adds a nested object.
    pub fn object(mut self, key: &str, v: JsonObject) -> Self {
        self.fields.push((key.into(), v.render()));
        self
    }

    /// Renders the object.
    pub fn render(&self) -> String {
        let body: Vec<String> = self.fields.iter().map(|(k, v)| format!("\"{k}\":{v}")).collect();
        format!("{{{}}}", body.join(","))
    }
}

/// JSON for a technology record.
pub fn technology_json(t: &Technology) -> JsonObject {
    JsonObject::new()
        .int("d_bits", i128::from(t.d_bits))
        .int("pins", i128::from(t.pins))
        .float("b", t.b)
        .float("g", t.g)
        .int("e_bits", i128::from(t.e_bits))
        .float("clock_hz", t.clock_hz)
}

/// A bandwidth quantity as the integer bits/tick the reports print
/// (every design bandwidth in this crate is a whole number of bits).
fn bandwidth_int(b: BitsPerTick) -> i128 {
    i128::from(u64_from_f64_floor(b.get()))
}

/// JSON for a WSA design point.
pub fn wsa_json(d: &WsaDesign) -> JsonObject {
    JsonObject::new()
        .string("arch", "wsa")
        .int("p", i128::from(d.p))
        .int("l", i128::from(d.l))
        .float("area_used", d.area_used.get())
        .int("pins_used", i128::from(d.pins_used.get()))
        .int("cells", i128::from(d.cells.get()))
        .int("bandwidth_bits_per_tick", bandwidth_int(d.bandwidth))
}

/// JSON for an SPA design point.
pub fn spa_json(d: &SpaDesign) -> JsonObject {
    JsonObject::new()
        .string("arch", "spa")
        .int("w", i128::from(d.w))
        .int("p_w", i128::from(d.p_w))
        .int("p_k", i128::from(d.p_k))
        .int("p", i128::from(d.p))
        .float("area_used", d.area_used.get())
        .int("pins_used", i128::from(d.pins_used.get()))
        .int("cells", i128::from(d.cells.get()))
}

/// JSON for a WSA-E stage design.
pub fn wsae_json(d: &WsaeDesign) -> JsonObject {
    JsonObject::new()
        .string("arch", "wsae")
        .int("l", i128::from(d.l))
        .int("cells", i128::from(d.cells.get()))
        .int("cells_on_chip", i128::from(d.cells_on_chip.get()))
        .int("cells_off_chip", i128::from(d.cells_off_chip.get()))
        .float("stage_area", d.stage_area.get())
        .int("bandwidth_bits_per_tick", bandwidth_int(d.bandwidth))
}

/// JSON for the §6.3 optimized comparison.
pub fn comparison_json(c: &ArchComparison) -> JsonObject {
    JsonObject::new()
        .int("l", i128::from(c.l))
        .object("wsa", wsa_json(&c.wsa))
        .object("spa", spa_json(&c.spa))
        .float("speedup_per_chip", c.speedup_per_chip)
        .int("wsa_bandwidth", bandwidth_int(c.wsa_bandwidth))
        .int("spa_bandwidth", bandwidth_int(c.spa_bandwidth))
        .float("bandwidth_ratio", c.bandwidth_ratio)
}

/// JSON for the WSA-E vs SPA comparison.
pub fn wsae_spa_json(c: &WsaeSpaComparison) -> JsonObject {
    JsonObject::new()
        .int("l", i128::from(c.l))
        .object("wsae", wsae_json(&c.wsae))
        .object("spa", spa_json(&c.spa))
        .float("speedup_per_chip", c.speedup_per_chip)
        .float("area_ratio", c.area_ratio)
        .float("bandwidth_ratio", c.bandwidth_ratio)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{optimized_comparison, wsae_vs_spa};

    #[test]
    fn object_rendering() {
        let o = JsonObject::new()
            .int("a", 1)
            .float("b", 2.5)
            .string("c", "x\"y\\z\nw")
            .object("d", JsonObject::new().int("e", -3));
        assert_eq!(o.render(), "{\"a\":1,\"b\":2.5,\"c\":\"x\\\"y\\\\z\\nw\",\"d\":{\"e\":-3}}");
    }

    #[test]
    fn non_finite_floats_become_null() {
        let o = JsonObject::new().float("x", f64::NAN).float("y", f64::INFINITY);
        assert_eq!(o.render(), "{\"x\":null,\"y\":null}");
    }

    #[test]
    fn design_reports_render_and_contain_paper_numbers() {
        let t = Technology::paper_1987();
        let cmp = optimized_comparison(t);
        let json = comparison_json(&cmp).render();
        assert!(json.contains("\"l\":785"));
        assert!(json.contains("\"p\":4"));
        assert!(json.contains("\"p\":12"));
        assert!(json.contains("\"speedup_per_chip\":3"));
        let j2 = wsae_spa_json(&wsae_vs_spa(t, 1000)).render();
        assert!(j2.contains("\"cells\":2010"));
        let j3 = technology_json(&t).render();
        assert!(j3.contains("\"pins\":72"));
    }

    #[test]
    fn json_is_parseable_shape() {
        // Sanity: balanced braces and quotes (we don't ship a parser,
        // but malformed output would break downstream tooling).
        let t = Technology::paper_1987();
        let json = comparison_json(&optimized_comparison(t)).render();
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        assert_eq!(json.matches('"').count() % 2, 0);
        assert!(json.starts_with('{') && json.ends_with('}'));
    }

    #[test]
    fn control_characters_are_escaped() {
        let o = JsonObject::new().string("k", "a\u{01}b");
        assert_eq!(o.render(), "{\"k\":\"a\\u0001b\"}");
    }
}
