//! Machine-readable design reports.
//!
//! A tiny hand-rolled JSON emitter (the workspace's dependency policy
//! admits `serde` for derives but no serializer crate), sufficient for
//! the flat numeric records this crate produces. Keys are emitted in a
//! stable order so reports diff cleanly across runs.

use crate::compare::{ArchComparison, WsaeSpaComparison};
use crate::spa::SpaDesign;
use crate::tech::Technology;
use crate::wsa::WsaDesign;
use crate::wsae::WsaeDesign;

/// A flat JSON object under construction.
#[derive(Debug, Default, Clone)]
pub struct JsonObject {
    fields: Vec<(String, String)>,
}

impl JsonObject {
    /// Creates an empty object.
    pub fn new() -> Self {
        JsonObject::default()
    }

    /// Adds an integer field.
    pub fn int(mut self, key: &str, v: impl Into<i128>) -> Self {
        self.fields.push((key.into(), v.into().to_string()));
        self
    }

    /// Adds a float field (finite values only; NaN/inf become null).
    pub fn float(mut self, key: &str, v: f64) -> Self {
        let s = if v.is_finite() { format!("{v}") } else { "null".into() };
        self.fields.push((key.into(), s));
        self
    }

    /// Adds a string field (escaped).
    pub fn string(mut self, key: &str, v: &str) -> Self {
        let escaped: String = v
            .chars()
            .flat_map(|c| match c {
                '"' => vec!['\\', '"'],
                '\\' => vec!['\\', '\\'],
                '\n' => vec!['\\', 'n'],
                c if (c as u32) < 0x20 => format!("\\u{:04x}", c as u32).chars().collect(),
                c => vec![c],
            })
            .collect();
        self.fields.push((key.into(), format!("\"{escaped}\"")));
        self
    }

    /// Adds a nested object.
    pub fn object(mut self, key: &str, v: JsonObject) -> Self {
        self.fields.push((key.into(), v.render()));
        self
    }

    /// Renders the object.
    pub fn render(&self) -> String {
        let body: Vec<String> = self.fields.iter().map(|(k, v)| format!("\"{k}\":{v}")).collect();
        format!("{{{}}}", body.join(","))
    }
}

/// JSON for a technology record.
pub fn technology_json(t: &Technology) -> JsonObject {
    JsonObject::new()
        .int("d_bits", t.d_bits as i128)
        .int("pins", t.pins as i128)
        .float("b", t.b)
        .float("g", t.g)
        .int("e_bits", t.e_bits as i128)
        .float("clock_hz", t.clock_hz)
}

/// JSON for a WSA design point.
pub fn wsa_json(d: &WsaDesign) -> JsonObject {
    JsonObject::new()
        .string("arch", "wsa")
        .int("p", d.p as i128)
        .int("l", d.l as i128)
        .float("area_used", d.area_used)
        .int("pins_used", d.pins_used as i128)
        .int("cells", d.cells as i128)
        .int("bandwidth_bits_per_tick", d.bandwidth_bits_per_tick as i128)
}

/// JSON for an SPA design point.
pub fn spa_json(d: &SpaDesign) -> JsonObject {
    JsonObject::new()
        .string("arch", "spa")
        .int("w", d.w as i128)
        .int("p_w", d.p_w as i128)
        .int("p_k", d.p_k as i128)
        .int("p", d.p as i128)
        .float("area_used", d.area_used)
        .int("pins_used", d.pins_used as i128)
        .int("cells", d.cells as i128)
}

/// JSON for a WSA-E stage design.
pub fn wsae_json(d: &WsaeDesign) -> JsonObject {
    JsonObject::new()
        .string("arch", "wsae")
        .int("l", d.l as i128)
        .int("cells", d.cells as i128)
        .int("cells_on_chip", d.cells_on_chip as i128)
        .int("cells_off_chip", d.cells_off_chip as i128)
        .float("stage_area", d.stage_area)
        .int("bandwidth_bits_per_tick", d.bandwidth_bits_per_tick as i128)
}

/// JSON for the §6.3 optimized comparison.
pub fn comparison_json(c: &ArchComparison) -> JsonObject {
    JsonObject::new()
        .int("l", c.l as i128)
        .object("wsa", wsa_json(&c.wsa))
        .object("spa", spa_json(&c.spa))
        .float("speedup_per_chip", c.speedup_per_chip)
        .int("wsa_bandwidth", c.wsa_bandwidth as i128)
        .int("spa_bandwidth", c.spa_bandwidth as i128)
        .float("bandwidth_ratio", c.bandwidth_ratio)
}

/// JSON for the WSA-E vs SPA comparison.
pub fn wsae_spa_json(c: &WsaeSpaComparison) -> JsonObject {
    JsonObject::new()
        .int("l", c.l as i128)
        .object("wsae", wsae_json(&c.wsae))
        .object("spa", spa_json(&c.spa))
        .float("speedup_per_chip", c.speedup_per_chip)
        .float("area_ratio", c.area_ratio)
        .float("bandwidth_ratio", c.bandwidth_ratio)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{optimized_comparison, wsae_vs_spa};

    #[test]
    fn object_rendering() {
        let o = JsonObject::new()
            .int("a", 1)
            .float("b", 2.5)
            .string("c", "x\"y\\z\nw")
            .object("d", JsonObject::new().int("e", -3));
        assert_eq!(o.render(), "{\"a\":1,\"b\":2.5,\"c\":\"x\\\"y\\\\z\\nw\",\"d\":{\"e\":-3}}");
    }

    #[test]
    fn non_finite_floats_become_null() {
        let o = JsonObject::new().float("x", f64::NAN).float("y", f64::INFINITY);
        assert_eq!(o.render(), "{\"x\":null,\"y\":null}");
    }

    #[test]
    fn design_reports_render_and_contain_paper_numbers() {
        let t = Technology::paper_1987();
        let cmp = optimized_comparison(t);
        let json = comparison_json(&cmp).render();
        assert!(json.contains("\"l\":785"));
        assert!(json.contains("\"p\":4"));
        assert!(json.contains("\"p\":12"));
        assert!(json.contains("\"speedup_per_chip\":3"));
        let j2 = wsae_spa_json(&wsae_vs_spa(t, 1000)).render();
        assert!(j2.contains("\"cells\":2010"));
        let j3 = technology_json(&t).render();
        assert!(j3.contains("\"pins\":72"));
    }

    #[test]
    fn json_is_parseable_shape() {
        // Sanity: balanced braces and quotes (we don't ship a parser,
        // but malformed output would break downstream tooling).
        let t = Technology::paper_1987();
        let json = comparison_json(&optimized_comparison(t)).render();
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        assert_eq!(json.matches('"').count() % 2, 0);
        assert!(json.starts_with('{') && json.ends_with('}'));
    }

    #[test]
    fn control_characters_are_escaped() {
        let o = JsonObject::new().string("k", "a\u{01}b");
        assert_eq!(o.render(), "{\"k\":\"a\\u0001b\"}");
    }
}
