//! Competing 1987 architectures — the comparison §8 promises.
//!
//! "We will apply these estimates to get quantitative comparisons
//! between competing architectures for lattice gas computations such as
//! the Connection Machine, the CRAY-XMP, and special purpose machines."
//!
//! Each competitor is a coarse two-constraint model — exactly the
//! paper's own methodology applied outward: a machine delivers
//! `min(compute rate, memory-bound rate)` site updates per second,
//! where the compute rate is `processors × clock / ops-per-update` and
//! the memory-bound rate is `bandwidth / bytes-touched-per-update`.
//! The parameters are period-published machine specs plus an honest
//! per-update operation estimate for a 7-bit FHP site; absolute numbers
//! are indicative (± a small factor), the *shape* — which constraint
//! binds — is the point.

use lattice_core::units::{f64_from_u64, SitesPerSec};
use serde::{Deserialize, Serialize};

/// A coarse machine model for lattice-gas updating.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BulkMachine {
    /// Machine name.
    pub name: String,
    /// Concurrent processing elements.
    pub processors: u64,
    /// Clock rate, Hz.
    pub clock_hz: f64,
    /// Machine operations per site update (bit-ops for bit-serial
    /// machines, vector-element ops for vector machines).
    pub ops_per_update: f64,
    /// Sustainable memory bandwidth, bytes/s.
    pub mem_bytes_per_sec: f64,
    /// Bytes of memory touched per site update (read + write).
    pub bytes_per_update: f64,
}

impl BulkMachine {
    /// Compute-bound update rate.
    pub fn compute_rate(&self) -> SitesPerSec {
        SitesPerSec::new(f64_from_u64(self.processors) * self.clock_hz / self.ops_per_update)
    }

    /// Memory-bound update rate.
    pub fn memory_rate(&self) -> SitesPerSec {
        SitesPerSec::new(self.mem_bytes_per_sec / self.bytes_per_update)
    }

    /// Deliverable rate: the binding constraint.
    pub fn updates_per_second(&self) -> SitesPerSec {
        self.compute_rate().min(self.memory_rate())
    }

    /// Which constraint binds.
    pub fn memory_bound(&self) -> bool {
        self.memory_rate() <= self.compute_rate()
    }

    /// The Connection Machine CM-1 (1986): 65,536 one-bit PEs at 4 MHz.
    /// An FHP collide+stream in bit-serial logic costs on the order of
    /// 100 bit-ops; each PE owns its sites in local 4 Kbit memories, so
    /// memory is effectively co-located (bandwidth generous).
    pub fn cm1() -> Self {
        BulkMachine {
            name: "Connection Machine CM-1".into(),
            processors: 65_536,
            clock_hz: 4e6,
            ops_per_update: 100.0,
            // 64K PEs × ~1 bit/cycle × 4 MHz ≈ 32 GB/s aggregate local.
            mem_bytes_per_sec: 32e9,
            bytes_per_update: 2.0,
        }
    }

    /// A CRAY X-MP processor (1985-era): ~105 MHz vector unit. A
    /// table-driven FHP update vectorizes to roughly 10 vector-element
    /// operations per site (gather, two table lookups, shifts, merges);
    /// the memory system streams ~3 words/cycle.
    pub fn cray_xmp() -> Self {
        BulkMachine {
            name: "CRAY X-MP (1 CPU)".into(),
            processors: 1,
            clock_hz: 105e6,
            ops_per_update: 10.0,
            mem_bytes_per_sec: 3.0 * 8.0 * 105e6,
            bytes_per_update: 2.0,
        }
    }

    /// A 1987 scientific workstation (the paper's host): a ~16 MHz CPU
    /// running a tight table-lookup update (~a dozen instructions per
    /// site), behind the ~2 MB/s bus whose bandwidth is what §8's
    /// realized 1 M updates/s actually measures.
    pub fn workstation_1987() -> Self {
        BulkMachine {
            name: "1987 workstation".into(),
            processors: 1,
            clock_hz: 16e6,
            ops_per_update: 12.0,
            mem_bytes_per_sec: 2e6,
            bytes_per_update: 2.0,
        }
    }
}

/// The lattice engines as bulk machines, for the same table: an
/// `n_chips`-deep WSA system and an SPA system of the same chip count at
/// their §6 corners (one update per PE per tick; the "ops" abstraction
/// collapses because the PE *is* the update).
pub fn wsa_system(tech: crate::Technology, n_chips: u32) -> BulkMachine {
    let corner = crate::wsa::Wsa::new(tech).corner();
    BulkMachine {
        name: format!("WSA, {n_chips} chips"),
        processors: u64::from(corner.p) * u64::from(n_chips),
        clock_hz: tech.clock_hz,
        ops_per_update: 1.0,
        // One stream in + out at D bits per site per tick…
        mem_bytes_per_sec: corner.bandwidth.get() / 8.0 * tech.clock_hz,
        // …amortized over the pipeline depth: each fetched site is
        // updated once per chip in the chain. This is the architectural
        // point — depth converts storage into bandwidth relief.
        bytes_per_update: 2.0 * f64::from(tech.d_bits) / 8.0 / f64::from(n_chips),
    }
}

/// SPA counterpart of [`wsa_system`].
pub fn spa_system(tech: crate::Technology, n_chips: u32, l: u32) -> BulkMachine {
    let spa = crate::spa::Spa::new(tech);
    let chip = spa.corner();
    // Chips tile the slice columns first; the rest stack pipeline depth.
    let chip_cols = spa.slices(l, chip.w).div_ceil(chip.p_w).max(1);
    let depth = (n_chips / chip_cols).max(1) * chip.p_k;
    BulkMachine {
        name: format!("SPA, {n_chips} chips"),
        processors: u64::from(chip.p) * u64::from(n_chips),
        clock_hz: tech.clock_hz,
        ops_per_update: 1.0,
        mem_bytes_per_sec: spa.bandwidth(l, chip.w).get() / 8.0 * tech.clock_hz,
        bytes_per_update: 2.0 * f64::from(tech.d_bits) / 8.0 / f64::from(depth),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Technology;

    #[test]
    fn cm1_is_compute_bound_in_the_megasite_range() {
        let cm = BulkMachine::cm1();
        // 65536 × 4 MHz / 100 ≈ 2.6 G updates/s compute-bound; its local
        // memories keep up, so compute binds.
        assert!(!cm.memory_bound());
        let r = cm.updates_per_second().get();
        assert!((1e9..1e10).contains(&r), "{r}");
    }

    #[test]
    fn cray_is_order_10m_updates() {
        let cray = BulkMachine::cray_xmp();
        let r = cray.updates_per_second().get();
        assert!((1e6..1e8).contains(&r), "{r}");
    }

    #[test]
    fn workstation_matches_paper_realized_rate() {
        // §8: "approximately 1 million site-updates/sec" — the host's
        // 2 MB/s bus at 2 bytes/update is exactly memory-bound at 1 M.
        let ws = BulkMachine::workstation_1987();
        assert!(ws.memory_bound());
        let r = ws.updates_per_second().get();
        assert!((r - 1e6).abs() < 2e5, "{r}");
    }

    #[test]
    fn engines_balance_compute_and_memory() {
        // The §6 designs sit exactly at the balance point: the memory
        // system is sized to the PE count (the analysis's full-bandwidth
        // assumption), so neither constraint slackens.
        let tech = Technology::paper_1987();
        let wsa = wsa_system(tech, 8);
        let ratio = wsa.compute_rate().ratio(wsa.memory_rate());
        assert!((0.9..=1.1).contains(&ratio), "{ratio}");
        // A full-depth (L-chip) WSA machine lands in CRAY territory with
        // 1987 custom silicon.
        let deep = wsa_system(tech, 785);
        assert!(deep.compute_rate() > BulkMachine::cray_xmp().updates_per_second());
    }

    #[test]
    fn spa_buys_rate_with_bandwidth() {
        let tech = Technology::paper_1987();
        let spa = spa_system(tech, 8, 785);
        let wsa = wsa_system(tech, 8);
        assert!(spa.compute_rate() > wsa.compute_rate());
        assert!(spa.mem_bytes_per_sec > wsa.mem_bytes_per_sec);
    }
}
