//! # lattice-vlsi
//!
//! The paper's §6 design-space analysis as an executable model: chip
//! technology constants, pin/area constraint systems for the WSA, SPA,
//! and WSA-E architectures, design-curve samplers, optimal operating
//! point solvers, and the §6.3 architecture comparisons.
//!
//! All quantities follow the paper's notation:
//!
//! | symbol | meaning |
//! |--------|---------|
//! | `N`    | total number of chips |
//! | `P`    | processing elements per chip |
//! | `k`    | pipeline depth in PEs |
//! | `F`    | major cycle (clock) frequency |
//! | `D`    | bits per lattice site |
//! | `L`    | sites along an edge of the square lattice |
//! | `Π`    | usable I/O pins per chip |
//! | `β`    | area of one site's shift register; `B = β/α` |
//! | `γ`    | area of one PE; `Γ = γ/α` |
//! | `α`    | usable chip area (normalizer) |
//! | `W`    | SPA slice width |
//! | `E`    | bits to complete a neighborhood across a slice boundary |
//!
//! The defaults in [`Technology::paper_1987`] are the paper's measured
//! 3µ-CMOS layout constants (`D = 8`, `Π = 72`, `B = 576·10⁻⁶`,
//! `Γ = 19.4·10⁻³`, `E = 3`, `F = 10 MHz`), which reproduce the published
//! operating points: WSA `P ≈ 4, L ≈ 785`; SPA `P ≈ 13.5, W ≈ 43`
//! (12 PEs/chip after integer rounding).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod ablation;
pub mod compare;
pub mod competitors;
pub mod farm;
pub mod report;
pub mod spa;
pub mod tech;
pub mod wsa;
pub mod wsae;

pub use compare::{optimized_comparison, wsae_vs_spa, ArchComparison, WsaeSpaComparison};
pub use farm::{FarmModel, FarmPoint, LinkBudget, LinkTier};
pub use spa::SpaDesign;
pub use tech::Technology;
pub use wsa::WsaDesign;
pub use wsae::WsaeDesign;
