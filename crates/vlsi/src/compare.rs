//! Architecture comparisons — §6.3 of the paper.
//!
//! Two viewpoints, as in the paper:
//!
//! 1. [`optimized_comparison`] — both architectures at their
//!    throughput-optimal operating points, same chip count: SPA is
//!    `12/4 = 3×` faster per chip but needs ≈ 4× the main-memory
//!    bandwidth (paper: 262 vs 64 bits/tick).
//! 2. [`wsae_vs_spa`] — the extensible variants across lattice sizes at
//!    the *same chip count*: SPA is `12×` faster; at `L = 1000` WSA-E
//!    needs ≈ 2× the area and ≈ 1/20 the bandwidth.

use crate::spa::{Spa, SpaDesign};
use crate::tech::Technology;
use crate::wsa::{Wsa, WsaDesign};
use crate::wsae::{Wsae, WsaeDesign};
use lattice_core::units::{BitsPerTick, ChipArea};
use serde::{Deserialize, Serialize};

/// The §6.3 optimized-for-throughput comparison (experiment E3).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ArchComparison {
    /// WSA corner design.
    pub wsa: WsaDesign,
    /// SPA corner design.
    pub spa: SpaDesign,
    /// Lattice side used for system-level figures (the WSA limit, since
    /// WSA cannot exceed it).
    pub l: u32,
    /// SPA-to-WSA per-chip throughput ratio (PEs per chip ratio; same
    /// clock). Paper: 3×.
    pub speedup_per_chip: f64,
    /// WSA main-memory bandwidth. Paper: 64 bits/tick.
    pub wsa_bandwidth: BitsPerTick,
    /// SPA main-memory bandwidth. Paper: 262 bits/tick (real-valued
    /// slice count); integer slices give ≈ 256–304 depending on W.
    pub spa_bandwidth: BitsPerTick,
    /// SPA-to-WSA bandwidth ratio. Paper: ≈ 4×.
    pub bandwidth_ratio: f64,
}

/// Computes the optimized comparison for a technology.
pub fn optimized_comparison(tech: Technology) -> ArchComparison {
    let wsa = Wsa::new(tech).corner();
    let spa_model = Spa::new(tech);
    let spa = spa_model.corner();
    let l = wsa.l;
    let wsa_bw = wsa.bandwidth;
    let spa_bw = spa_model.bandwidth(l, spa.w);
    ArchComparison {
        wsa,
        spa,
        l,
        speedup_per_chip: f64::from(spa.p) / f64::from(wsa.p),
        wsa_bandwidth: wsa_bw,
        spa_bandwidth: spa_bw,
        bandwidth_ratio: spa_bw.ratio(wsa_bw),
    }
}

/// The §6.3 WSA-E vs SPA scaling comparison at one lattice size
/// (experiment E4), computed at equal chip count.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct WsaeSpaComparison {
    /// Lattice side.
    pub l: u32,
    /// WSA-E stage design at this lattice size.
    pub wsae: WsaeDesign,
    /// SPA chip design (corner).
    pub spa: SpaDesign,
    /// SPA-to-WSA-E per-chip speed ratio (PEs per chip; paper: 12×).
    pub speedup_per_chip: f64,
    /// Area ratio WSA-E : SPA at equal chip count (stage area vs chip
    /// area 1). Paper at L = 1000: ≈ 2×.
    pub area_ratio: f64,
    /// Bandwidth ratio WSA-E : SPA (paper at L = 1000: ≈ 1/20).
    pub bandwidth_ratio: f64,
    /// WSA-E per-processor storage area, normalized (`(2L+10)·B`).
    pub wsae_storage_per_pe: ChipArea,
    /// SPA per-processor area, normalized (`(2W+9)·B + Γ`).
    pub spa_area_per_pe: ChipArea,
}

/// Computes the WSA-E vs SPA comparison at lattice side `l`.
pub fn wsae_vs_spa(tech: Technology, l: u32) -> WsaeSpaComparison {
    let wsae = Wsae::new(tech).design(l);
    let spa_model = Spa::new(tech);
    let spa = spa_model.corner();
    let spa_bw = spa_model.bandwidth(l, spa.w);
    WsaeSpaComparison {
        l,
        wsae,
        spa,
        speedup_per_chip: f64::from(spa.p),
        area_ratio: wsae.stage_area.ratio(ChipArea::new(1.0)),
        bandwidth_ratio: wsae.bandwidth.ratio(spa_bw),
        wsae_storage_per_pe: tech.cell_area().times_cells(wsae.cells),
        spa_area_per_pe: spa.area_used * (1.0 / f64::from(spa.p)),
    }
}

/// Which architecture a given `(throughput, lattice-size)` requirement
/// falls to — "each has its preferred operating regime in different
/// parts of the throughput vs. lattice-size plane" (§8).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Regime {
    /// WSA is feasible and satisfies the bandwidth budget: simplest
    /// system wins.
    Wsa,
    /// Lattice too large for WSA but bandwidth budget small: WSA-E.
    WsaE,
    /// High throughput per chip is worth the memory system: SPA.
    Spa,
}

/// Picks the preferred architecture for lattice side `l` under a host
/// bandwidth budget of `budget`, preferring (in order) the simplest
/// feasible system that meets `min_updates_per_tick` aggregate
/// throughput with at most `max_chips` chips.
pub fn preferred_regime(
    tech: Technology,
    l: u32,
    budget: BitsPerTick,
    min_updates_per_tick: f64,
    max_chips: u32,
) -> Option<Regime> {
    let wsa = Wsa::new(tech);
    let c = wsa.corner();
    if l <= c.l
        && c.bandwidth <= budget
        && (f64::from(c.p) * f64::from(max_chips.min(l))) >= min_updates_per_tick
    {
        return Some(Regime::Wsa);
    }
    let wsae = Wsae::new(tech).design(l);
    if wsae.bandwidth <= budget && f64::from(max_chips) >= min_updates_per_tick {
        return Some(Regime::WsaE);
    }
    let spa_model = Spa::new(tech);
    let spa = spa_model.corner();
    if spa_model.bandwidth(l, spa.w) <= budget
        && (f64::from(spa.p) * f64::from(max_chips)) >= min_updates_per_tick
    {
        return Some(Regime::Spa);
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn optimized_comparison_reproduces_section_6_3() {
        let c = optimized_comparison(Technology::paper_1987());
        // "SPA is three times faster than WSA. (SPA has twelve
        // processors per chip while WSA has four.)"
        assert_eq!(c.wsa.p, 4);
        assert_eq!(c.spa.p, 12);
        assert!((c.speedup_per_chip - 3.0).abs() < 1e-12);
        // "262 bits/tick versus 64 bits/tick" — four times the
        // bandwidth. Integer slicing puts ours in the 250–310 band.
        assert_eq!(c.wsa_bandwidth, BitsPerTick::new(64.0));
        let spa_bw = c.spa_bandwidth.get();
        assert!((250.0..=310.0).contains(&spa_bw), "spa bandwidth {spa_bw}");
        assert!((3.5..=5.0).contains(&c.bandwidth_ratio), "{}", c.bandwidth_ratio);
        assert_eq!(c.l, 785);
    }

    #[test]
    fn wsae_vs_spa_at_l1000_matches_paper() {
        let c = wsae_vs_spa(Technology::paper_1987(), 1000);
        // "the SPA system is twelve times faster than WSA-E because it
        // has twelve processors per chip as opposed to one".
        assert!((c.speedup_per_chip - 12.0).abs() < 1e-12);
        // "WSA-E requires about twice as much area as SPA" (same chips).
        assert!((1.8..=2.4).contains(&c.area_ratio), "area ratio {}", c.area_ratio);
        // "while requiring about one twentieth as much bandwidth".
        assert!(
            (1.0 / 25.0..=1.0 / 14.0).contains(&c.bandwidth_ratio),
            "bw ratio {}",
            c.bandwidth_ratio
        );
        // Per-PE figures from the paper's formulas.
        assert!((c.wsae_storage_per_pe.get() - 2010.0 * 576e-6).abs() < 1e-9);
        assert!(c.spa_area_per_pe < ChipArea::new(0.09));
    }

    #[test]
    fn area_and_bandwidth_penalties_grow_linearly_with_l() {
        let t = Technology::paper_1987();
        let a = wsae_vs_spa(t, 500);
        let b = wsae_vs_spa(t, 2000);
        // WSA-E area per stage grows with L...
        assert!(b.wsae.stage_area > a.wsae.stage_area * 2.0);
        // ...while its bandwidth is flat and SPA's grows.
        assert_eq!(a.wsae.bandwidth, b.wsae.bandwidth);
        assert!(b.bandwidth_ratio < a.bandwidth_ratio);
    }

    #[test]
    fn regimes_partition_the_plane() {
        let t = Technology::paper_1987();
        let bw = BitsPerTick::new;
        // Small lattice, modest demands → WSA.
        assert_eq!(preferred_regime(t, 500, bw(64.0), 4.0, 16), Some(Regime::Wsa));
        // Huge lattice, tiny bandwidth budget → WSA-E.
        assert_eq!(preferred_regime(t, 5000, bw(16.0), 4.0, 16), Some(Regime::WsaE));
        // Huge lattice, high per-chip speed demanded, big memory system →
        // SPA.
        assert_eq!(preferred_regime(t, 5000, bw(4000.0), 100.0, 16), Some(Regime::Spa));
        // Impossible demands → none.
        assert_eq!(preferred_regime(t, 5000, bw(8.0), 1e9, 2), None);
    }
}
