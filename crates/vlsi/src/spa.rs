//! Sternberg partitioned architecture (SPA) design space — §5 and §6.2.
//!
//! The lattice is cut into `⌈L/W⌉` columnar slices of width `W`; each
//! chip carries `P_w` slice-pipelines of depth `P_k` (so `P = P_w·P_k`
//! PEs per chip), with bidirectional synchronous side channels of `E`
//! bits completing neighborhoods across slice boundaries. Chip
//! constraints (§6.2):
//!
//! ```text
//! pins:  2·D·P_w + 2·E·P_k     ≤ Π
//! area:  ((2W + 9)·B + Γ)·P_w·P_k ≤ 1
//! ```
//!
//! System figures: `N = (L/W)/P_w · k/P_k` chips,
//! `R = F·k·(L/W)` sites/s, memory bandwidth `2·D·(L/W)` bits/tick
//! (every slice needs its own data path — "the most expensive commodity",
//! §5).
//!
//! The pin constraint's projection onto the `W–P` plane is a constant:
//! maximizing `P = P_w·P_k` under `2D·P_w + 2E·P_k ≤ Π` splits the pin
//! budget evenly (`P_w = Π/4D`, `P_k = Π/4E`), giving
//! `P ≤ Π²/(16·D·E)` — 13.5 with the paper's constants, independent of
//! `W`. The area curve `P ≤ 1/((2W+9)B + Γ)` crosses it at `W ≈ 43`.
//!
//! Derived figures are typed: areas are [`ChipArea`], pin usage is
//! [`Pins`], bandwidth is [`BitsPerTick`], throughput is
//! [`SitesPerSec`].

use crate::tech::Technology;
use lattice_core::units::{
    u32_from_f64_floor, BitsPerTick, Cells, ChipArea, Pins, SitesPerSec, SitesPerTick,
};
use serde::{Deserialize, Serialize};

/// A feasible SPA chip design and its derived figures.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SpaDesign {
    /// Slice width.
    pub w: u32,
    /// Slice-pipelines per chip.
    pub p_w: u32,
    /// Pipeline depth per chip.
    pub p_k: u32,
    /// Total PEs per chip (`p_w · p_k`).
    pub p: u32,
    /// Normalized chip area used (≤ 1).
    pub area_used: ChipArea,
    /// Pins used.
    pub pins_used: Pins,
    /// Shift-register cells per chip.
    pub cells: Cells,
}

/// The SPA design-space model for a given technology.
#[derive(Debug, Clone, Copy)]
pub struct Spa {
    tech: Technology,
}

impl Spa {
    /// Creates the model.
    pub fn new(tech: Technology) -> Self {
        Spa { tech }
    }

    /// The technology in effect.
    pub fn tech(&self) -> &Technology {
        &self.tech
    }

    /// Pin-constrained bound on total PEs per chip (real-valued,
    /// independent of `W`): `P ≤ Π²/(16·D·E)`, attained at
    /// `P_w = Π/(4D)`, `P_k = Π/(4E)`.
    pub fn p_pin_limit(&self) -> f64 {
        let t = &self.tech;
        f64::from(t.pins).powi(2) / (16.0 * f64::from(t.d_bits) * f64::from(t.e_bits))
    }

    /// The pin-optimal (real-valued) slice-pipeline count `P_w = Π/4D`.
    pub fn pin_optimal_pw(&self) -> f64 {
        f64::from(self.tech.pins) / (4.0 * f64::from(self.tech.d_bits))
    }

    /// Area-constrained bound on total PEs per chip at slice width `w`:
    /// `P ≤ 1/((2W + 9)·B + Γ)`.
    pub fn p_area_limit(&self, w: u32) -> f64 {
        ChipArea::new(1.0).capacity(self.pe_footprint(w))
    }

    /// The area one PE occupies at slice width `w`: `(2W + 9)·B + Γ`
    /// (its share of the slice window plus its logic).
    pub fn pe_footprint(&self, w: u32) -> ChipArea {
        self.tech.cell_area().times_cells(Cells::new(self.cells_per_pe(w))) + self.tech.pe_area()
    }

    /// Storage cells per PE: `2W + 9` (two lines of the slice plus the
    /// neighborhood margin).
    pub fn cells_per_pe(&self, w: u32) -> u64 {
        2 * u64::from(w) + 9
    }

    /// Normalized area used by a chip with `p_w × p_k` PEs at width `w`.
    pub fn area_used(&self, w: u32, p_w: u32, p_k: u32) -> ChipArea {
        self.pe_footprint(w) * f64::from(p_w * p_k)
    }

    /// Pins used: `2·D·P_w + 2·E·P_k`.
    pub fn pins_used(&self, p_w: u32, p_k: u32) -> Pins {
        Pins::new(2 * self.tech.d_bits * p_w) + Pins::new(2 * self.tech.e_bits * p_k)
    }

    /// Whether a chip design satisfies both constraints.
    pub fn feasible(&self, w: u32, p_w: u32, p_k: u32) -> bool {
        w >= 1
            && p_w >= 1
            && p_k >= 1
            && self.pins_used(p_w, p_k) <= self.tech.pin_budget()
            && self.area_used(w, p_w, p_k) <= ChipArea::new(1.0)
    }

    /// Builds the design record for a feasible chip.
    pub fn design(&self, w: u32, p_w: u32, p_k: u32) -> Option<SpaDesign> {
        if !self.feasible(w, p_w, p_k) {
            return None;
        }
        Some(SpaDesign {
            w,
            p_w,
            p_k,
            p: p_w * p_k,
            area_used: self.area_used(w, p_w, p_k),
            pins_used: self.pins_used(p_w, p_k),
            cells: Cells::new(self.cells_per_pe(w) * u64::from(p_w * p_k)),
        })
    }

    /// The best integer chip at slice width `w`: maximizes `P = P_w·P_k`
    /// (ties broken toward fewer pins), enumerating `P_w`.
    pub fn best_chip(&self, w: u32) -> Option<SpaDesign> {
        let t = &self.tech;
        let mut best: Option<SpaDesign> = None;
        let pw_max = t.pins / (2 * t.d_bits);
        for p_w in 1..=pw_max.max(1) {
            let pins_left = t.pins.checked_sub(2 * t.d_bits * p_w)?;
            let pk_pins = pins_left / (2 * t.e_bits);
            let per_pipeline = self.pe_footprint(w) * f64::from(p_w);
            let pk_area = u32_from_f64_floor(ChipArea::new(1.0).capacity(per_pipeline));
            let p_k = pk_pins.min(pk_area);
            if p_k == 0 {
                continue;
            }
            if let Some(d) = self.design(w, p_w, p_k) {
                let better = match &best {
                    None => true,
                    Some(b) => d.p > b.p || (d.p == b.p && d.pins_used < b.pins_used),
                };
                if better {
                    best = Some(d);
                }
            }
        }
        best
    }

    /// The real-valued corner of the design space: the slice width where
    /// the area curve meets the pin ceiling,
    /// `W* = ((1/P_pin − Γ)/B − 9)/2`. With the paper's constants this is
    /// ≈ 43 at `P ≈ 13.5`.
    pub fn corner_w(&self) -> f64 {
        let per_pe = ChipArea::new(1.0 / self.p_pin_limit());
        let window = per_pe - self.tech.pe_area();
        (window.capacity(self.tech.cell_area()) - 9.0) / 2.0
    }

    /// The integer operating point near the corner: evaluates
    /// [`Spa::best_chip`] over widths around `corner_w` and returns the
    /// one maximizing PEs/chip, then width. With the paper's constants:
    /// 12 PEs/chip ("SPA has twelve processors per chip", §6.3).
    ///
    /// ```
    /// use lattice_vlsi::{spa::Spa, Technology};
    /// let spa = Spa::new(Technology::paper_1987());
    /// assert_eq!(spa.p_pin_limit(), 13.5);
    /// assert_eq!(spa.corner().p, 12);
    /// ```
    pub fn corner(&self) -> SpaDesign {
        let wc = u32_from_f64_floor(self.corner_w().max(1.0));
        let lo = wc.saturating_sub(8).max(1);
        let hi = wc + 8;
        let mut best: Option<SpaDesign> = None;
        let consider = |d: SpaDesign, best: &mut Option<SpaDesign>| {
            let better = match best {
                None => true,
                Some(b) => d.p > b.p || (d.p == b.p && d.w > b.w),
            };
            if better {
                *best = Some(d);
            }
        };
        for w in lo..=hi {
            if let Some(d) = self.best_chip(w) {
                consider(d, &mut best);
            }
        }
        if best.is_none() {
            // Extreme technologies may have no feasible chip near the
            // real-valued corner; fall back to scanning narrow slices.
            for w in 1..lo {
                if let Some(d) = self.best_chip(w) {
                    consider(d, &mut best);
                }
            }
        }
        // lattice-lint: allow(no-panic) — unreachable for any validated technology.
        best.expect("technology cannot host even a 1x1-PE, W = 1 SPA chip")
    }

    /// Samples the design curves over `w = 1..=w_max` (experiment E2):
    /// `(w, p_pin_projection, p_area)` triples.
    pub fn design_curves(&self, w_max: u32, step: u32) -> Vec<(u32, f64, f64)> {
        (1..=w_max)
            .step_by(usize::try_from(step.max(1)).unwrap_or(1))
            .map(|w| (w, self.p_pin_limit(), self.p_area_limit(w)))
            .collect()
    }

    /// Number of slices for lattice side `l` at width `w`.
    pub fn slices(&self, l: u32, w: u32) -> u32 {
        l.div_ceil(w)
    }

    /// System throughput for lattice side `l`, width `w`, total pipeline
    /// depth `k`: `R = F·k·(L/W)` site updates per second (real-valued
    /// slices, as in the paper's formula).
    pub fn throughput(&self, l: u32, w: u32, k: u32) -> SitesPerSec {
        let updates_per_tick = f64::from(k) * f64::from(l) / f64::from(w);
        self.tech.per_second(SitesPerTick::new(updates_per_tick))
    }

    /// Main-memory bandwidth demand for lattice side `l` at width `w`:
    /// `2·D` bits/tick per slice, one data path per slice.
    pub fn bandwidth(&self, l: u32, w: u32) -> BitsPerTick {
        self.tech.stream_demand(self.slices(l, w))
    }

    /// Chips needed for lattice side `l` and total depth `k` with chip
    /// design `d`: `⌈slices/P_w⌉ · ⌈k/P_k⌉`.
    pub fn chips(&self, l: u32, k: u32, d: &SpaDesign) -> u64 {
        u64::from(self.slices(l, d.w).div_ceil(d.p_w)) * u64::from(k.div_ceil(d.p_k))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn paper() -> Spa {
        Spa::new(Technology::paper_1987())
    }

    #[test]
    fn pin_limit_is_13_5() {
        // Π²/(16·D·E) = 72²/(16·8·3) = 5184/384 = 13.5 (§6.2's "P ≈ 13.5").
        assert!((paper().p_pin_limit() - 13.5).abs() < 1e-12);
        assert!((paper().pin_optimal_pw() - 2.25).abs() < 1e-12);
    }

    #[test]
    fn corner_w_is_43() {
        // §6.2: "the corner at P ≈ 13.5 and W ≈ 43".
        let w = paper().corner_w();
        assert!((w - 43.0).abs() < 0.5, "W* = {w}");
    }

    #[test]
    fn integer_corner_is_12_pes_per_chip() {
        // §6.3: "SPA has twelve processors per chip".
        let c = paper().corner();
        assert_eq!(c.p, 12, "{c:?}");
        assert!(c.pins_used <= Pins::new(72));
        assert!(c.area_used <= ChipArea::new(1.0));
    }

    #[test]
    fn best_chip_enumerates_pw_splits() {
        let spa = paper();
        let c = spa.best_chip(43).unwrap();
        assert_eq!(c.p, 12);
        // Achievable splits: (2,6) with 68 pins or (3,4) with 72.
        assert!(matches!((c.p_w, c.p_k), (2, 6) | (3, 4)), "{c:?}");
        // Tie-break favors fewer pins → (2, 6).
        assert_eq!((c.p_w, c.p_k), (2, 6));
    }

    #[test]
    fn wider_slices_mean_fewer_pes() {
        let spa = paper();
        let narrow = spa.best_chip(20).unwrap();
        let wide = spa.best_chip(200).unwrap();
        assert!(narrow.p > wide.p);
        // Beyond the corner the area curve governs: the real-valued
        // area limit at W=200 is ≈ 3.9, so at most 3 PEs fit.
        assert!(spa.p_area_limit(200) < 4.0);
        assert!(wide.p <= 3);
    }

    #[test]
    fn feasibility_boundary() {
        let spa = paper();
        assert!(spa.feasible(43, 2, 6));
        assert!(spa.feasible(43, 3, 4));
        assert!(!spa.feasible(43, 3, 5)); // pins 48+30=78 > 72
        assert!(!spa.feasible(43, 2, 7)); // area 14 PEs > 13.49
        assert!(!spa.feasible(0, 1, 1));
    }

    #[test]
    fn system_figures() {
        let spa = paper();
        // Bandwidth at the paper's optimized comparison point (L = 785,
        // W = 43): ⌈785/43⌉ = 19 slices → 19·16 = 304 bits/tick. The
        // paper quotes 262 bits/tick (a real-valued slice count at a
        // slightly wider W); both are ≈ 4× WSA's 64 — see EXPERIMENTS.md.
        assert_eq!(spa.slices(785, 43), 19);
        assert_eq!(spa.bandwidth(785, 43), BitsPerTick::new(304.0));
        // Throughput formula R = F·k·L/W.
        let r = spa.throughput(785, 43, 12);
        assert!((r.get() - 10e6 * 12.0 * 785.0 / 43.0).abs() < 1.0);
    }

    #[test]
    fn chips_formula() {
        let spa = paper();
        let d = spa.best_chip(43).unwrap();
        // 19 slices at P_w = 2 → 10 chip columns; depth 6 at P_k = 6 → 1.
        assert_eq!(spa.chips(785, 6, &d), 10);
        assert_eq!(spa.chips(785, 12, &d), 20);
    }

    #[test]
    fn corner_prefers_widest_slice_at_max_pes() {
        // Integer corners slightly wider than the real-valued W* = 43
        // still fit 12 PEs (area at W = 51 is 12·0.0833 ≈ 0.9998); wider
        // slices mean fewer slices and less bandwidth at the same speed,
        // so the solver picks the widest.
        let c = paper().corner();
        assert_eq!(c.p, 12);
        assert!(c.w >= 43 && c.w <= 51, "{c:?}");
        assert!(!paper().feasible(c.w + 1, c.p_w, c.p_k));
    }

    #[test]
    fn design_curves_shape() {
        let pts = paper().design_curves(100, 10);
        for w in pts.windows(2) {
            assert_eq!(w[0].1, w[1].1); // pin projection constant
            assert!(w[0].2 > w[1].2); // area curve decreasing
        }
    }

    #[test]
    fn cells_accounting_is_typed() {
        let d = paper().best_chip(43).unwrap();
        // (2·43 + 9) cells per PE × 12 PEs.
        assert_eq!(d.cells, Cells::new(95 * 12));
    }
}
