//! Design-choice ablations for the §6 analysis.
//!
//! The paper fixes several choices without exploring them; this module
//! makes each explorable:
//!
//! * **Stages per chip** — §6.1 assumes "each VLSI chip will contain
//!   only a single wide parallel pipeline stage. That is, the chip is
//!   not internally pipelined with wide-serial processors." What if it
//!   were? Internal stages cost no extra pins (the stream passes chip
//!   boundaries once) but each needs its own two-row window, so the
//!   supportable lattice shrinks: the WSA lattice-size ceiling divides
//!   roughly by the stage count.
//! * **SPA side-channel width E** — E depends on the update rule (3 for
//!   FHP's boundary-crossing particle bits, D for a full-site exchange).
//!   The pin ceiling `Π²/16DE` is inversely proportional to E.
//! * **Pin budget sensitivity** — how the two architectures' corners
//!   move as packaging improves.

use crate::spa::Spa;
use crate::tech::Technology;
use crate::wsa::Wsa;
use lattice_core::units::{u32_from_f64_floor, Cells, ChipArea, Pins};
use serde::{Deserialize, Serialize};

/// A multi-stage WSA chip design: `stages` wide-serial stages of
/// `p` PEs each, cascaded on chip.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MultiStageWsa {
    /// Internal pipeline stages per chip.
    pub stages: u32,
    /// PEs per stage.
    pub p: u32,
    /// Largest supportable lattice side.
    pub l_max: u32,
    /// Normalized area used at `l_max`.
    pub area_used: ChipArea,
    /// Pins used (only the chip-boundary stream counts).
    pub pins_used: Pins,
    /// Site updates per tick per chip (`stages · p`).
    pub updates_per_tick: u32,
}

/// Designs a `stages`-deep, `p`-wide WSA chip: returns the largest
/// feasible lattice side, or `None` if even `L = 1` does not fit.
///
/// Area: each internal stage needs its own `(2L + 7P + 3)·β` window and
/// `P·γ` of PEs. Pins: the stream crosses the chip boundary once —
/// `2·D·P` regardless of internal depth (the internal hand-off is wires,
/// not pins).
pub fn multi_stage_wsa(tech: Technology, stages: u32, p: u32) -> Option<MultiStageWsa> {
    if stages == 0 || p == 0 {
        return None;
    }
    let pins_used = Pins::new(2 * tech.d_bits * p);
    if pins_used > tech.pin_budget() {
        return None;
    }
    // stages · ((2L + 7P + 3)B + PΓ) ≤ 1  →  solve for L.
    let per_stage_fixed = tech.cell_area().times_cells(Cells::new(7 * u64::from(p) + 3))
        + tech.pe_area() * f64::from(p);
    let budget = ChipArea::new(1.0 / f64::from(stages)) - per_stage_fixed;
    if budget.get() <= 0.0 {
        return None;
    }
    let l_max = u32_from_f64_floor(budget.capacity(tech.cell_area() * 2.0));
    if l_max == 0 {
        return None;
    }
    let cells_per_stage = Cells::new(2 * u64::from(l_max) + 7 * u64::from(p) + 3);
    let per_stage = tech.cell_area().times_cells(cells_per_stage) + tech.pe_area() * f64::from(p);
    let area_used = per_stage * f64::from(stages);
    Some(MultiStageWsa { stages, p, l_max, area_used, pins_used, updates_per_tick: stages * p })
}

/// The best multi-stage WSA chip for a given lattice side: maximizes
/// updates/tick per chip over all (stages, p) splits.
pub fn best_multi_stage_wsa(tech: Technology, l: u32) -> Option<MultiStageWsa> {
    let p_max = tech.pins / (2 * tech.d_bits);
    let mut best: Option<MultiStageWsa> = None;
    for p in 1..=p_max.max(1) {
        for stages in 1..=64u32 {
            match multi_stage_wsa(tech, stages, p) {
                Some(d) if d.l_max >= l => {
                    if best.is_none_or(|b| d.updates_per_tick > b.updates_per_tick) {
                        best = Some(d);
                    }
                }
                _ => break, // more stages only shrink l_max
            }
        }
    }
    best
}

/// SPA pin ceiling as a function of the side-channel width `E`.
pub fn spa_pin_ceiling_vs_e(tech: Technology, e_values: &[u32]) -> Vec<(u32, f64, u32)> {
    e_values
        .iter()
        .map(|&e| {
            let mut t = tech;
            t.e_bits = e;
            let spa = Spa::new(t);
            (e, spa.p_pin_limit(), spa.corner().p)
        })
        .collect()
}

/// WSA and SPA corner PEs/chip as the pin budget sweeps.
pub fn corners_vs_pins(tech: Technology, pin_values: &[u32]) -> Vec<(u32, u32, u32)> {
    pin_values
        .iter()
        .filter_map(|&pins| {
            let mut t = tech;
            t.pins = pins;
            t.validate().ok()?;
            let wsa = Wsa::new(t).corner();
            let spa = Spa::new(t).corner();
            Some((pins, wsa.p, spa.p))
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tech() -> Technology {
        Technology::paper_1987()
    }

    #[test]
    fn single_stage_matches_wsa_corner() {
        // stages = 1 must reproduce the §6.1 corner.
        let d = multi_stage_wsa(tech(), 1, 4).unwrap();
        assert_eq!(d.l_max, 785);
        assert_eq!(d.updates_per_tick, 4);
        assert!(d.area_used <= ChipArea::new(1.0));
    }

    #[test]
    fn internal_stages_trade_lattice_size_for_rate() {
        let one = multi_stage_wsa(tech(), 1, 4).unwrap();
        let two = multi_stage_wsa(tech(), 2, 4).unwrap();
        let four = multi_stage_wsa(tech(), 4, 4).unwrap();
        // Same pins, multiplied rate…
        assert_eq!(one.pins_used, two.pins_used);
        assert_eq!(two.updates_per_tick, 8);
        assert_eq!(four.updates_per_tick, 16);
        // …at roughly halved/quartered lattice ceilings.
        assert!(two.l_max < one.l_max / 2 + 50);
        assert!(two.l_max > one.l_max / 3);
        assert!(four.l_max < two.l_max / 2 + 50);
    }

    #[test]
    fn infeasible_multi_stage_configs() {
        assert!(multi_stage_wsa(tech(), 0, 4).is_none());
        assert!(multi_stage_wsa(tech(), 1, 0).is_none());
        assert!(multi_stage_wsa(tech(), 1, 5).is_none()); // pins
        assert!(multi_stage_wsa(tech(), 60, 4).is_none()); // no area left
    }

    #[test]
    fn best_multi_stage_beats_single_for_small_lattices() {
        // At L = 100 there is area to burn: internal pipelining packs
        // far more updates/tick than the paper's single-stage chip.
        let best = best_multi_stage_wsa(tech(), 100).unwrap();
        assert!(best.updates_per_tick > 4, "{best:?}");
        assert!(best.l_max >= 100);
        // At the paper's corner L the single stage is all that fits.
        let at_corner = best_multi_stage_wsa(tech(), 785).unwrap();
        assert_eq!(at_corner.updates_per_tick, 4);
        assert_eq!(at_corner.stages, 1);
        // Far beyond the ceiling, nothing fits.
        assert!(best_multi_stage_wsa(tech(), 2000).is_none());
    }

    #[test]
    fn spa_ceiling_inverse_in_e() {
        let rows = spa_pin_ceiling_vs_e(tech(), &[1, 3, 8]);
        assert_eq!(rows.len(), 3);
        // Π²/16DE: E=1 → 40.5, E=3 → 13.5, E=8 → 5.06.
        assert!((rows[0].1 - 40.5).abs() < 1e-9);
        assert!((rows[1].1 - 13.5).abs() < 1e-9);
        assert!((rows[2].1 - 5.0625).abs() < 1e-9);
        // Integer corners follow.
        assert!(rows[0].2 > rows[1].2 && rows[1].2 > rows[2].2);
    }

    #[test]
    fn more_pins_help_spa_quadratically_and_wsa_linearly() {
        let rows = corners_vs_pins(tech(), &[72, 144, 288]);
        assert_eq!(rows.len(), 3);
        let (_, w0, s0) = rows[0];
        let (_, w1, s1) = rows[1];
        let (_, w2, s2) = rows[2];
        // WSA P grows ~linearly with pins (until area binds).
        assert!(w1 >= 2 * w0 && w2 >= 2 * w1);
        // SPA's pin ceiling grows quadratically, but the AREA curve caps
        // the realized corner: s grows superlinearly from 72→144 and
        // then saturates.
        assert!(s1 > 2 * s0);
        assert!(s2 >= s1);
    }
}
