//! Wide-serial architecture (WSA) design space — §4 and §6.1.
//!
//! One pipeline stage per chip, `P` PEs per stage, the stage holding two
//! full lattice rows of shift register. Chip constraints (paper §6.1):
//!
//! ```text
//! pins:  2·D·P            ≤ Π
//! area:  (2L + 7P + 3)·B + Γ·P ≤ 1
//! ```
//!
//! (The area form is exactly what yields the paper's published curve
//! `P ≤ (1 − 3B − 2BL)/(7B + Γ)`: the two-row window is shared by the
//! stage and each PE adds 7 cells and Γ of logic.)
//!
//! System figures: `N = k` chips, `R = F·P·k` sites/s, maximum depth
//! `k_max = L` ("at that point the pipeline contains all the values of
//! the sites in the lattice").
//!
//! All derived figures carry their dimension as a `core::units` type:
//! areas are [`ChipArea`], pin usage is [`Pins`], bandwidth demand is
//! [`BitsPerTick`], throughput is [`SitesPerSec`].

use crate::tech::Technology;
use lattice_core::units::{u32_from_f64_floor, BitsPerTick, Cells, ChipArea, Pins, SitesPerSec};
use serde::{Deserialize, Serialize};

/// A feasible WSA operating point and its derived system figures.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct WsaDesign {
    /// PEs per chip.
    pub p: u32,
    /// Lattice side length the chip supports.
    pub l: u32,
    /// Normalized chip area used (≤ 1).
    pub area_used: ChipArea,
    /// Pins used.
    pub pins_used: Pins,
    /// Shift-register cells per chip.
    pub cells: Cells,
    /// Main-memory bandwidth demand.
    pub bandwidth: BitsPerTick,
}

/// The WSA design-space model for a given technology.
#[derive(Debug, Clone, Copy)]
pub struct Wsa {
    tech: Technology,
}

impl Wsa {
    /// Creates the model.
    pub fn new(tech: Technology) -> Self {
        Wsa { tech }
    }

    /// The technology in effect.
    pub fn tech(&self) -> &Technology {
        &self.tech
    }

    /// Pin-constrained PE bound: `P ≤ Π / 2D` (real-valued).
    pub fn p_pin_limit(&self) -> f64 {
        f64::from(self.tech.pins) / (2.0 * f64::from(self.tech.d_bits))
    }

    /// Area-constrained PE bound at lattice side `l`:
    /// `P ≤ (1 − 3B − 2BL)/(7B + Γ)` (real-valued; may be negative when
    /// the two-row window alone overflows the chip).
    pub fn p_area_limit(&self, l: u32) -> f64 {
        let b = self.tech.cell_area();
        let free = ChipArea::new(1.0) - b * (3.0 + 2.0 * f64::from(l));
        free.capacity(b * 7.0 + self.tech.pe_area())
    }

    /// Shift-register cells a `P`-wide stage needs for lattice side `l`
    /// (paper's count): `2L + 7P + 3`.
    pub fn cells(&self, p: u32, l: u32) -> Cells {
        Cells::new(2 * u64::from(l) + 7 * u64::from(p) + 3)
    }

    /// Normalized area used by a (P, L) stage chip.
    pub fn area_used(&self, p: u32, l: u32) -> ChipArea {
        self.tech.cell_area().times_cells(self.cells(p, l)) + self.tech.pe_area() * f64::from(p)
    }

    /// Pins used by a `P`-wide stage: `2·D·P`.
    pub fn pins_used(&self, p: u32) -> Pins {
        Pins::new(2 * self.tech.d_bits * p)
    }

    /// Whether the (P, L) point satisfies both chip constraints.
    pub fn feasible(&self, p: u32, l: u32) -> bool {
        p >= 1
            && self.pins_used(p) <= self.tech.pin_budget()
            && self.area_used(p, l) <= ChipArea::new(1.0)
    }

    /// Builds the design record for a feasible point.
    pub fn design(&self, p: u32, l: u32) -> Option<WsaDesign> {
        if !self.feasible(p, l) {
            return None;
        }
        Some(WsaDesign {
            p,
            l,
            area_used: self.area_used(p, l),
            pins_used: self.pins_used(p),
            cells: self.cells(p, l),
            bandwidth: self.tech.stream_demand(p),
        })
    }

    /// The largest feasible integer `P` at lattice side `l`.
    pub fn max_p(&self, l: u32) -> u32 {
        let bound = self.p_pin_limit().min(self.p_area_limit(l));
        let mut p = u32_from_f64_floor(bound);
        // Guard against floating-point edges.
        while p > 0 && !self.feasible(p, l) {
            p -= 1;
        }
        p
    }

    /// The optimal operating point: maximize `P`, then the largest `L`
    /// still feasible at that `P` — "we want L to be as big as possible,
    /// so the corner is the logical choice" (§6.1). With the paper's
    /// constants this returns `P = 4, L = 785`.
    ///
    /// ```
    /// use lattice_vlsi::{wsa::Wsa, Technology};
    /// let corner = Wsa::new(Technology::paper_1987()).corner();
    /// assert_eq!((corner.p, corner.l), (4, 785));
    /// assert_eq!(corner.bandwidth.get(), 64.0);
    /// ```
    pub fn corner(&self) -> WsaDesign {
        let p_pin = u32_from_f64_floor(self.p_pin_limit().max(1.0));
        // Degrade P when the area constraint can't host the pin-optimal
        // P at any lattice size (possible for extreme technologies).
        let b = self.tech.cell_area();
        for p in (1..=p_pin).rev() {
            let fixed = b * (7.0 * f64::from(p) + 3.0) + self.tech.pe_area() * f64::from(p);
            let l_real = (ChipArea::new(1.0) - fixed).capacity(b * 2.0);
            let mut l = u32_from_f64_floor(l_real.max(1.0));
            while l > 1 && !self.feasible(p, l) {
                l -= 1;
            }
            if let Some(d) = self.design(p, l) {
                return d;
            }
        }
        // lattice-lint: allow(no-panic) — unreachable for any validated technology.
        panic!("technology cannot host even a 1-PE, L = 1 WSA stage")
    }

    /// The absolute ceiling on lattice side for *any* WSA chip (even one
    /// PE): all area spent on the two-row window (§6.1: "an upper bound
    /// on L even if we were to accept arbitrarily slow computation").
    pub fn l_upper_bound(&self) -> u32 {
        let b = self.tech.cell_area();
        let free = ChipArea::new(1.0) - self.tech.pe_area() - b * 10.0;
        u32_from_f64_floor(free.capacity(b * 2.0).max(0.0))
    }

    /// Samples the two design curves over `l = 1..=l_max` for plotting
    /// (experiment E1): returns `(l, p_pin, p_area)` triples.
    pub fn design_curves(&self, l_max: u32, step: u32) -> Vec<(u32, f64, f64)> {
        (1..=l_max)
            .step_by(usize::try_from(step.max(1)).unwrap_or(1))
            .map(|l| (l, self.p_pin_limit(), self.p_area_limit(l)))
            .collect()
    }

    /// System throughput for pipeline depth `k` (= number of chips):
    /// `R = F·P·k` site updates per second.
    pub fn throughput(&self, p: u32, k: u32) -> SitesPerSec {
        self.tech.throughput(u64::from(p) * u64::from(k))
    }

    /// Maximum system throughput at lattice side `l`: depth `k_max = L`.
    pub fn max_throughput(&self, p: u32, l: u32) -> SitesPerSec {
        self.throughput(p, l)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn paper() -> Wsa {
        Wsa::new(Technology::paper_1987())
    }

    #[test]
    fn pin_limit_is_4_5() {
        assert!((paper().p_pin_limit() - 4.5).abs() < 1e-12);
    }

    #[test]
    fn corner_reproduces_p4_l785() {
        // §6.1: "The intersection of the two curves is P ≈ 4 and L ≈ 785."
        let c = paper().corner();
        assert_eq!(c.p, 4);
        assert_eq!(c.l, 785);
        assert!(c.area_used <= ChipArea::new(1.0));
        assert_eq!(c.pins_used, Pins::new(64));
        assert_eq!(c.bandwidth, BitsPerTick::new(64.0));
    }

    #[test]
    fn area_curve_matches_published_form() {
        let w = paper();
        // At P = 4.5, the curves cross near L ≈ 775.
        let t = Technology::paper_1987();
        let l_cross = (1.0 - 3.0 * t.b - 4.5 * (7.0 * t.b + t.g)) / (2.0 * t.b);
        assert!((l_cross - 775.0).abs() < 1.0, "{l_cross}");
        // Beyond the corner the area limit drops below the pin limit.
        assert!(w.p_area_limit(800) < w.p_pin_limit());
        assert!(w.p_area_limit(700) > w.p_pin_limit());
    }

    #[test]
    fn feasibility_boundary() {
        let w = paper();
        assert!(w.feasible(4, 785));
        assert!(!w.feasible(4, 790));
        assert!(!w.feasible(5, 100)); // pins: 2·8·5 = 80 > 72
        assert!(w.feasible(1, 800));
        assert!(!w.feasible(1, 900));
    }

    #[test]
    fn max_p_respects_both_constraints() {
        let w = paper();
        assert_eq!(w.max_p(100), 4); // pin-bound region
        assert_eq!(w.max_p(785), 4); // the corner
        assert_eq!(w.max_p(800), 3); // area-bound: limit ≈ 3.27
        assert_eq!(w.max_p(830), 1); // only one PE fits
        assert_eq!(w.max_p(2000), 0); // beyond the absolute L ceiling
    }

    #[test]
    fn l_upper_bound_matches_hand_computation() {
        // (1 - Γ - 10B)/(2B) = (1 - 0.0194 - 0.00576)/0.001152 ≈ 846.
        assert_eq!(paper().l_upper_bound(), 846);
        assert!(paper().feasible(1, paper().l_upper_bound()));
        assert!(!paper().feasible(1, paper().l_upper_bound() + 1));
    }

    #[test]
    fn throughput_formula() {
        let w = paper();
        // 20 M updates/s for a 2-PE chip at 10 MHz (§8's prototype chip).
        assert!((w.throughput(2, 1).get() - 20e6).abs() < 1.0);
        // Corner machine at full depth: R = F·P·L.
        let c = w.corner();
        assert!((w.max_throughput(c.p, c.l).get() - 10e6 * 4.0 * 785.0).abs() < 1.0);
    }

    #[test]
    fn design_curve_sampler() {
        let pts = paper().design_curves(1000, 100);
        assert_eq!(pts.len(), 10);
        // Pin limit constant, area limit decreasing.
        for w in pts.windows(2) {
            assert_eq!(w[0].1, w[1].1);
            assert!(w[0].2 > w[1].2);
        }
    }

    #[test]
    fn design_returns_none_when_infeasible() {
        let w = paper();
        assert!(w.design(5, 100).is_none());
        let d = w.design(4, 785).unwrap();
        assert_eq!(d.cells, Cells::new(2 * 785 + 7 * 4 + 3));
    }
}
