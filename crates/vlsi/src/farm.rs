//! Board-level scaling model — the §6 constraint argument moved up one
//! packaging level, from pins-per-chip to links-per-board.
//!
//! §6 bounds a *chip* by its pin budget: a `P`-wide stage must move
//! `2·D·P` bits per tick through `Π` pins. A *board farm* meets the
//! same wall at its inter-board links. Each bulk-synchronous pass a
//! board imports its halo columns, then computes `k` generations over
//! its augmented slab; the machine is compute-bound while the link
//! moves a pass's halo faster than the boards burn it, and
//! bandwidth-bound past the rollover where exchange time dominates —
//! exactly the regime change the paper's §8 prototype hit at the
//! host/memory channel.
//!
//! The model mirrors `lattice-farm`'s measured accounting term for
//! term: the same columnar partition (both crates call
//! `lattice_core::shard::partition`, so geometry cannot drift), the
//! WSA pipeline's fill-latency tick count,
//! and the slowest board/slowest link maxima at the barrier. The
//! `tab_farm_scaling` bench tabulates measurement against this model;
//! integration tests hold them within 10% in the unthrottled regime.
//!
//! The per-pass accounting is exact integer arithmetic in `core::units`
//! quantities — [`Ticks`] on the barriers, [`Bits`] on the links — so a
//! ticks-vs-bits mixup is a type error, and the ceil divisions that §6
//! writes as `⌈·⌉` are `div_ceil`, not float rounding.

use crate::tech::Technology;
use lattice_core::shard::{partition, partition2d, sweep_regions, sweep_regions2d, Block, Slab};
use lattice_core::units::{
    f64_from_usize, u64_from_usize, Bits, BitsPerTick, Sites, SitesPerSec, SitesPerTick, Ticks,
};
use serde::{Deserialize, Serialize};

/// One of the farm's two link tiers. An R×C board grid exchanges halo
/// *columns* (full augmented height, corners included) over fast
/// intra-rack links and halo *rows* (owned width) over throttled
/// inter-rack links; a single-row grid leaves the inter tier idle.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum LinkTier {
    /// The horizontal (column-halo) tier, inside a rack.
    Intra,
    /// The vertical (row-halo) tier, between racks.
    Inter,
}

/// Predicted per-pass figures for one shard count.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FarmPoint {
    /// Boards.
    pub shards: usize,
    /// Slowest board's compute ticks per pass.
    pub compute_ticks: Ticks,
    /// Slowest board's boundary-sweep ticks per pass (zero when the
    /// exchange is serialized — the whole slab is one sweep).
    pub boundary_ticks: Ticks,
    /// Slowest board's interior-sweep ticks per pass (equals
    /// `compute_ticks` when serialized).
    pub interior_ticks: Ticks,
    /// Slowest board's imported halo bits per pass.
    pub halo_bits: Bits,
    /// Slowest link's transfer ticks per pass.
    pub halo_ticks: Ticks,
    /// Machine ticks per pass (exchange barrier + compute barrier).
    pub pass_ticks: Ticks,
    /// Useful site updates per machine tick.
    pub updates_per_tick: SitesPerTick,
    /// Link bandwidth at which exchange time equals compute time — the
    /// board-level analogue of the §6 pin bound `2·D·P ≤ Π`.
    pub critical_link: BitsPerTick,
}

/// The analytical farm: `S` boards, each a WSA pipeline of `k` stages ×
/// `p` PEs, over a `rows × cols` lattice with `k`-deep passes.
#[derive(Debug, Clone, Copy)]
pub struct FarmModel {
    /// Chip technology (supplies `D` and the clock).
    pub tech: Technology,
    /// Lattice rows.
    pub rows: usize,
    /// Lattice columns (the sharded axis).
    pub cols: usize,
    /// PEs per pipeline stage on every board.
    pub p: u32,
    /// Generations per pass = pipeline depth = halo width.
    pub k: usize,
    /// Intra-rack link capacity
    /// ([`BitsPerTick::UNTHROTTLED`] = never the bottleneck).
    pub link: BitsPerTick,
    /// Inter-rack (vertical-tier) link capacity — only exercised by the
    /// two-axis methods on multi-row board grids.
    pub link_inter: BitsPerTick,
    /// Toroidal boundary (halos never clamp; rows gain `2k` wrap rows).
    pub periodic: bool,
    /// Overlapped exchange: each board computes its seam-adjacent
    /// boundary sweeps first, ships the next pass's halos while the
    /// interior sweep evolves, and barriers only on halo *arrival*.
    /// The per-pass wall drops from `compute + halo` to
    /// `boundary + max(interior, halo)` — mirroring
    /// `LatticeFarm::with_overlap`.
    pub overlap: bool,
}

impl FarmModel {
    /// An unthrottled null-boundary farm model.
    pub fn new(tech: Technology, rows: usize, cols: usize, p: u32, k: usize) -> Self {
        FarmModel {
            tech,
            rows,
            cols,
            p,
            k,
            link: BitsPerTick::UNTHROTTLED,
            link_inter: BitsPerTick::UNTHROTTLED,
            periodic: false,
            overlap: false,
        }
    }

    /// Sets both tiers' link capacity (mirroring
    /// `LatticeFarm::with_link`); follow with
    /// [`FarmModel::with_tier_link`] to throttle the inter-rack tier
    /// separately.
    pub fn with_link(mut self, link: BitsPerTick) -> Self {
        self.link = link;
        self.link_inter = link;
        self
    }

    /// Sets the inter-rack tier's capacity alone.
    pub fn with_tier_link(mut self, link_inter: BitsPerTick) -> Self {
        self.link_inter = link_inter;
        self
    }

    /// Selects the toroidal boundary.
    pub fn with_periodic(mut self, periodic: bool) -> Self {
        self.periodic = periodic;
        self
    }

    /// Selects overlapped halo exchange.
    pub fn with_overlap(mut self, overlap: bool) -> Self {
        self.overlap = overlap;
        self
    }

    /// The farm's slab geometry at `shards` boards — byte-identical to
    /// what `lattice-farm` executes (same function).
    ///
    /// # Panics
    /// When `shards` is 0 or exceeds `cols`, like the farm itself
    /// errors.
    pub fn slabs(&self, shards: usize) -> Vec<Slab> {
        partition(self.cols, shards, self.k, self.periodic)
            // lattice-lint: allow(no-panic) — documented precondition, mirrored by the farm.
            .expect("farm model needs 1 ≤ shards ≤ cols")
    }

    /// Rows of the halo-augmented slab (the torus wraps vertically on
    /// board, adding `2k` rows).
    pub fn aug_rows(&self) -> usize {
        self.rows + if self.periodic { 2 * self.k } else { 0 }
    }

    /// Ticks one sweep over an `a`-column region costs: the measured
    /// WSA pipeline streams `aug_rows·a` sites at `p` per tick and pays
    /// `a + 2` sites of fill latency per stage, so
    /// `⌈(aug_rows·a + k·(a + 2)) / p⌉`.
    fn sweep_ticks(&self, a: usize) -> Ticks {
        self.sweep_ticks_rect(self.aug_rows(), a)
    }

    /// [`FarmModel::sweep_ticks`] for an `ar`-row region — the
    /// two-axis generalization; the columnar form is this at the full
    /// augmented height.
    fn sweep_ticks_rect(&self, ar: usize, a: usize) -> Ticks {
        let ar = u64_from_usize(ar);
        let a = u64_from_usize(a);
        let sites = ar * a + u64_from_usize(self.k) * (a + 2);
        Ticks::new(sites.div_ceil(u64::from(self.p)))
    }

    /// Ticks the slowest board computes per pass — one full sweep over
    /// the widest augmented slab ([`FarmModel::sweep_ticks`] at
    /// `aug_width`). Under overlap the same work is split into
    /// [`FarmModel::boundary_compute_ticks`] +
    /// [`FarmModel::interior_compute_ticks`], which sum slightly higher
    /// because each extra sweep refills the pipeline.
    pub fn compute_ticks(&self, shards: usize) -> Ticks {
        self.slabs(shards)
            .iter()
            .map(|s| self.sweep_ticks(s.aug_width()))
            .max()
            .unwrap_or(Ticks::ZERO)
    }

    /// Ticks the slowest board spends on its seam-adjacent boundary
    /// sweeps per pass — the serial prefix the halos must wait for.
    /// Zero when the exchange is serialized (the whole slab is one
    /// undivided sweep) and on seamless slabs. Region geometry is
    /// [`sweep_regions`], the same function the farm executes.
    pub fn boundary_compute_ticks(&self, shards: usize) -> Ticks {
        self.phase_ticks(shards, true)
    }

    /// Ticks the slowest board spends on its interior sweep per pass —
    /// the window the halo transfer hides behind under overlap. Equals
    /// [`FarmModel::compute_ticks`] when serialized; zero for slabs so
    /// narrow the boundary sweeps cover every owned column.
    pub fn interior_compute_ticks(&self, shards: usize) -> Ticks {
        self.phase_ticks(shards, false)
    }

    fn phase_ticks(&self, shards: usize, boundary: bool) -> Ticks {
        self.slabs(shards)
            .iter()
            .map(|s| {
                sweep_regions(s, self.k, self.overlap)
                    .iter()
                    .filter(|r| r.boundary == boundary)
                    .map(|r| self.sweep_ticks(r.width))
                    .fold(Ticks::ZERO, |acc, t| acc + t)
            })
            .max()
            .unwrap_or(Ticks::ZERO)
    }

    /// Halo bits the hungriest board imports per pass:
    /// `(halo_left + halo_right)·aug_rows·D`.
    pub fn halo_bits(&self, shards: usize) -> Bits {
        self.slabs(shards)
            .iter()
            .map(|s| {
                let halo_sites =
                    Sites::new(u64_from_usize((s.halo_left + s.halo_right) * self.aug_rows()));
                self.tech.bits_for_sites(halo_sites)
            })
            .max()
            .unwrap_or(Bits::ZERO)
    }

    /// Exchange-barrier ticks per pass: the slowest link's
    /// `⌈halo_bits / capacity⌉` (free when unthrottled).
    pub fn halo_ticks(&self, shards: usize) -> Ticks {
        self.link.ticks_to_move(self.halo_bits(shards))
    }

    /// Machine ticks per pass. Serialized: exchange barrier then
    /// compute barrier, `compute + halo`. Overlapped: the boundary
    /// sweeps run first, then the halo transfer races the interior
    /// sweep, `boundary + max(interior, halo)` — which degenerates to
    /// the serialized sum when `overlap` is off (boundary = 0,
    /// interior = compute).
    pub fn pass_ticks(&self, shards: usize) -> Ticks {
        if self.overlap {
            self.boundary_compute_ticks(shards)
                + self.interior_compute_ticks(shards).max(self.halo_ticks(shards))
        } else {
            self.compute_ticks(shards) + self.halo_ticks(shards)
        }
    }

    /// Useful (lattice-visible) site updates per pass: `rows·cols·k`.
    pub fn useful_updates_per_pass(&self) -> Sites {
        Sites::new(u64_from_usize(self.rows * self.cols * self.k))
    }

    /// Useful site updates per machine tick:
    /// `rows·cols·k / pass_ticks`. Halo recompute is excluded, exactly
    /// as `FarmReport::updates_per_tick` excludes it.
    pub fn updates_per_tick(&self, shards: usize) -> SitesPerTick {
        self.useful_updates_per_pass() / self.pass_ticks(shards)
    }

    /// Useful updates per second at the technology clock.
    pub fn updates_per_second(&self, shards: usize) -> SitesPerSec {
        self.tech.per_second(self.updates_per_tick(shards))
    }

    /// Speedup over one board of the same design.
    pub fn speedup(&self, shards: usize) -> f64 {
        self.updates_per_tick(shards).ratio(self.updates_per_tick(1))
    }

    /// Strong-scaling efficiency: fixed lattice, `speedup / shards`.
    /// Below 1 because every added seam buys `2k` recomputed halo
    /// columns and more link traffic.
    pub fn strong_efficiency(&self, shards: usize) -> f64 {
        self.speedup(shards) / f64_from_usize(shards)
    }

    /// Weak-scaling efficiency: each board brings its own `cols`
    /// columns (machine lattice `rows × shards·cols`), so ideal scaling
    /// keeps pass time constant. Returns
    /// `pass_ticks(1 board, cols) / pass_ticks(shards, shards·cols)`.
    pub fn weak_efficiency(&self, shards: usize) -> f64 {
        let scaled = FarmModel { cols: self.cols * shards, ..*self };
        self.pass_ticks(1).ratio(scaled.pass_ticks(shards))
    }

    /// Sustained link demand if exchange fully overlapped compute:
    /// `halo_bits / compute_ticks`. For slabs much wider than the halo
    /// this approaches the closed form `2·k·D·p / aug_width` — the §6
    /// pin expression `2·D·P` divided by the columns a board amortizes
    /// it over.
    pub fn link_demand(&self, shards: usize) -> BitsPerTick {
        self.halo_bits(shards) / self.compute_ticks(shards)
    }

    /// The farm's block geometry on an R×C board grid — byte-identical
    /// to what `lattice-farm` executes (same function).
    ///
    /// # Panics
    /// When the grid does not partition the lattice (zero axes, more
    /// boards than sites on an axis, torus blocks narrower than the
    /// halo), like the farm itself errors.
    pub fn blocks(&self, grid: (usize, usize)) -> Vec<Block> {
        partition2d(self.rows, self.cols, grid.0, grid.1, self.k, self.periodic)
            // lattice-lint: allow(no-panic) — documented precondition, mirrored by the farm.
            .expect("farm model needs a grid that partitions the lattice")
    }

    /// On-board vertical wrap depth: a single-row grid keeps the
    /// torus's vertical wrap on board; a multi-row grid imports wrap
    /// rows as ordinary halo rows over the inter-rack tier.
    fn wrap(&self, grid_rows: usize) -> usize {
        if self.periodic && grid_rows == 1 {
            self.k
        } else {
            0
        }
    }

    /// Ticks the slowest board computes per pass on an R×C grid — one
    /// full sweep over the largest augmented block. Degenerates to
    /// [`FarmModel::compute_ticks`] at `(1, shards)`.
    pub fn compute_ticks2(&self, grid: (usize, usize)) -> Ticks {
        let wrap = self.wrap(grid.0);
        self.blocks(grid)
            .iter()
            .map(|b| self.sweep_ticks_rect(b.aug_height(wrap), b.aug_width()))
            .max()
            .unwrap_or(Ticks::ZERO)
    }

    /// Ticks the slowest board spends on its boundary (edge + corner)
    /// sweep regions per pass on an R×C grid.
    pub fn boundary_compute_ticks2(&self, grid: (usize, usize)) -> Ticks {
        self.phase_ticks2(grid, true)
    }

    /// Ticks the slowest board spends on its interior sweep per pass on
    /// an R×C grid.
    pub fn interior_compute_ticks2(&self, grid: (usize, usize)) -> Ticks {
        self.phase_ticks2(grid, false)
    }

    fn phase_ticks2(&self, grid: (usize, usize), boundary: bool) -> Ticks {
        let wrap = self.wrap(grid.0);
        self.blocks(grid)
            .iter()
            .map(|b| {
                sweep_regions2d(b, self.k, self.overlap, wrap)
                    .iter()
                    .filter(|r| r.boundary == boundary)
                    .map(|r| self.sweep_ticks_rect(r.height, r.width))
                    .fold(Ticks::ZERO, |acc, t| acc + t)
            })
            .max()
            .unwrap_or(Ticks::ZERO)
    }

    /// Halo bits the hungriest board imports per pass on each tier:
    /// `(intra, inter)`. Intra carries the halo *columns* over the full
    /// augmented height (corners and wrap rows included); inter carries
    /// the halo *rows* over the owned width only, so corner sites are
    /// billed exactly once — together the tiers move
    /// `aug_area − owned_area` sites when nothing wraps on board.
    pub fn halo_bits2(&self, grid: (usize, usize)) -> (Bits, Bits) {
        let wrap = self.wrap(grid.0);
        let mut intra = Bits::ZERO;
        let mut inter = Bits::ZERO;
        for b in self.blocks(grid) {
            let cols =
                Sites::new(u64_from_usize((b.halo_left + b.halo_right) * b.aug_height(wrap)));
            let rows = Sites::new(u64_from_usize((b.halo_up + b.halo_down) * b.width));
            intra = intra.max(self.tech.bits_for_sites(cols));
            inter = inter.max(self.tech.bits_for_sites(rows));
        }
        (intra, inter)
    }

    /// Exchange-barrier ticks per pass on an R×C grid: per board the
    /// two tiers are separate wires, so its wait is the slower tier;
    /// the barrier waits for the slowest board. Degenerates to
    /// [`FarmModel::halo_ticks`] at `(1, shards)` (the inter tier is
    /// idle there).
    pub fn halo_ticks2(&self, grid: (usize, usize)) -> Ticks {
        let wrap = self.wrap(grid.0);
        self.blocks(grid)
            .iter()
            .map(|b| {
                let cols =
                    Sites::new(u64_from_usize((b.halo_left + b.halo_right) * b.aug_height(wrap)));
                let rows = Sites::new(u64_from_usize((b.halo_up + b.halo_down) * b.width));
                self.link
                    .ticks_to_move(self.tech.bits_for_sites(cols))
                    .max(self.link_inter.ticks_to_move(self.tech.bits_for_sites(rows)))
            })
            .max()
            .unwrap_or(Ticks::ZERO)
    }

    /// Machine ticks per pass on an R×C grid — the columnar
    /// [`FarmModel::pass_ticks`] algebra with the two-tier exchange
    /// barrier: serialized `compute + halo`, overlapped
    /// `boundary + max(interior, halo)` where `halo` is already the
    /// max-axis (slower-tier) wait.
    pub fn pass_ticks2(&self, grid: (usize, usize)) -> Ticks {
        if self.overlap {
            self.boundary_compute_ticks2(grid)
                + self.interior_compute_ticks2(grid).max(self.halo_ticks2(grid))
        } else {
            self.compute_ticks2(grid) + self.halo_ticks2(grid)
        }
    }

    /// Useful site updates per machine tick on an R×C grid.
    pub fn updates_per_tick2(&self, grid: (usize, usize)) -> SitesPerTick {
        self.useful_updates_per_pass() / self.pass_ticks2(grid)
    }

    /// Sustained per-tier link demand on an R×C grid, as
    /// `(intra, inter)`: each tier's hungriest frame amortized over the
    /// compute barrier it must hide behind.
    pub fn link_demand2(&self, grid: (usize, usize)) -> (BitsPerTick, BitsPerTick) {
        let (intra, inter) = self.halo_bits2(grid);
        let compute = self.compute_ticks2(grid);
        (intra / compute, inter / compute)
    }

    /// The tier whose transfer paces the exchange barrier on an R×C
    /// grid — the one admission control must charge. Ties (including a
    /// fully idle barrier) bind on the intra tier, which always carries
    /// at least as many frames.
    pub fn binding_tier(&self, grid: (usize, usize)) -> LinkTier {
        let wrap = self.wrap(grid.0);
        let (mut intra_t, mut inter_t) = (Ticks::ZERO, Ticks::ZERO);
        for b in self.blocks(grid) {
            let cols =
                Sites::new(u64_from_usize((b.halo_left + b.halo_right) * b.aug_height(wrap)));
            let rows = Sites::new(u64_from_usize((b.halo_up + b.halo_down) * b.width));
            intra_t = intra_t.max(self.link.ticks_to_move(self.tech.bits_for_sites(cols)));
            inter_t = inter_t.max(self.link_inter.ticks_to_move(self.tech.bits_for_sites(rows)));
        }
        if inter_t > intra_t {
            LinkTier::Inter
        } else {
            LinkTier::Intra
        }
    }

    /// The binding tier's sustained link demand on an R×C grid — the
    /// admission cost of a grid session. On unthrottled ties (both
    /// tiers free) this is the larger per-tier demand, so an
    /// unthrottled model still yields a usable admission key.
    pub fn binding_link_demand(&self, grid: (usize, usize)) -> BitsPerTick {
        let (intra, inter) = self.link_demand2(grid);
        match self.binding_tier(grid) {
            LinkTier::Inter => inter,
            // An unthrottled barrier binds on neither wire; charge the
            // hungrier demand so the admission key stays conservative.
            LinkTier::Intra if self.link.is_unthrottled() && self.link_inter.is_unthrottled() => {
                intra.max(inter)
            }
            LinkTier::Intra => intra,
        }
    }

    /// The first grid shape in `shapes` (scanned in order — along
    /// either axis, or any schedule the caller builds) where the
    /// two-tier exchange first paces the machine, with the same
    /// tie-counts-as-the-wall `>=` as [`FarmModel::critical_shards`].
    /// Shapes that do not partition the lattice are skipped, `None` if
    /// the links keep up everywhere.
    pub fn critical_grid(&self, shapes: &[(usize, usize)]) -> Option<(usize, usize)> {
        shapes
            .iter()
            .copied()
            .filter(|&(gr, gc)| {
                partition2d(self.rows, self.cols, gr, gc, self.k, self.periodic).is_ok()
            })
            .find(|&g| {
                let halo = self.halo_ticks2(g);
                let wall = if self.overlap {
                    self.interior_compute_ticks2(g)
                } else {
                    self.compute_ticks2(g)
                };
                halo > Ticks::ZERO && halo >= wall
            })
    }

    /// Work amplification from halo recompute (`≥ 1`): total updates
    /// over useful updates, `aug_rows·Σ aug_width / (rows·cols)`.
    pub fn redundancy(&self, shards: usize) -> f64 {
        let aug: usize = self.slabs(shards).iter().map(|s| s.aug_width()).sum();
        f64_from_usize(self.aug_rows() * aug) / f64_from_usize(self.rows * self.cols)
    }

    /// The full predicted operating point at `shards` boards.
    pub fn point(&self, shards: usize) -> FarmPoint {
        FarmPoint {
            shards,
            compute_ticks: self.compute_ticks(shards),
            boundary_ticks: self.boundary_compute_ticks(shards),
            interior_ticks: self.interior_compute_ticks(shards),
            halo_bits: self.halo_bits(shards),
            halo_ticks: self.halo_ticks(shards),
            pass_ticks: self.pass_ticks(shards),
            updates_per_tick: self.updates_per_tick(shards),
            critical_link: self.link_demand(shards),
        }
    }

    /// The smallest shard count (≤ `max_shards`) at which the link
    /// first paces the machine — the farm's bandwidth wall, the
    /// analogue of §6's pin-bound corner. `None` if the link keeps up
    /// through `max_shards`.
    ///
    /// A **tie counts as the wall**: at `halo_ticks == compute_ticks`
    /// the link has already caught the boards — every tick of further
    /// thinning (or of ARQ replay) lands on the critical path, and in
    /// overlapped mode the tie is exactly where the exchange stops
    /// hiding completely behind the interior sweep. The comparison is
    /// therefore `>=`, not `>`; a strict `>` mis-classified exactly
    /// balanced configurations as compute-bound.
    ///
    /// Under overlap the compute side of the comparison is the
    /// *interior* sweep — the only window the transfer can hide in —
    /// so the wall arrives at a smaller shard count than the serialized
    /// comparison suggests, even though the overlapped farm is faster
    /// in absolute ticks.
    pub fn critical_shards(&self, max_shards: usize) -> Option<usize> {
        (1..=max_shards.min(self.cols))
            // A torus layout whose slabs would be narrower than the
            // halo is rejected by `partition` (the farm cannot run it),
            // so the scan skips it rather than probing a panic.
            .filter(|&s| partition(self.cols, s, self.k, self.periodic).is_ok())
            .find(|&s| {
                let halo = self.halo_ticks(s);
                let wall = if self.overlap {
                    self.interior_compute_ticks(s)
                } else {
                    self.compute_ticks(s)
                };
                halo > Ticks::ZERO && halo >= wall
            })
    }

    /// Probability one ARQ attempt on the hungriest board's link
    /// delivers a corrupted frame, given a per-site upset probability
    /// `site_rate`: `1 − (1 − rate)^sites`. Any corrupted site trips
    /// the frame's stream parity, so this is also the per-attempt
    /// retransmission probability.
    pub fn frame_upset_prob(&self, shards: usize, site_rate: f64) -> f64 {
        let sites = self.halo_bits(shards).to_f64() / f64::from(self.tech.d_bits);
        1.0 - (1.0 - site_rate).powf(sites)
    }

    /// Expected ARQ retransmissions per pass on the hungriest board
    /// under an unbounded retry budget: with per-attempt upset
    /// probability `q`, the geometric tail `q / (1 − q)`. The farm's
    /// measured `FarmReport::retransmits / passes` converges on this.
    pub fn expected_retransmits_per_pass(&self, shards: usize, site_rate: f64) -> f64 {
        let q = self.frame_upset_prob(shards, site_rate);
        q / (1.0 - q)
    }

    /// [`FarmModel::pass_ticks`] with the ARQ term as a real-valued
    /// expectation: `r` retransmissions per pass each replay the
    /// exchange barrier. Serialized that is
    /// `compute + halo_ticks·(1 + r)`; overlapped the replays extend
    /// the link's side of the race,
    /// `boundary + max(interior, halo_ticks·(1 + r))` — a lightly
    /// noisy link retransmits *for free* as long as the inflated
    /// transfer still fits inside the interior sweep. This is the
    /// prediction the farm's measured `machine_ticks / passes` tracks
    /// under transient link faults (`FarmReport::retransmit_ticks` is
    /// the measured `halo_ticks·r` share).
    pub fn pass_ticks_with_retransmits(&self, shards: usize, r: f64) -> f64 {
        let halo = self.halo_ticks(shards).to_f64() * (1.0 + r);
        if self.overlap {
            self.boundary_compute_ticks(shards).to_f64()
                + self.interior_compute_ticks(shards).to_f64().max(halo)
        } else {
            self.compute_ticks(shards).to_f64() + halo
        }
    }

    /// Throughput penalty of degraded re-partitioning: how many times
    /// slower the farm runs after retiring `retired` of `shards` boards
    /// (`≥ 1`; the survivors own wider slabs, so the compute barrier
    /// grows even though seam overhead shrinks).
    ///
    /// # Panics
    /// When `retired ≥ shards` — the farm cannot retire its last board,
    /// and `LatticeFarm` rejects such a [`FarmDegradeConfig`] budget
    /// up front (`lattice-farm`'s `FarmDegradeConfig::max_retired`).
    pub fn degraded_throughput_penalty(&self, shards: usize, retired: usize) -> f64 {
        assert!(retired < shards, "the farm cannot retire its last board");
        self.updates_per_tick(shards).ratio(self.updates_per_tick(shards - retired))
    }
}

/// Admission-control ledger over a farm's aggregate link capacity.
///
/// A multiplexing scheduler charges each admitted workload its
/// sustained [`FarmModel::link_demand`] against a shared
/// [`BitsPerTick`] budget, and queues arrivals that would push the
/// aggregate to the saturation point — the fleet-level restatement of
/// §6's pin bound: total halo traffic per tick must stay under what the
/// interconnect moves per tick, or exchange lands on every session's
/// critical path at once.
///
/// **A tie counts as the wall**, matching
/// [`FarmModel::critical_shards`]: an arrival whose demand lifts the
/// aggregate to *exactly* the capacity is refused, because at equality
/// the links have already caught the boards and any jitter (an ARQ
/// replay, a deeper pass) spills onto the critical path.
///
/// One carve-out keeps the ledger work-conserving: an arrival into an
/// **empty** budget is always admitted, even when its lone demand meets
/// the wall. Backpressure exists to bound *aggregate* demand across
/// sessions; refusing the only session would starve it forever without
/// protecting anyone.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LinkBudget {
    capacity: BitsPerTick,
    admitted: BitsPerTick,
}

impl LinkBudget {
    /// An empty ledger over `capacity` bits/tick of aggregate link
    /// bandwidth.
    pub fn new(capacity: BitsPerTick) -> Self {
        LinkBudget { capacity, admitted: BitsPerTick::ZERO }
    }

    /// A ledger that admits everything
    /// ([`BitsPerTick::UNTHROTTLED`] capacity).
    pub fn unthrottled() -> Self {
        LinkBudget::new(BitsPerTick::UNTHROTTLED)
    }

    /// The configured aggregate capacity.
    pub fn capacity(&self) -> BitsPerTick {
        self.capacity
    }

    /// The demand currently charged against the budget.
    pub fn admitted(&self) -> BitsPerTick {
        self.admitted
    }

    /// Remaining headroom before the wall (clamped at zero; infinite
    /// when unthrottled).
    pub fn headroom(&self) -> BitsPerTick {
        if self.capacity.is_unthrottled() {
            BitsPerTick::UNTHROTTLED
        } else {
            (self.capacity - self.admitted).max(BitsPerTick::ZERO)
        }
    }

    /// Whether `demand` would be admitted right now, without charging
    /// it.
    pub fn would_admit(&self, demand: BitsPerTick) -> bool {
        self.capacity.is_unthrottled()
            || self.admitted == BitsPerTick::ZERO
            || self.admitted + demand < self.capacity
    }

    /// Charges `demand` unconditionally, even past the wall. For
    /// restore paths (a daemon re-charging sessions it already admitted
    /// before a restart) where refusing would orphan live state; new
    /// arrivals go through [`LinkBudget::try_admit`].
    pub fn admit(&mut self, demand: BitsPerTick) {
        self.admitted += demand;
    }

    /// Charges `demand` against the budget if it fits; returns whether
    /// it was admitted. A refused arrival leaves the ledger unchanged —
    /// the caller queues it and retries after a [`release`].
    ///
    /// [`release`]: LinkBudget::release
    pub fn try_admit(&mut self, demand: BitsPerTick) -> bool {
        let ok = self.would_admit(demand);
        if ok {
            self.admitted += demand;
        }
        ok
    }

    /// Returns a departing workload's `demand` to the budget (clamped
    /// at zero, so a stray double-release cannot underflow into
    /// phantom headroom).
    pub fn release(&mut self, demand: BitsPerTick) {
        self.admitted = (self.admitted - demand).max(BitsPerTick::ZERO);
    }

    /// Admitted demand as a fraction of capacity (`0.0` when
    /// unthrottled — an infinite pipe is never utilized).
    pub fn utilization(&self) -> f64 {
        if self.capacity.is_unthrottled() || self.capacity == BitsPerTick::ZERO {
            0.0
        } else {
            self.admitted.ratio(self.capacity)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn model() -> FarmModel {
        // The paper's technology: D = 8, F = 10 MHz; a 48 × 240 FHP
        // problem on 2-PE boards with depth-2 passes (the bench setup).
        FarmModel::new(Technology::paper_1987(), 48, 240, 2, 2)
    }

    #[test]
    fn single_board_matches_the_plain_pipeline_count() {
        let m = model();
        // One board, no halo: n = 48·240, fill 2·(240 + 2), over p = 2.
        assert_eq!(m.compute_ticks(1), Ticks::new((48 * 240 + 2 * 242) / 2));
        assert_eq!(m.halo_bits(1), Bits::ZERO);
        assert_eq!(m.pass_ticks(1), m.compute_ticks(1));
    }

    #[test]
    fn sharding_shrinks_compute_and_grows_link_demand() {
        let m = model();
        let mut prev_compute = Ticks::new(u64::MAX);
        let mut prev_demand = BitsPerTick::ZERO;
        for s in [1usize, 2, 4, 8, 16] {
            let compute = m.compute_ticks(s);
            let demand = m.link_demand(s);
            assert!(compute < prev_compute, "S={s}: more boards, less work each");
            assert!(demand >= prev_demand, "S={s}: thinner slabs, hungrier links");
            prev_compute = compute;
            prev_demand = demand;
        }
    }

    #[test]
    fn link_demand_approaches_the_closed_form() {
        // Wide slabs: demand ≈ 2kDp / aug_width, §6's 2DP spread over
        // the board's columns.
        let m = FarmModel::new(Technology::paper_1987(), 512, 4096, 4, 3);
        let s = 4;
        let aug = f64_from_usize(m.slabs(s).iter().map(|sl| sl.aug_width()).max().unwrap());
        let closed = 2.0 * 3.0 * 8.0 * 4.0 / aug;
        let demand = m.link_demand(s).get();
        assert!((demand - closed).abs() / closed < 0.02, "{demand} vs {closed}");
    }

    #[test]
    fn strong_scaling_efficiency_is_high_but_sub_ideal() {
        let m = model();
        assert!((m.strong_efficiency(1) - 1.0).abs() < 1e-12);
        for s in [2usize, 4, 8] {
            let e = m.strong_efficiency(s);
            assert!(e < 1.0, "S={s}: halo recompute must cost something");
            assert!(e > 0.8, "S={s}: but not much on wide slabs, got {e}");
        }
        assert!(m.strong_efficiency(8) < m.strong_efficiency(2), "overhead grows with seams");
    }

    #[test]
    fn weak_scaling_is_nearly_flat_when_unthrottled() {
        let m = model();
        for s in [2usize, 4, 8, 16] {
            let e = m.weak_efficiency(s);
            assert!(e > 0.95 && e <= 1.0 + 1e-12, "S={s}: {e}");
        }
    }

    #[test]
    fn a_starved_link_rolls_the_farm_over() {
        // Interior boards import 2k = 4 columns × 48 rows × 8 bits =
        // 1536 bits per pass; at 2 bits/tick that is 768 ticks, which
        // overtakes compute once slabs get thin.
        let starved = model().with_link(BitsPerTick::new(2.0));
        let free = model();
        assert_eq!(free.critical_shards(16), None, "unthrottled never rolls over");
        let crit = starved.critical_shards(16).expect("2 bits/tick must roll over");
        assert!(crit > 1, "a single board has no links to starve");
        // Past the critical point, adding boards buys almost nothing.
        let below = starved.updates_per_tick(crit - 1);
        let above = starved.updates_per_tick(crit);
        assert!(above.ratio(below) < 1.5, "{below} → {above}");
        // And the throttled machine is strictly slower than the free one.
        assert!(starved.updates_per_tick(4) < free.updates_per_tick(4));
    }

    #[test]
    fn periodic_boundary_costs_wrap_rows_and_full_halos() {
        let null = model();
        let torus = model().with_periodic(true);
        assert_eq!(torus.aug_rows(), 48 + 4);
        // Edge boards no longer clamp: every board imports 2k columns.
        assert!(torus.halo_bits(2) > null.halo_bits(2));
        assert!(torus.redundancy(4) > null.redundancy(4));
    }

    #[test]
    fn redundancy_counts_every_seam() {
        let m = model();
        assert!((m.redundancy(1) - 1.0).abs() < 1e-12);
        // S = 4, k = 2: halo columns = (2+4+4+2) = 12 of 240.
        assert!((m.redundancy(4) - 252.0 / 240.0).abs() < 1e-12);
    }

    #[test]
    fn point_bundles_the_figures() {
        let p = model().with_link(BitsPerTick::new(16.0)).point(4);
        assert_eq!(p.shards, 4);
        assert!(p.halo_ticks > Ticks::ZERO);
        assert_eq!(p.pass_ticks, p.compute_ticks + p.halo_ticks);
        assert!(p.critical_link > BitsPerTick::ZERO);
        // Serialized: the slab is one undivided sweep.
        assert_eq!(p.boundary_ticks, Ticks::ZERO);
        assert_eq!(p.interior_ticks, p.compute_ticks);
    }

    #[test]
    fn an_exact_tie_is_the_bandwidth_wall() {
        // Hand-built dyadic balance: rows = 20, cols = 10, S = 2,
        // k = 1, p = 1, D = 8. Each slab is 5 owned + 1 halo columns,
        // so compute = 20·6 + 1·(6 + 2) = 128 ticks, and the seam
        // moves 1 col × 20 rows × 8 bits = 160 bits; at 1.25 bits/tick
        // (exact in binary floating point) that is 160 / 1.25 = 128
        // ticks. halo == compute exactly — the tie must register as
        // the rollover, because from here every retransmit and every
        // further thinning lands on the critical path.
        let m = FarmModel::new(Technology::paper_1987(), 20, 10, 1, 1)
            .with_link(BitsPerTick::new(1.25));
        assert_eq!(m.compute_ticks(2), Ticks::new(128));
        assert_eq!(m.halo_ticks(2), Ticks::new(128));
        assert_eq!(m.critical_shards(2), Some(2), "a tie counts as the wall");
        // A link even slightly faster breaks the tie and the wall
        // recedes past S = 2.
        let faster = m.with_link(BitsPerTick::new(1.3));
        assert!(faster.halo_ticks(2) < faster.compute_ticks(2));
        assert_eq!(faster.critical_shards(2), None);
        // Unthrottled: a zero-tick exchange is never "the wall", even
        // though 0 >= 0 would claim so for an empty interior.
        assert_eq!(m.with_link(BitsPerTick::UNTHROTTLED).critical_shards(2), None);
    }

    #[test]
    fn overlap_hides_the_exchange_behind_the_interior() {
        let starved = model().with_link(BitsPerTick::new(2.0));
        let overlapped = starved.with_overlap(true);
        for s in [2usize, 4, 8] {
            let b = overlapped.boundary_compute_ticks(s);
            let i = overlapped.interior_compute_ticks(s);
            let h = overlapped.halo_ticks(s);
            assert!(b > Ticks::ZERO, "S={s}: seams mean boundary sweeps");
            assert_eq!(overlapped.pass_ticks(s), b + i.max(h), "S={s}");
            // Splitting the sweep refills the pipeline per region, so
            // the phases sum a little over the undivided sweep…
            assert!(b + i >= overlapped.compute_ticks(s), "S={s}");
            // …but on a starved link the hidden transfer wins anyway.
            assert!(
                overlapped.pass_ticks(s) < starved.pass_ticks(s),
                "S={s}: {} !< {}",
                overlapped.pass_ticks(s),
                starved.pass_ticks(s)
            );
        }
        // The overlapped wall compares halo against the *interior*
        // window only, so it arrives no later than the serialized one.
        let (so, ss) = (overlapped.critical_shards(16), starved.critical_shards(16));
        let wall = ss.expect("2 bits/tick rolls the serialized farm over");
        assert!(so.expect("and a fortiori the overlapped race") <= wall);
        // Seamless single board: nothing to ship, nothing to split.
        assert_eq!(overlapped.boundary_compute_ticks(1), Ticks::ZERO);
        assert_eq!(overlapped.pass_ticks(1), starved.pass_ticks(1));
    }

    #[test]
    fn overlapped_retransmits_are_free_until_the_interior_runs_out() {
        // A lightly throttled link: halo well under the interior sweep.
        let m = model().with_link(BitsPerTick::new(16.0)).with_overlap(true);
        let s = 4;
        let (b, i, h) = (m.boundary_compute_ticks(s), m.interior_compute_ticks(s), m.halo_ticks(s));
        assert!(h < i, "setup: transfer hides entirely");
        // One replay still fits inside the interior — no wall-clock
        // cost at all.
        let r_free = (i.to_f64() / h.to_f64() - 1.0) * 0.9;
        assert!(r_free > 1.0);
        assert_eq!(m.pass_ticks_with_retransmits(s, r_free), (b + i).to_f64());
        // Enough replays overrun the window and the excess is exposed
        // tick for tick.
        let r_over = i.to_f64() / h.to_f64() + 1.0;
        let expect = b.to_f64() + h.to_f64() * (1.0 + r_over);
        assert_eq!(m.pass_ticks_with_retransmits(s, r_over), expect);
    }

    #[test]
    fn retransmission_term_extends_pass_ticks() {
        let m = model().with_link(BitsPerTick::new(16.0));
        // A clean link adds nothing.
        assert_eq!(m.pass_ticks_with_retransmits(4, 0.0), m.pass_ticks(4).to_f64());
        assert_eq!(m.frame_upset_prob(4, 0.0), 0.0);
        assert_eq!(m.expected_retransmits_per_pass(4, 0.0), 0.0);
        // One retransmission per pass replays exactly one exchange
        // barrier.
        let extra = m.pass_ticks_with_retransmits(4, 1.0) - m.pass_ticks(4).to_f64();
        assert_eq!(extra, m.halo_ticks(4).to_f64());
        // The upset probability grows with the frame (more shards never
        // shrink the hungriest frame here: interior boards appear at
        // S ≥ 3 and import the full 2k columns).
        let q2 = m.frame_upset_prob(2, 1e-3);
        let q4 = m.frame_upset_prob(4, 1e-3);
        assert!(q2 > 0.0 && q4 >= q2, "{q2} vs {q4}");
        // Small rates: expectation ≈ sites·rate (geometric tail ≈ q).
        let sites = m.halo_bits(4).to_f64() / 8.0;
        let e = m.expected_retransmits_per_pass(4, 1e-6);
        assert!((e - sites * 1e-6).abs() / (sites * 1e-6) < 1e-2, "{e}");
        // An unthrottled farm retransmits for free in tick terms.
        assert_eq!(model().pass_ticks_with_retransmits(4, 3.0), model().pass_ticks(4).to_f64());
    }

    #[test]
    fn degraded_farms_pay_a_bounded_throughput_penalty() {
        let m = model();
        assert_eq!(m.degraded_throughput_penalty(4, 0), 1.0);
        let p1 = m.degraded_throughput_penalty(4, 1);
        let p2 = m.degraded_throughput_penalty(4, 2);
        assert!(p1 > 1.0, "losing a board must cost throughput, got {p1}");
        assert!(p2 > p1, "losing two costs more");
        // Wide slabs: the penalty is close to the naive S/(S−r) head
        // count, a little under it because retired seams stop paying
        // halo recompute.
        assert!(p1 < 4.0 / 3.0 + 1e-9, "{p1}");
        assert!(p1 > 4.0 / 3.0 * 0.9, "{p1}");
    }

    #[test]
    fn two_axis_model_degenerates_to_the_columnar_model_on_one_grid_row() {
        for (periodic, overlap) in [(false, false), (true, false), (false, true), (true, true)] {
            let m = model()
                .with_periodic(periodic)
                .with_overlap(overlap)
                .with_link(BitsPerTick::new(16.0));
            for s in [1usize, 2, 4, 8] {
                let g = (1, s);
                assert_eq!(m.compute_ticks2(g), m.compute_ticks(s), "S={s}");
                assert_eq!(m.boundary_compute_ticks2(g), m.boundary_compute_ticks(s), "S={s}");
                assert_eq!(m.interior_compute_ticks2(g), m.interior_compute_ticks(s), "S={s}");
                assert_eq!(m.halo_bits2(g), (m.halo_bits(s), Bits::ZERO), "S={s}");
                assert_eq!(m.halo_ticks2(g), m.halo_ticks(s), "S={s}");
                assert_eq!(m.pass_ticks2(g), m.pass_ticks(s), "S={s}");
                assert_eq!(m.link_demand2(g).0, m.link_demand(s), "S={s}");
                assert_eq!(m.binding_tier(g), LinkTier::Intra, "S={s}");
            }
        }
    }

    #[test]
    fn grid_tiers_split_the_halo_and_count_corners_once() {
        // 48 × 240 torus on a 2×2 grid, k = 2: every block owns
        // 24 × 120 with depth-2 halos on all four sides and no on-board
        // wrap (the vertical wrap crosses the inter tier). Augmented
        // height 24 + 4 = 28.
        let m = model().with_periodic(true);
        let g = (2, 2);
        let (intra, inter) = m.halo_bits2(g);
        assert_eq!(intra, Bits::new(4 * 28 * 8), "halo cols × aug height, corners included");
        assert_eq!(inter, Bits::new(4 * 120 * 8), "halo rows × owned width, corners excluded");
        // Together the tiers import exactly aug_area − owned_area.
        assert_eq!(
            (intra.get() + inter.get()) / 8,
            28 * 124 - 24 * 120,
            "every imported site crosses exactly one tier"
        );
        // Throttling only the inter-rack wires makes the vertical axis
        // the binding tier, and the pass slows by its transfer.
        let throttled = m.with_tier_link(BitsPerTick::new(1.0));
        assert_eq!(m.binding_tier(g), LinkTier::Intra, "unthrottled ties bind intra");
        assert_eq!(throttled.binding_tier(g), LinkTier::Inter);
        assert_eq!(throttled.halo_ticks2(g), Ticks::new(4 * 120 * 8), "inter frame at 1 bit/tick");
        assert!(throttled.pass_ticks2(g) > m.pass_ticks2(g));
        assert_eq!(throttled.binding_link_demand(g), throttled.link_demand2(g).1);
        // The wall scan finds the first shape the throttled tier paces.
        let shapes = [(1usize, 4usize), (2, 2), (4, 1)];
        assert_eq!(m.critical_grid(&shapes), None, "unthrottled never rolls over");
        assert_eq!(
            throttled.critical_grid(&shapes),
            Some((2, 2)),
            "a single-row grid keeps the throttled tier idle"
        );
    }

    #[test]
    fn critical_shard_scan_skips_torus_layouts_the_farm_rejects() {
        // 12 columns, k = 2 on the torus: S ∈ {7..=11} would leave a
        // slab narrower than the halo, which `partition` now rejects —
        // the scan must skip those, not panic.
        let m = FarmModel::new(Technology::paper_1987(), 16, 12, 1, 2)
            .with_periodic(true)
            .with_link(BitsPerTick::new(0.5));
        let crit = m.critical_shards(12);
        assert!(crit.is_some(), "a 0.5 bits/tick link must roll over");
        assert!(crit.unwrap() <= 6, "rejected layouts cannot be the answer");
    }

    #[test]
    fn link_budget_admits_until_the_wall_and_ties_count_as_the_wall() {
        let mut b = LinkBudget::new(BitsPerTick::new(100.0));
        assert!(b.try_admit(BitsPerTick::new(40.0)));
        assert!(b.try_admit(BitsPerTick::new(40.0)));
        assert_eq!(b.admitted(), BitsPerTick::new(80.0));
        assert_eq!(b.headroom(), BitsPerTick::new(20.0));
        // Exactly reaching capacity is refused — the tie is the wall,
        // like `critical_shards`'s `>=`.
        assert!(!b.try_admit(BitsPerTick::new(20.0)));
        // A refusal leaves the ledger unchanged.
        assert_eq!(b.admitted(), BitsPerTick::new(80.0));
        // Strictly under the wall still fits.
        assert!(b.try_admit(BitsPerTick::new(19.0)));
        assert!((b.utilization() - 0.99).abs() < 1e-12, "{}", b.utilization());
    }

    #[test]
    fn link_budget_release_restores_headroom() {
        let mut b = LinkBudget::new(BitsPerTick::new(100.0));
        assert!(b.try_admit(BitsPerTick::new(60.0)));
        assert!(!b.try_admit(BitsPerTick::new(50.0)), "60 + 50 > 100");
        b.release(BitsPerTick::new(60.0));
        assert_eq!(b.admitted(), BitsPerTick::ZERO);
        assert!(b.try_admit(BitsPerTick::new(50.0)), "the queue drains after a departure");
        // A stray double-release clamps at zero rather than minting
        // phantom headroom.
        b.release(BitsPerTick::new(50.0));
        b.release(BitsPerTick::new(50.0));
        assert_eq!(b.admitted(), BitsPerTick::ZERO);
        assert_eq!(b.utilization(), 0.0);
    }

    #[test]
    fn link_budget_is_work_conserving_when_empty() {
        // A lone arrival over the wall is still admitted — backpressure
        // bounds aggregate demand, it does not starve the only session.
        let mut b = LinkBudget::new(BitsPerTick::new(10.0));
        assert!(b.would_admit(BitsPerTick::new(500.0)));
        assert!(b.try_admit(BitsPerTick::new(500.0)));
        // But nothing else joins until it departs.
        assert!(!b.try_admit(BitsPerTick::new(1.0)));
        b.release(BitsPerTick::new(500.0));
        assert!(b.try_admit(BitsPerTick::new(1.0)));
    }

    #[test]
    fn link_budget_unthrottled_admits_everything() {
        let mut b = LinkBudget::unthrottled();
        for _ in 0..64 {
            assert!(b.try_admit(BitsPerTick::new(1e9)));
        }
        assert_eq!(b.utilization(), 0.0);
        assert!(b.headroom().is_unthrottled());
    }

    #[test]
    fn link_budget_composes_with_the_model_cost_function() {
        // The scheduler's actual loop: charge each session's
        // `link_demand` until the fleet saturates.
        let m = model();
        let demand = m.link_demand(4);
        assert!(demand > BitsPerTick::ZERO);
        // Capacity for just over two such sessions: the third queues.
        let mut b = LinkBudget::new(demand * 2.5);
        assert!(b.try_admit(demand));
        assert!(b.try_admit(demand));
        assert!(!b.try_admit(demand), "third session must queue at 2.5× capacity");
        b.release(demand);
        assert!(b.try_admit(demand));
    }
}
