//! Property tests for the design-space algebra: the solvers must stay
//! consistent with the raw constraints over the whole technology space,
//! not just at the 1987 point.

use lattice_core::units::{BitsPerTick, Cells, ChipArea};
use lattice_vlsi::ablation::multi_stage_wsa;
use lattice_vlsi::{spa::Spa, wsa::Wsa, wsae::Wsae, Technology};
use proptest::prelude::*;

fn arb_tech() -> impl Strategy<Value = Technology> {
    (
        prop_oneof![Just(4u32), Just(8), Just(16)], // D
        32u32..512,                                 // pins
        1e-6f64..5e-3,                              // B
        1e-3f64..0.2,                               // Γ
        1u32..9,                                    // E
    )
        .prop_map(|(d_bits, pins, b, g, e_bits)| Technology {
            d_bits,
            pins: pins.max(2 * d_bits),
            b,
            g,
            e_bits,
            clock_hz: 10e6,
        })
        .prop_filter("validated", |t| t.validate().is_ok())
        // The corner solvers degrade but still require that the minimal
        // machine exists at all (a 1-PE, L = 1 stage fits the chip).
        .prop_filter("buildable", |t| Wsa::new(*t).feasible(1, 1) && Spa::new(*t).feasible(1, 1, 1))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The WSA corner always satisfies both constraints, exactly.
    #[test]
    fn wsa_corner_is_always_feasible(tech in arb_tech()) {
        let wsa = Wsa::new(tech);
        let c = wsa.corner();
        prop_assert!(c.p >= 1);
        prop_assert!(wsa.feasible(c.p, c.l), "{c:?}");
        // And it is a *corner*: one more row of lattice or one more PE
        // breaks something (unless pins already bind P).
        prop_assert!(!wsa.feasible(c.p, c.l + 1) || c.l == 1);
    }

    /// max_p agrees with brute force over the feasibility predicate.
    #[test]
    fn wsa_max_p_matches_brute_force(tech in arb_tech(), l in 1u32..3000) {
        let wsa = Wsa::new(tech);
        let fast = wsa.max_p(l);
        let brute = (1..=64).rev().find(|&p| wsa.feasible(p, l)).unwrap_or(0);
        prop_assert_eq!(fast, brute);
    }

    /// The SPA integer corner satisfies its constraints and never beats
    /// the real-valued pin ceiling.
    #[test]
    fn spa_corner_is_always_feasible(tech in arb_tech()) {
        let spa = Spa::new(tech);
        let c = spa.corner();
        prop_assert!(spa.feasible(c.w, c.p_w, c.p_k), "{c:?}");
        prop_assert!((c.p as f64) <= spa.p_pin_limit() + 1e-9);
        prop_assert!((c.p as f64) <= spa.p_area_limit(c.w) + 1e-9);
    }

    /// best_chip never misses a better split (brute force over all
    /// feasible (P_w, P_k) pairs).
    #[test]
    fn spa_best_chip_matches_brute_force(tech in arb_tech(), w in 1u32..200) {
        let spa = Spa::new(tech);
        let best = spa.best_chip(w).map(|d| d.p).unwrap_or(0);
        let mut brute = 0u32;
        for p_w in 1..=64u32 {
            for p_k in 1..=64u32 {
                if spa.feasible(w, p_w, p_k) {
                    brute = brute.max(p_w * p_k);
                }
            }
        }
        prop_assert_eq!(best, brute);
    }

    /// Technology scaling: finer features never shrink the corners.
    #[test]
    fn scaling_is_monotone(tech in arb_tech(), s in 1.0f64..4.0) {
        let fine = tech.scaled(s);
        prop_assume!(fine.validate().is_ok());
        let (w0, w1) = (Wsa::new(tech).corner(), Wsa::new(fine).corner());
        // The feasible region only grows: the old corner stays feasible,
        // and the new corner's PE count cannot drop. (Its L can: a finer
        // chip may spend its area on more PEs instead of lattice width.)
        prop_assert!(Wsa::new(fine).feasible(w0.p, w0.l));
        prop_assert!(w1.p >= w0.p);
        let (s0, s1) = (Spa::new(tech).corner(), Spa::new(fine).corner());
        prop_assert!(s1.p >= s0.p);
    }

    /// WSA-E accounting: cells split exactly, bandwidth constant.
    #[test]
    fn wsae_cell_split_is_exact(tech in arb_tech(), l in 1u32..100_000) {
        let w = Wsae::new(tech);
        let d = w.design(l);
        prop_assert_eq!(d.cells_on_chip + d.cells_off_chip, d.cells);
        prop_assert_eq!(d.cells, Cells::new(2 * u64::from(l) + 10));
        prop_assert_eq!(d.bandwidth, BitsPerTick::new(f64::from(2 * tech.d_bits)));
        prop_assert!(d.stage_area >= ChipArea::new(1.0));
    }

    /// Multi-stage chips: rate × stages at (weakly) shrinking lattices,
    /// never violating the raw area constraint.
    #[test]
    fn multi_stage_wsa_is_consistent(tech in arb_tech(), p in 1u32..5, stages in 1u32..9) {
        prop_assume!(2 * tech.d_bits * p <= tech.pins);
        if let Some(d) = multi_stage_wsa(tech, stages, p) {
            prop_assert_eq!(d.updates_per_tick, stages * p);
            prop_assert!(d.area_used <= ChipArea::new(1.0 + 1e-9), "{d:?}");
            if let Some(single) = multi_stage_wsa(tech, 1, p) {
                prop_assert!(d.l_max <= single.l_max);
            }
        }
    }
}
