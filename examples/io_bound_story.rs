//! The whole paper in one run: why lattice engines are I/O-bound.
//!
//! ```sh
//! cargo run --release --example io_bound_story
//! ```
//!
//! Walks the 1987 argument end to end, each step computed live:
//!
//! 1. the physics wants huge lattices (Reynolds scaling, §2);
//! 2. chips can hold plenty of PEs but few pins (design space, §6);
//! 3. a pipeline turns storage into bandwidth relief (engines, §3–5);
//! 4. no schedule can beat `R = O(B·S^{1/d})` (pebbling, §7);
//! 5. and the host link, not the silicon, sets the realized rate (§8).

use lattice_engines::core::Shape;
use lattice_engines::gas::{init, reynolds, FhpRule, FhpVariant};
use lattice_engines::pebbles::bounds::tau_upper_bound;
use lattice_engines::pebbles::strategies::tiled_schedule;
use lattice_engines::pebbles::LatticeGraph;
use lattice_engines::sim::{throttled_rate, HostLink, Pipeline};
use lattice_engines::vlsi::{wsa::Wsa, Technology};

fn main() {
    let tech = Technology::paper_1987();

    println!("== 1. the physics wants huge lattices (§2) ==");
    for re in [100.0f64, 1000.0, 10_000.0] {
        let s = reynolds::lattice_for_reynolds(re, 0.2, 0.1, 4.0);
        println!(
            "  Re = {re:>6}: feature {:>7.0} sites, lattice {:>9.2e} sites, \
             {:>9.2e} updates per eddy turnover",
            s.l_feature, s.sites, s.updates_per_turnover
        );
    }

    println!("\n== 2. chips have area for PEs but not pins for data (§6) ==");
    let wsa = Wsa::new(tech);
    let corner = wsa.corner();
    println!(
        "  1987 chip: {} PEs fit the pins (Π/2D = {:.1}), window for L = {} fills \
         the area ({:.1}% of silicon is PEs)",
        corner.p,
        wsa.p_pin_limit(),
        corner.l,
        100.0 * f64::from(corner.p) * tech.g / corner.area_used.get()
    );

    println!("\n== 3. pipeline depth converts storage into bandwidth relief (§3–5) ==");
    let shape = Shape::grid2(64, 128).expect("shape");
    let gas = init::random_fhp(shape, FhpVariant::I, 0.3, 7, false).expect("gas");
    let rule = FhpRule::new(FhpVariant::I, 3);
    for depth in [1usize, 4, 16] {
        let r = Pipeline::wide(4, depth).run(&rule, &gas, 0).expect("run");
        println!(
            "  depth {depth:>2}: {:>6.2} updates/tick at {:>5.1} memory bits/tick \
             -> {:>6.3} updates per memory bit",
            r.updates_per_tick(),
            r.memory_bits_per_tick(),
            r.updates_per_tick().get() / r.memory_bits_per_tick().get()
        );
    }

    println!("\n== 4. and no schedule can beat R = O(B*S^(1/d)) (§7) ==");
    let graph = LatticeGraph::new(2, 64, 32);
    for s in [64usize, 1024, 16384] {
        let st = tiled_schedule(&graph, s, None).expect("schedule");
        println!(
            "  S = {s:>6}: measured {:>5.2} updates per I/O  (ceiling tau(2S) = {:>6.1})",
            st.n_updates as f64 / st.io_moves as f64,
            tau_upper_bound(2, s)
        );
    }

    println!("\n== 5. the host link sets the realized rate (§8) ==");
    let peak = 20e6; // the 2-PE prototype chip
    for mbps in [40.0f64, 10.0, 2.0] {
        let realized = throttled_rate(peak, 32.0, tech.clock_hz, HostLink::new(mbps * 1e6));
        println!(
            "  {mbps:>5.1} MB/s host: {:>10.0} updates/s ({}x derating)",
            realized,
            (peak / realized).round()
        );
    }
    println!(
        "\nconclusion (§8): \"memory bandwidth, and not processor speed or size, \
         is the factor that limits performance.\""
    );
}
