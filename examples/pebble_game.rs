//! Pebble games, narrated: watch the I/O lower bound bite.
//!
//! ```sh
//! cargo run --release --example pebble_game
//! ```
//!
//! Plays the Hong–Kung red-blue pebble game on a 2-D LGCA computation
//! graph at several memory sizes, comparing the naïve schedule, the
//! tiled schedule, the analytical lower bound, and (on a tiny instance)
//! the provably optimal pebbling found by exhaustive search.

use lattice_engines::pebbles::bounds::{io_lower_bound, rate_upper_bound, tau_upper_bound};
use lattice_engines::pebbles::strategies::{naive_sweep, tiled_schedule, TilePlan};
use lattice_engines::pebbles::{min_io_exact, Game, LatticeGraph, Move, PebbleGraph};

fn main() {
    // Part 1: a hand-played game on the smallest interesting graph.
    println!("— part 1: hand-played red-blue game —");
    let tiny = LatticeGraph::new(1, 3, 1);
    let mut game = Game::new(&tiny, 4);
    let moves = [
        Move::Read(0),
        Move::Read(1),
        Move::Read(2),
        Move::Compute(4),               // site 1 at t=1 needs {0,1,2}
        Move::Slide { from: 0, to: 3 }, // boundary site reuses a register
        Move::Slide { from: 2, to: 5 }, // and so does the other edge
        Move::Write(3),
        Move::Write(4),
        Move::Write(5),
    ];
    for m in moves {
        game.apply(m).expect("legal move");
        println!("  {m:?}: {} reds in play, q = {}", game.red_count(), game.io_moves());
    }
    assert!(game.is_complete());
    let exact = min_io_exact(&tiny, 4).expect("solvable");
    println!("  complete with q = {} (exhaustive optimum: {exact})\n", game.io_moves());

    // Part 2: schedules vs the bound on a real computation graph.
    println!("— part 2: schedules vs the Hong–Kung bound (d = 2, 48² lattice, T = 24) —");
    let graph = LatticeGraph::new(2, 48, 24);
    println!(
        "  computation graph: {} vertices ({} updates)\n",
        graph.n_vertices(),
        graph.n_vertices() - 48 * 48
    );
    println!(
        "  {:>6} {:>12} {:>12} {:>12} {:>10} {:>10}",
        "S", "q naive", "q tiled", "q bound", "R/B tiled", "B·τ(2S)"
    );
    for s in [32usize, 128, 512, 2048, 8192] {
        let naive = naive_sweep(&graph, s).expect("naive fits");
        let tiled = tiled_schedule(&graph, s, None);
        let bound = io_lower_bound(graph.n_vertices() as u64, 2, s);
        let (q_tiled, rb) = match &tiled {
            Ok(st) => (
                st.io_moves.to_string(),
                format!("{:.2}", st.n_updates as f64 / st.io_moves as f64),
            ),
            Err(_) => ("(S too small)".into(), "—".into()),
        };
        println!(
            "  {:>6} {:>12} {:>12} {:>12.0} {:>10} {:>10.1}",
            s,
            naive.io_moves,
            q_tiled,
            bound,
            rb,
            rate_upper_bound(1.0, 2, s),
        );
    }
    println!(
        "\n  τ(2S) = 2(2!·2S)^(1/2): {:.1} at S=32 vs {:.1} at S=8192 — update rate",
        tau_upper_bound(2, 32),
        tau_upper_bound(2, 8192)
    );
    println!("  grows only as √S no matter how many PEs you add (R = O(B·S^(1/d))).");

    // Part 3: what the tiler actually does.
    if let Some(plan) = TilePlan::auto(2, 2048) {
        println!(
            "\n— part 3: the S = 2048 tile plan: {}×{} base, {} generations per pass \
             (block side {}) —",
            plan.b,
            plan.b,
            plan.h,
            plan.block_side()
        );
    }
}
