//! Pipeline simulation: run all three engines on one workload and
//! verify them against the reference, live.
//!
//! ```sh
//! cargo run --release --example pipeline_sim
//! ```
//!
//! Streams an FHP-II lattice through the serial pipeline, the WSA, and
//! the SPA simulators; checks every output bit against the reference
//! engine; prints the measured throughput/bandwidth/storage figures side
//! by side (the live version of experiment E8).

use lattice_engines::core::{evolve, Boundary, Shape};
use lattice_engines::gas::{init, FhpRule, FhpVariant};
use lattice_engines::sim::{Pipeline, SpaEngine};
use lattice_engines::vlsi::Technology;

fn main() {
    let (rows, cols, depth) = (48usize, 96usize, 4usize);
    let shape = Shape::grid2(rows, cols).expect("valid shape");
    let grid = init::random_fhp(shape, FhpVariant::II, 0.3, 21, false).expect("valid gas");
    let rule = FhpRule::new(FhpVariant::II, 6);
    let clock = Technology::paper_1987().clock();

    println!("workload: FHP-II {rows}x{cols}, {depth} generations, null boundary");
    let reference = evolve(&grid, &rule, Boundary::null(), 0, depth as u64);

    println!(
        "\n{:<22} {:>12} {:>14} {:>14} {:>12} {:>10}",
        "engine", "ticks", "updates/tick", "Mupdates/s", "mem bits/tk", "SR cells"
    );

    let serial = Pipeline::serial(depth).run(&rule, &grid, 0).expect("serial run");
    assert_eq!(serial.grid, reference, "serial pipeline must be bit-exact");
    show("serial (P=1)", &serial, clock);

    for p in [2usize, 4] {
        let wsa = Pipeline::wide(p, depth).run(&rule, &grid, 0).expect("wsa run");
        assert_eq!(wsa.grid, reference, "WSA must be bit-exact");
        show(&format!("WSA (P={p})"), &wsa, clock);
    }

    for w in [16usize, 32] {
        let spa = SpaEngine::new(w, depth).run(&rule, &grid, 0).expect("spa run");
        assert_eq!(spa.grid, reference, "SPA must be bit-exact");
        show(&format!("SPA (W={w})"), &spa, clock);
    }

    println!("\nall engines bit-exact against the reference ✓");
    println!(
        "note how SPA buys updates/tick with memory bandwidth while WSA \
              holds bandwidth at 2·D·P — the §6.3 trade, measured."
    );
}

fn show(name: &str, r: &lattice_engines::sim::EngineReport<u8>, clock: lattice_core::units::Hz) {
    println!(
        "{:<22} {:>12} {:>14.2} {:>14.1} {:>12.1} {:>10}",
        name,
        r.ticks,
        r.updates_per_tick(),
        r.updates_per_second(clock).get() / 1e6,
        r.memory_bits_per_tick(),
        r.sr_cells_per_stage
    );
}
