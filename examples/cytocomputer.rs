//! Cytocomputer: Sternberg's own workload on Sternberg's architecture.
//!
//! ```sh
//! cargo run --release --example cytocomputer
//! ```
//!
//! The SPA is named for Stanley Sternberg, whose pipelined image
//! machines (refs [17, 18] of the paper) chained morphological stages.
//! This example builds a noisy binary "cell culture" image, cleans it
//! with an opening and a closing, and runs the erosion stage through the
//! SPA simulator to show the same silicon serves both gases and images
//! — the paper's §1 claim that the whole workload class is "uniform,
//! local, and simple at each lattice point".

use lattice_engines::core::{evolve, Boundary, Coord, Grid, Shape};
use lattice_engines::image::morphology::{close, open, Erode, StructuringElement};
use lattice_engines::sim::SpaEngine;

fn main() {
    let (rows, cols) = (24usize, 48usize);
    let shape = Shape::grid2(rows, cols).expect("valid shape");

    // Three "cells" plus salt-and-pepper noise.
    let img = Grid::from_fn(shape, |c| {
        let (r, k) = (c.row() as i32, c.col() as i32);
        let cell = |cr: i32, cc: i32, rad: i32| (r - cr).pow(2) + (k - cc).pow(2) <= rad * rad;
        let body = cell(8, 10, 5) || cell(14, 26, 6) || cell(9, 39, 4);
        let h = lattice_engines::gas::prng::site_hash((r * 64 + k) as u64, 0, 7);
        let salt = h.is_multiple_of(31);
        let pepper = h.is_multiple_of(23);
        (body && !pepper) || salt
    });

    println!("noisy input ({} set pixels):", img.count(|p| p));
    render(&img);

    let se = StructuringElement::cross();
    let cleaned = close(&open(&img, se), se);
    println!(
        "\nafter opening (kill salt) + closing (fill pepper), {} pixels:",
        cleaned.count(|p| p)
    );
    render(&cleaned);

    // The same erosion stage, through the partitioned architecture.
    let reference = evolve(&cleaned, &Erode(se), Boundary::Fixed(true), 0, 1);
    let report = SpaEngine::new(12, 1).run(&Erode(se), &cleaned, 0).expect("SPA run");
    // (The SPA uses the null=false boundary; compare against that.)
    let spa_reference = evolve(&cleaned, &Erode(se), Boundary::null(), 0, 1);
    assert_eq!(report.grid, spa_reference, "SPA is bit-exact on image rules");
    println!(
        "\neroded on a 4-slice SPA: {} updates at {:.2} updates/tick, \
         {:.1} memory bits/tick (1-bit pixels), {} cells/PE",
        report.updates,
        report.updates_per_tick(),
        report.memory_bits_per_tick(),
        report.sr_cells_per_stage
    );
    let _ = reference;
    println!("\nsame engine, same constraints — pixels are just 1-bit sites (D = 1).");
}

fn render(img: &Grid<bool>) {
    let shape = img.shape();
    for r in 0..shape.rows() {
        let line: String =
            (0..shape.cols()).map(|c| if img.get(Coord::c2(r, c)) { '#' } else { '.' }).collect();
        println!("  {line}");
    }
}
