//! Quickstart: simulate an FHP lattice gas and watch its invariants.
//!
//! ```sh
//! cargo run --example quickstart
//! ```
//!
//! Builds a 64×64 FHP-I gas at 30% channel density, evolves it 100
//! generations on a torus with the reference engine, and prints the
//! conserved quantities each decade — the "hello world" of lattice-gas
//! computing (paper §2).

use lattice_engines::core::{Boundary, Evolver, Shape};
use lattice_engines::gas::observe::{Model, Observables};
use lattice_engines::gas::{init, FhpRule, FhpVariant};

fn main() {
    let (rows, cols) = (64usize, 64usize);
    let shape = Shape::grid2(rows, cols).expect("valid shape");
    let grid = init::random_fhp(shape, FhpVariant::I, 0.3, 42, true).expect("valid gas");
    let rule = FhpRule::new(FhpVariant::I, 7).with_wrap(rows, cols);

    let initial = Observables::measure(&grid, Model::Fhp);
    println!("FHP-I on a {rows}x{cols} torus, density {:.3} particles/site", initial.density);
    println!("{:>5}  {:>8}  {:>10}  {:>8}", "t", "mass", "momentum", "density");

    let mut ev = Evolver::new(grid, Boundary::Periodic, 0);
    for decade in 0..=10u64 {
        let obs = Observables::measure(ev.grid(), Model::Fhp);
        println!(
            "{:>5}  {:>8}  ({:>4},{:>4})  {:>8.3}",
            ev.time(),
            obs.mass,
            obs.momentum.0,
            obs.momentum.1,
            obs.density
        );
        assert_eq!(obs.mass, initial.mass, "mass must be conserved");
        assert_eq!(obs.momentum, initial.momentum, "momentum must be conserved");
        if decade < 10 {
            ev.run(&rule, 10);
        }
    }
    println!("\nmass and momentum exactly conserved over {} generations ✓", ev.time());
}
