//! Design explorer: size a lattice engine for *your* problem.
//!
//! ```sh
//! cargo run --example design_explorer -- 1024 50e6 512
//! #                                      L   updates/s budget_bits_per_tick
//! ```
//!
//! Given a lattice side, a target update rate, and a main-memory
//! bandwidth budget, walks the paper's §6 design space: which
//! architectures are feasible, how many chips each needs, and what each
//! costs in silicon and bandwidth — the engineering decision §6.3's
//! comparison is really about.

use lattice_engines::vlsi::compare::preferred_regime;
use lattice_engines::vlsi::{spa::Spa, wsa::Wsa, wsae::Wsae, Technology};

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let l: u32 = args.get(1).and_then(|s| s.parse().ok()).unwrap_or(1024);
    let target_rate: f64 = args.get(2).and_then(|s| s.parse().ok()).unwrap_or(50e6);
    let budget_bits: u32 = args.get(3).and_then(|s| s.parse().ok()).unwrap_or(512);

    let tech = Technology::paper_1987();
    println!("technology: 1987 3µ CMOS (D=8, Π=72, F=10 MHz)");
    println!(
        "problem: L = {l}, target {target_rate:.2e} updates/s, budget {budget_bits} bits/tick\n"
    );

    let updates_per_tick = target_rate / tech.clock_hz;

    // WSA.
    let wsa = Wsa::new(tech);
    let corner = wsa.corner();
    if l <= corner.l {
        let chips = (updates_per_tick / corner.p as f64).ceil() as u32;
        let k = chips.min(l);
        println!(
            "WSA:   feasible. {} PEs/chip, {} chips (depth {k}), {} bits/tick, \
             {} SR cells/chip",
            corner.p,
            chips,
            corner.bandwidth,
            wsa.cells(corner.p, l),
        );
    } else {
        println!(
            "WSA:   infeasible — L = {l} exceeds the on-chip window limit L* = {} \
             (absolute ceiling {}).",
            corner.l,
            wsa.l_upper_bound()
        );
    }

    // WSA-E.
    let wsae = Wsae::new(tech);
    let stage = wsae.design(l);
    let stages = updates_per_tick.ceil() as u32;
    println!(
        "WSA-E: feasible at any L. {} stages, {:.2}α per stage ({} cells off-chip), \
         constant {} bits/tick",
        stages, stage.stage_area, stage.cells_off_chip, stage.bandwidth
    );

    // SPA.
    let spa = Spa::new(tech);
    let chip = spa.corner();
    let slices = spa.slices(l, chip.w);
    let bw = spa.bandwidth(l, chip.w);
    let depth_needed = (updates_per_tick / slices as f64).ceil().max(1.0) as u32;
    let chips = spa.chips(l, depth_needed, &chip);
    println!(
        "SPA:   feasible at any L. W = {}, {} slices, depth {} → {} chips \
         ({}×{} PEs each), {} bits/tick",
        chip.w, slices, depth_needed, chips, chip.p_w, chip.p_k, bw
    );

    println!();
    match preferred_regime(
        tech,
        l,
        lattice_core::units::BitsPerTick::new(f64::from(budget_bits)),
        updates_per_tick,
        1024,
    ) {
        Some(r) => println!("recommended architecture under your budget: {r:?}"),
        None => println!(
            "no architecture meets {target_rate:.2e} updates/s within {budget_bits} \
             bits/tick — raise the bandwidth budget or lower the target (the paper's \
             point: memory bandwidth, not processing, is the limit)"
        ),
    }
}
