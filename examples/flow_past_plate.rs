//! Flow past a flat plate — the classic FHP demonstration scenario.
//!
//! ```sh
//! cargo run --release --example flow_past_plate
//! ```
//!
//! An eastward FHP-III wind in a walled channel hits a vertical plate;
//! we coarse-grain the momentum field and render it as ASCII arrows,
//! showing the wake forming behind the obstacle. This is the workload
//! class ("the recently studied lattice gas automata … are proposed as
//! a test bed", §1) the paper's engines were designed to accelerate.

use lattice_engines::core::Boundary;
use lattice_engines::gas::forcing::{evolve_forced, OpenOutflow, WindInflow};
use lattice_engines::gas::observe::{CoarseField, Model};
use lattice_engines::gas::{init, FhpRule, FhpVariant};

fn main() {
    let (rows, cols) = (60usize, 120usize);
    let plate_col = 30usize;
    let start =
        init::channel_with_plate(rows, cols, FhpVariant::III, 0.25, 0.35, plate_col, 0.4, 9)
            .expect("valid scene");
    let rule = FhpRule::new(FhpVariant::III, 4);

    println!("FHP-III channel {rows}x{cols}, plate at column {plate_col}");
    let steps = 300u64;
    // Host-driven forcing between engine passes: an upstream wind
    // reservoir and a non-reflecting exit (the workstation host's job in
    // a real lattice engine — without it a null-boundary channel drains).
    let wind = WindInflow { width: 3, seed: 1234, gusty: true };
    let exit = OpenOutflow { width: 2 };
    let grid = evolve_forced(&start, &rule, Boundary::null(), 0, steps, |g, t| {
        wind.apply(g, t);
        exit.apply(g);
    });
    println!("after {steps} generations with sustained inflow:\n");

    let block = 6usize;
    let field = CoarseField::measure(&grid, Model::Fhp, block);
    for r in 0..field.rows {
        let mut line = String::new();
        for c in 0..field.cols {
            let (px, py) = field.momentum_at(r, c);
            line.push(arrow(px, py, field.density_at(r, c)));
            line.push(' ');
        }
        println!("{line}");
    }
    println!(
        "\nlegend: → ↗ ↑ ↖ ← ↙ ↓ ↘ flow direction, · still fluid, # obstacle/empty; \
         note the slowed wake behind column {}",
        plate_col / block
    );

    // Quantify the wake: mean eastward momentum upstream vs in the wake.
    let mid = field.rows / 2;
    let up = field.momentum_at(mid, 2).0;
    let down = field.momentum_at(mid, plate_col / block + 1).0;
    println!("centerline px upstream = {up:.3}, just behind plate = {down:.3}");
    assert!(up > 0.0, "sustained inflow should keep upstream flow eastward");
    assert!(down < up, "the plate should shadow the wake");
}

fn arrow(px: f64, py: f64, density: f64) -> char {
    if density <= 0.0 {
        return '#';
    }
    let mag = (px * px + py * py).sqrt();
    if mag < 0.08 {
        return '·';
    }
    let angle = py.atan2(px); // +y is north
    const ARROWS: [char; 8] = ['→', '↗', '↑', '↖', '←', '↙', '↓', '↘'];
    let sector = ((angle / std::f64::consts::FRAC_PI_4).round() as i32).rem_euclid(8);
    ARROWS[sector as usize]
}
