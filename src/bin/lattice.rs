//! The `lattice` command-line tool: gases, engines, design space, and
//! pebbling bounds from the terminal. See `lattice help`.

use lattice_engines::cli;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match cli::parse(&args).and_then(cli::execute) {
        Ok(out) => print!("{out}"),
        Err(e) => {
            eprintln!("{e}");
            std::process::exit(cli::exit_code(&e));
        }
    }
}
