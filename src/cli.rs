//! Command-line interface for the `lattice` binary.
//!
//! Hand-rolled argument parsing (the workspace's dependency policy
//! excludes CLI crates); every command parses to a typed request and
//! executes to a string, so the whole surface is unit-testable without
//! spawning processes.
//!
//! ```text
//! lattice gas     --model fhp3 --rows 64 --cols 128 --steps 100 …
//! lattice engine  --arch wsa --width 4 --depth 8 --rows 64 --cols 128 …
//! lattice design  --l 1024 --rate 5e7 --budget 512
//! lattice pebble  --d 2 --r 64 --t 32 --s 1024
//! ```

use crate::core::units::Ticks;
use crate::core::{checkpoint, Boundary, Evolver, Shape};
use crate::gas::observe::{Model, Observables};
use crate::gas::{init, FhpRule, FhpVariant, HppRule};
use crate::pebbles::bounds::{io_lower_bound, tau_upper_bound};
use crate::pebbles::strategies::{naive_sweep, tiled_schedule};
use crate::pebbles::LatticeGraph;
use crate::sim::{Pipeline, SpaEngine, WsaePipeline};
use crate::vlsi::{spa::Spa, wsa::Wsa, wsae::Wsae, Technology};
use lattice_pebbles::PebbleGraph;
use std::collections::HashMap;

/// A parsed command-line invocation.
#[derive(Debug, Clone, PartialEq)]
pub enum Command {
    /// Evolve a gas and report observables.
    Gas {
        /// Gas model name (`hpp`, `fhp1`, `fhp2`, `fhp3`).
        model: String,
        /// Lattice rows.
        rows: usize,
        /// Lattice columns.
        cols: usize,
        /// Generations to run.
        steps: u64,
        /// Per-channel density.
        density: f64,
        /// RNG seed.
        seed: u64,
        /// Toroidal boundaries.
        periodic: bool,
        /// Checkpoint path to write at the end.
        save: Option<String>,
    },
    /// Run an architectural simulator and report measured figures.
    Engine {
        /// Architecture (`serial`, `wsa`, `spa`, `wsae`).
        arch: String,
        /// PEs per stage (wsa) .
        width: usize,
        /// Pipeline depth.
        depth: usize,
        /// SPA slice width.
        slice_width: usize,
        /// Lattice rows.
        rows: usize,
        /// Lattice columns.
        cols: usize,
        /// RNG seed.
        seed: u64,
    },
    /// Explore the §6 design space for a problem.
    Design {
        /// Lattice side.
        l: u32,
        /// Target update rate (updates/s).
        rate: f64,
        /// Main-memory budget, bits/tick.
        budget: u32,
    },
    /// Pebbling bounds for a computation graph.
    Pebble {
        /// Lattice dimension.
        d: usize,
        /// Lattice side.
        r: usize,
        /// Generations.
        t: usize,
        /// Processor storage (red pebbles).
        s: usize,
    },
    /// Resume an evolution from a checkpoint file.
    Resume {
        /// Checkpoint path (written by `gas --save`).
        load: String,
        /// Gas model the checkpoint belongs to.
        model: String,
        /// Additional generations.
        steps: u64,
        /// Seed (must match the original run for identical trajectories).
        seed: u64,
        /// Toroidal boundaries.
        periodic: bool,
        /// Path to write the new checkpoint.
        save: Option<String>,
    },
    /// Run a morphology/filter chain over a synthetic noisy image.
    Image {
        /// Comma-separated stage list from {erode, dilate, open, close,
        /// median, blur, threshold, sobel}.
        chain: String,
        /// Image rows.
        rows: usize,
        /// Image columns.
        cols: usize,
        /// Noise seed.
        seed: u64,
    },
    /// Render the pipeline wavefront (per-stage progress bars).
    Waveform {
        /// PEs per stage.
        width: usize,
        /// Pipeline depth.
        depth: usize,
        /// Lattice rows.
        rows: usize,
        /// Lattice columns.
        cols: usize,
    },
    /// Inject hardware faults into an engine run and report detection,
    /// rollback, and MTBF-style figures.
    FaultSim {
        /// Lattice rows.
        rows: usize,
        /// Lattice columns.
        cols: usize,
        /// PEs per stage.
        width: usize,
        /// Pipeline depth (one chip per stage).
        depth: usize,
        /// Generations to run.
        steps: u64,
        /// RNG seed (gas init and fault draws).
        seed: u64,
        /// Base transient upset rate, per shift-register store.
        rate: f64,
        /// Rollback retries per checkpoint window.
        retries: u32,
        /// Passes between checkpoints.
        ckpt_every: u64,
        /// Also stick a link bit on this chip (exercises degraded mode).
        stuck_chip: Option<usize>,
        /// Farm mode: sweep halo-link upset rate × shard count through
        /// the board-level recovery ladder instead of one chip engine.
        farm: bool,
        /// Comma-separated shard counts for `--farm` (e.g. `1,2,4`).
        farm_shards: String,
        /// Farm mode: sweep an R×C board grid (e.g. `2x2`) instead of
        /// the columnar shard list; upsets hit both link tiers.
        farm_grid: Option<(usize, usize)>,
        /// Farm mode: stick a halo-link bit on this board (exercises
        /// degraded re-partitioning).
        stuck_board: Option<usize>,
        /// Farm mode: overlapped halo exchange (ship-ahead staged
        /// frames race the interior sweep; faults invalidate windows).
        overlap: bool,
    },
    /// Shard a lattice over a board-level engine farm and report
    /// machine-level figures against the links-per-board model.
    Farm {
        /// Boards (columnar shards).
        shards: usize,
        /// Per-board engine (`wsa`, `spa`).
        engine: String,
        /// PEs per stage (wsa).
        width: usize,
        /// SPA slice width.
        slice_width: usize,
        /// Generations per pass (= halo width).
        depth: usize,
        /// Lattice rows.
        rows: usize,
        /// Lattice columns.
        cols: usize,
        /// Generations to run.
        steps: u64,
        /// RNG seed.
        seed: u64,
        /// Gas model (`hpp`, `fhp1`, `fhp2`, `fhp3`).
        model: String,
        /// Toroidal boundaries.
        periodic: bool,
        /// Inter-board link capacity in bits/tick (unthrottled if absent).
        /// With `--grid` this is the intra-rack (column-seam) tier.
        link_bits: Option<f64>,
        /// R×C rectangular board grid (`--grid 2x3`); omitted means the
        /// columnar 1×S layout. The shard count is R·C.
        grid: Option<(usize, usize)>,
        /// Inter-rack (row-seam) link capacity in bits/tick; needs
        /// `--grid` — the second tier is idle on columnar layouts.
        tier_bits: Option<f64>,
        /// Overlap halo exchange with interior compute: boundary sweeps
        /// first, ship-ahead while the interior evolves, barrier on
        /// arrival — pass time boundary + max(interior, halo).
        overlap: bool,
        /// Verify bit-exactness against the reference engine.
        verify: bool,
        /// Persist shard-consistent snapshots to this directory
        /// (double-buffered generation files; see `core::checkpoint::store`).
        checkpoint_dir: Option<String>,
        /// Passes between durable checkpoints (with `--checkpoint-dir`).
        ckpt_every: u64,
        /// Resume from the newest good generation in `--checkpoint-dir`
        /// instead of starting at generation 0; continues bit-exact.
        resume: bool,
    },
    /// Randomized chaos soak: seeded storms mixing every fault class
    /// (SR/PE/link upsets, worker hang/die, stuck boards, I/O faults
    /// against the durable store), with conservation and store
    /// invariants checked after every storm. Exits nonzero — printing a
    /// one-line deterministic repro — if any storm ends unrecovered.
    Chaos {
        /// Independent storms to run.
        storms: u64,
        /// Lattice rows (must exceed 2x --steps; see fault-sim).
        rows: usize,
        /// Lattice columns (must exceed 2x --steps).
        cols: usize,
        /// Generations per storm.
        steps: u64,
        /// Master seed; storm `i` derives its own seed as `seed + i`.
        seed: u64,
        /// Base transient upset rate for in-machine faults.
        rate: f64,
        /// Per-operation rate for each injected I/O fault class.
        io_rate: f64,
        /// Storm the service layer instead of a bare farm: each storm
        /// runs faulted sessions through repeated daemon kill+restart
        /// cycles with transport garbage injected between steps, then
        /// checks bit-exactness, quarantine containment, namespace
        /// hygiene, and cross-restart ladder accounting.
        serve: bool,
    },
    /// Start the lattice-as-a-service daemon: line-delimited JSON over
    /// TCP, model-driven admission control, LRU eviction to the
    /// durable checkpoint store, live metrics via `stats`.
    Serve {
        /// Bind address (`HOST:PORT`; port 0 lets the OS pick — the
        /// daemon prints the bound address before serving).
        addr: String,
        /// Durable store directory; enables eviction and makes a
        /// daemon kill + restart lossless.
        checkpoint_dir: Option<String>,
        /// Aggregate inter-board link capacity in bits/tick that
        /// admission control may hand out (default 512).
        link_capacity: Option<f64>,
        /// Sessions allowed to keep engine state in memory at once.
        max_live: usize,
    },
    /// Send one protocol frame to a running daemon and print the
    /// response line(s).
    Request {
        /// Daemon address (`HOST:PORT`).
        addr: String,
        /// The request frame, as JSON (validated locally first).
        line: String,
        /// Per-attempt I/O deadline (connect + read + write), seconds.
        timeout_secs: f64,
        /// Resends after a transport failure or timeout, with
        /// exponential backoff + jitter. A retried `step` is stamped
        /// with a request id so the daemon applies it at most once.
        retries: u32,
    },
    /// Benchmark the farm across engine x shards x overlap and report
    /// sites/second; `--json` writes a `BENCH_<date>.json` artifact.
    Bench {
        /// Lattice rows.
        rows: usize,
        /// Lattice columns.
        cols: usize,
        /// Generations per cell.
        steps: u64,
        /// RNG seed.
        seed: u64,
        /// Generations per pass (= halo width).
        depth: usize,
        /// Comma-separated shard counts (e.g. `1,2,4`).
        shards: String,
        /// Comma-separated halo-link transient fault rates (e.g.
        /// `0.01`): each adds a WSA sweep through the recovery ladder
        /// and reports the recovery cost alongside throughput.
        fault_rates: String,
        /// Inter-board link capacity in bits per engine tick. Finite
        /// by default so the link-utilization column measures a real
        /// wire, unlike the unthrottled `farm` default. With `--grid`
        /// this is the intra-rack tier.
        link_bits: f64,
        /// Also bench an R×C board grid (`--grid 2x2`): adds grid legs
        /// alongside the columnar shard sweep.
        grid: Option<(usize, usize)>,
        /// Inter-rack tier capacity for the grid legs, bits/tick
        /// (defaults to `--link-bits`); needs `--grid`.
        tier_bits: Option<f64>,
        /// Also write the machine-readable artifact.
        json: bool,
        /// Artifact path (default `BENCH_<date>.json`).
        out: Option<String>,
        /// Compare against a checked-in artifact and fail if any
        /// configuration's sites/sec regressed beyond `tolerance`.
        baseline: Option<String>,
        /// Allowed fractional sites/sec slack vs the baseline.
        tolerance: f64,
    },
    /// Print the version/summary banner.
    Info,
}

/// A CLI error with a user-facing message.
#[derive(Debug, Clone, PartialEq)]
pub struct CliError(pub String);

impl std::fmt::Display for CliError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for CliError {}

/// The process exit code for a failed command. Most failures exit 2;
/// `lattice request` distinguishes the three ways a round trip can go
/// wrong so scripts can branch without parsing prose: 3 = transport
/// failure (connect/read/write), 4 = deadline exceeded, 5 = the daemon
/// itself answered with an error frame.
pub fn exit_code(err: &CliError) -> i32 {
    let msg = err.0.as_str();
    if msg.starts_with("request: timeout") {
        4
    } else if msg.starts_with("request: transport") {
        3
    } else if msg.starts_with("request: daemon error") {
        5
    } else {
        2
    }
}

fn parse_flags(args: &[String]) -> Result<HashMap<String, String>, CliError> {
    let mut map = HashMap::new();
    let mut i = 0;
    while i < args.len() {
        let a = &args[i];
        if let Some(name) = a.strip_prefix("--") {
            if let Some((k, v)) = name.split_once('=') {
                map.insert(k.to_string(), v.to_string());
                i += 1;
            } else if i + 1 < args.len() && !args[i + 1].starts_with("--") {
                map.insert(name.to_string(), args[i + 1].clone());
                i += 2;
            } else {
                // Bare flag.
                map.insert(name.to_string(), "true".to_string());
                i += 1;
            }
        } else {
            return Err(CliError(format!("unexpected argument `{a}` (flags are --name value)")));
        }
    }
    Ok(map)
}

fn get<T: std::str::FromStr>(
    flags: &HashMap<String, String>,
    name: &str,
    default: T,
) -> Result<T, CliError> {
    match flags.get(name) {
        None => Ok(default),
        Some(v) => v.parse().map_err(|_| CliError(format!("bad value for --{name}: `{v}`"))),
    }
}

/// Column alignment for [`SweepTable`].
#[derive(Clone, Copy)]
enum Align {
    Left,
    Right,
}

/// Fixed-width formatter for the sweep tables (`fault-sim`,
/// `fault-sim --farm`, `chaos`, `bench`): one place owns each table's
/// column widths so headers and rows cannot drift apart.
struct SweepTable {
    cols: Vec<(&'static str, usize, Align)>,
}

impl SweepTable {
    /// A table from `(name, min_width, align)` triples; every column is
    /// at least as wide as its header.
    fn new(cols: &[(&'static str, usize, Align)]) -> Self {
        SweepTable { cols: cols.iter().map(|&(n, w, a)| (n, w.max(n.len()), a)).collect() }
    }

    /// The header line, trailing newline included.
    fn header(&self) -> String {
        let cells: Vec<String> =
            self.cols.iter().map(|&(name, w, _)| format!("{name:<w$}")).collect();
        format!("{}\n", cells.join("  ").trim_end())
    }

    /// One row, trailing newline included. Fewer cells than columns is
    /// allowed — the last cell given is never padded, so spill-over
    /// messages ("gave up: …") can span the remaining columns.
    fn row(&self, cells: &[String]) -> String {
        let mut out = String::new();
        for (i, cell) in cells.iter().enumerate() {
            if i > 0 {
                out.push_str("  ");
            }
            match self.cols.get(i) {
                Some(&(_, w, align)) if i + 1 < cells.len() => match align {
                    Align::Left => out.push_str(&format!("{cell:<w$}")),
                    Align::Right => out.push_str(&format!("{cell:>w$}")),
                },
                _ => out.push_str(cell),
            }
        }
        out.push('\n');
        out
    }
}

/// Usage text.
pub fn usage() -> String {
    "lattice — VLSI lattice engines (Kugelmass–Squier–Steiglitz 1987)\n\
     \n\
     USAGE:\n\
       lattice gas    [--model hpp|fhp1|fhp2|fhp3] [--rows N] [--cols N]\n\
                      [--steps N] [--density F] [--seed N] [--periodic]\n\
                      [--save FILE]\n\
       lattice engine [--arch serial|wsa|spa|wsae] [--width P] [--depth K]\n\
                      [--slice-width W] [--rows N] [--cols N] [--seed N]\n\
       lattice resume --load FILE [--model M] [--steps N] [--seed N]\n\
                      [--periodic] [--save FILE]\n\
       lattice design [--l N] [--rate F] [--budget BITS]\n\
       lattice pebble [--d N] [--r N] [--t N] [--s N]\n\
       lattice image  [--chain ops] [--rows N] [--cols N] [--seed N]\n\
       lattice waveform [--width P] [--depth K] [--rows N] [--cols N]\n\
       lattice fault-sim [--rows N] [--cols N] [--width P] [--depth K]\n\
                      [--steps N] [--seed N] [--rate F] [--retries N]\n\
                      [--ckpt-every N] [--stuck-chip J]\n\
                      [--farm] [--farm-shards S1,S2,..] [--farm-grid RxC]\n\
                      [--stuck-board B] [--overlap]\n\
       lattice farm   [--shards S] [--grid RxC] [--engine wsa|spa]\n\
                      [--width P] [--slice-width W] [--depth K]\n\
                      [--rows N] [--cols N] [--steps N] [--seed N]\n\
                      [--model M] [--periodic] [--link-bits F]\n\
                      [--tier-bits F] [--overlap] [--verify]\n\
                      [--checkpoint-dir DIR] [--ckpt-every N] [--resume]\n\
       lattice chaos  [--storms N] [--rows N] [--cols N] [--steps N]\n\
                      [--seed N] [--rate F] [--io-rate F] [--serve]\n\
       lattice serve  [--addr HOST:PORT] [--checkpoint-dir DIR]\n\
                      [--link-capacity BITS_PER_TICK] [--max-live N]\n\
       lattice request --addr HOST:PORT --line JSON_FRAME\n\
                      [--timeout SECS] [--retries N]\n\
       lattice bench  [--rows N] [--cols N] [--steps N] [--seed N]\n\
                      [--depth K] [--shards S1,S2,..] [--fault-rates F1,F2,..]\n\
                      [--link-bits F] [--grid RxC] [--tier-bits F]\n\
                      [--json] [--out FILE]\n\
                      [--baseline FILE] [--tolerance F]\n\
       lattice info\n"
        .to_string()
}

/// Parses a board-grid shape written `RxC` (e.g. `2x3`).
fn parse_grid(s: &str) -> Result<(usize, usize), CliError> {
    let err = || CliError(format!("bad grid `{s}` (expected RxC, e.g. 2x3)"));
    let (r, c) = s.split_once(['x', 'X']).ok_or_else(err)?;
    let rows: usize = r.trim().parse().map_err(|_| err())?;
    let cols: usize = c.trim().parse().map_err(|_| err())?;
    if rows == 0 || cols == 0 {
        return Err(err());
    }
    Ok((rows, cols))
}

/// Parses an argument vector (without the program name).
pub fn parse(args: &[String]) -> Result<Command, CliError> {
    let Some((cmd, rest)) = args.split_first() else {
        return Err(CliError(usage()));
    };
    let flags = parse_flags(rest)?;
    match cmd.as_str() {
        "gas" => Ok(Command::Gas {
            model: get(&flags, "model", "fhp1".to_string())?,
            rows: get(&flags, "rows", 64)?,
            cols: get(&flags, "cols", 64)?,
            steps: get(&flags, "steps", 100)?,
            density: get(&flags, "density", 0.3)?,
            seed: get(&flags, "seed", 42)?,
            periodic: flags.contains_key("periodic"),
            save: flags.get("save").cloned(),
        }),
        "engine" => Ok(Command::Engine {
            arch: get(&flags, "arch", "wsa".to_string())?,
            width: get(&flags, "width", 2)?,
            depth: get(&flags, "depth", 4)?,
            slice_width: get(&flags, "slice-width", 16)?,
            rows: get(&flags, "rows", 48)?,
            cols: get(&flags, "cols", 96)?,
            seed: get(&flags, "seed", 42)?,
        }),
        "design" => Ok(Command::Design {
            l: get(&flags, "l", 1024)?,
            rate: get(&flags, "rate", 5e7)?,
            budget: get(&flags, "budget", 512)?,
        }),
        "pebble" => Ok(Command::Pebble {
            d: get(&flags, "d", 2)?,
            r: get(&flags, "r", 32)?,
            t: get(&flags, "t", 16)?,
            s: get(&flags, "s", 256)?,
        }),
        "resume" => Ok(Command::Resume {
            load: flags
                .get("load")
                .cloned()
                .ok_or_else(|| CliError("resume needs --load FILE".into()))?,
            model: get(&flags, "model", "fhp1".to_string())?,
            steps: get(&flags, "steps", 100)?,
            seed: get(&flags, "seed", 42)?,
            periodic: flags.contains_key("periodic"),
            save: flags.get("save").cloned(),
        }),
        "image" => Ok(Command::Image {
            chain: get(&flags, "chain", "median,open,close".to_string())?,
            rows: get(&flags, "rows", 24)?,
            cols: get(&flags, "cols", 48)?,
            seed: get(&flags, "seed", 7)?,
        }),
        "waveform" => Ok(Command::Waveform {
            width: get(&flags, "width", 1)?,
            depth: get(&flags, "depth", 4)?,
            rows: get(&flags, "rows", 16)?,
            cols: get(&flags, "cols", 24)?,
        }),
        "fault-sim" => Ok(Command::FaultSim {
            rows: get(&flags, "rows", 48)?,
            cols: get(&flags, "cols", 64)?,
            width: get(&flags, "width", 2)?,
            depth: get(&flags, "depth", 4)?,
            steps: get(&flags, "steps", 8)?,
            seed: get(&flags, "seed", 42)?,
            rate: get(&flags, "rate", 3e-5)?,
            retries: get(&flags, "retries", 3)?,
            ckpt_every: get(&flags, "ckpt-every", 1)?,
            stuck_chip: match flags.get("stuck-chip") {
                None => None,
                Some(v) => Some(
                    v.parse()
                        .map_err(|_| CliError(format!("bad value for --stuck-chip: `{v}`")))?,
                ),
            },
            farm: flags.contains_key("farm"),
            farm_shards: get(&flags, "farm-shards", "1,2,4".to_string())?,
            farm_grid: match flags.get("farm-grid") {
                None => None,
                Some(v) => Some(parse_grid(v)?),
            },
            stuck_board: match flags.get("stuck-board") {
                None => None,
                Some(v) => Some(
                    v.parse()
                        .map_err(|_| CliError(format!("bad value for --stuck-board: `{v}`")))?,
                ),
            },
            overlap: flags.contains_key("overlap"),
        }),
        "farm" => {
            let grid = match flags.get("grid") {
                None => None,
                Some(v) => Some(parse_grid(v)?),
            };
            // `--grid RxC` implies R·C boards; an explicit `--shards`
            // must agree with it.
            let shards = match grid {
                Some((gr, gc)) if !flags.contains_key("shards") => gr * gc,
                _ => {
                    let s = get(&flags, "shards", 4)?;
                    if let Some((gr, gc)) = grid {
                        if gr * gc != s {
                            return Err(CliError(format!(
                                "farm: --grid {gr}x{gc} disagrees with --shards {s}"
                            )));
                        }
                    }
                    s
                }
            };
            Ok(Command::Farm {
                shards,
                grid,
                tier_bits: match flags.get("tier-bits") {
                    None => None,
                    Some(v) => Some(
                        v.parse()
                            .map_err(|_| CliError(format!("bad value for --tier-bits: `{v}`")))?,
                    ),
                },
                engine: get(&flags, "engine", "wsa".to_string())?,
                width: get(&flags, "width", 2)?,
                slice_width: get(&flags, "slice-width", 1)?,
                depth: get(&flags, "depth", 2)?,
                rows: get(&flags, "rows", 48)?,
                cols: get(&flags, "cols", 96)?,
                steps: get(&flags, "steps", 8)?,
                seed: get(&flags, "seed", 42)?,
                model: get(&flags, "model", "fhp1".to_string())?,
                periodic: flags.contains_key("periodic"),
                link_bits: match flags.get("link-bits") {
                    None => None,
                    Some(v) => Some(
                        v.parse()
                            .map_err(|_| CliError(format!("bad value for --link-bits: `{v}`")))?,
                    ),
                },
                overlap: flags.contains_key("overlap"),
                verify: flags.contains_key("verify"),
                checkpoint_dir: flags.get("checkpoint-dir").cloned(),
                ckpt_every: get(&flags, "ckpt-every", 1)?,
                resume: flags.contains_key("resume"),
            })
        }
        "chaos" => Ok(Command::Chaos {
            storms: get(&flags, "storms", 4)?,
            rows: get(&flags, "rows", 36)?,
            cols: get(&flags, "cols", 40)?,
            steps: get(&flags, "steps", 6)?,
            seed: get(&flags, "seed", 42)?,
            rate: get(&flags, "rate", 2e-3)?,
            io_rate: get(&flags, "io-rate", 0.1)?,
            serve: flags.contains_key("serve"),
        }),
        "serve" => Ok(Command::Serve {
            addr: get(&flags, "addr", "127.0.0.1:0".to_string())?,
            checkpoint_dir: flags.get("checkpoint-dir").cloned(),
            link_capacity: match flags.get("link-capacity") {
                None => None,
                Some(v) => Some(
                    v.parse()
                        .map_err(|_| CliError(format!("bad value for --link-capacity: `{v}`")))?,
                ),
            },
            max_live: get(&flags, "max-live", 4)?,
        }),
        "request" => Ok(Command::Request {
            addr: flags
                .get("addr")
                .cloned()
                .ok_or_else(|| CliError("request needs --addr HOST:PORT".into()))?,
            line: flags
                .get("line")
                .cloned()
                .ok_or_else(|| CliError("request needs --line '<json frame>'".into()))?,
            timeout_secs: get(&flags, "timeout", 30.0)?,
            retries: get(&flags, "retries", 0)?,
        }),
        "bench" => Ok(Command::Bench {
            rows: get(&flags, "rows", 48)?,
            cols: get(&flags, "cols", 96)?,
            steps: get(&flags, "steps", 8)?,
            seed: get(&flags, "seed", 42)?,
            depth: get(&flags, "depth", 2)?,
            shards: get(&flags, "shards", "1,2,4".to_string())?,
            fault_rates: get(&flags, "fault-rates", String::new())?,
            link_bits: get(&flags, "link-bits", 16.0)?,
            grid: match flags.get("grid") {
                None => None,
                Some(v) => Some(parse_grid(v)?),
            },
            tier_bits: match flags.get("tier-bits") {
                None => None,
                Some(v) => Some(
                    v.parse().map_err(|_| CliError(format!("bad value for --tier-bits: `{v}`")))?,
                ),
            },
            json: flags.contains_key("json"),
            out: flags.get("out").cloned(),
            baseline: flags.get("baseline").cloned(),
            tolerance: get(&flags, "tolerance", 0.02)?,
        }),
        "info" => Ok(Command::Info),
        "help" | "--help" | "-h" => Err(CliError(usage())),
        other => Err(CliError(format!("unknown command `{other}`\n\n{}", usage()))),
    }
}

/// Executes a command, returning the report text.
pub fn execute(cmd: Command) -> Result<String, CliError> {
    match cmd {
        Command::Gas { model, rows, cols, steps, density, seed, periodic, save } => {
            run_gas(&model, rows, cols, steps, density, seed, periodic, save.as_deref())
        }
        Command::Engine { arch, width, depth, slice_width, rows, cols, seed } => {
            run_engine(&arch, width, depth, slice_width, rows, cols, seed)
        }
        Command::Resume { load, model, steps, seed, periodic, save } => {
            run_resume(&load, &model, steps, seed, periodic, save.as_deref())
        }
        Command::Design { l, rate, budget } => Ok(run_design(l, rate, budget)),
        Command::Pebble { d, r, t, s } => run_pebble(d, r, t, s),
        Command::Image { chain, rows, cols, seed } => run_image(&chain, rows, cols, seed),
        Command::Waveform { width, depth, rows, cols } => {
            let shape = Shape::grid2(rows, cols).map_err(|e| CliError(e.to_string()))?;
            let grid = init::random_fhp(shape, FhpVariant::I, 0.3, 5, false)
                .map_err(|e| CliError(e.to_string()))?;
            let rule = FhpRule::new(FhpVariant::I, 5);
            let stride = ((rows * cols / 12).max(1)) as u64;
            let wf = crate::sim::waveform::record(&rule, &grid, width, depth, stride)
                .map_err(|e| CliError(e.to_string()))?;
            wf.check_invariants().map_err(CliError)?;
            Ok(format!(
                "pipeline wavefront: {width} PE(s)/stage, depth {depth}, \
                 {rows}x{cols} FHP-I\n{}\nthe staircase is §3's 'computation \
                 proceeds on a wavefront through time and space'.\n",
                wf.render()
            ))
        }
        Command::FaultSim {
            rows,
            cols,
            width,
            depth,
            steps,
            seed,
            rate,
            retries,
            ckpt_every,
            stuck_chip,
            farm,
            farm_shards,
            farm_grid,
            stuck_board,
            overlap,
        } => {
            if farm {
                run_farm_fault_sim(
                    rows,
                    cols,
                    width,
                    depth,
                    steps,
                    seed,
                    rate,
                    retries,
                    ckpt_every,
                    &farm_shards,
                    farm_grid,
                    stuck_board,
                    overlap,
                )
            } else {
                run_fault_sim(
                    rows, cols, width, depth, steps, seed, rate, retries, ckpt_every, stuck_chip,
                )
            }
        }
        Command::Farm {
            shards,
            engine,
            width,
            slice_width,
            depth,
            rows,
            cols,
            steps,
            seed,
            model,
            periodic,
            link_bits,
            grid,
            tier_bits,
            overlap,
            verify,
            checkpoint_dir,
            ckpt_every,
            resume,
        } => run_farm(FarmArgs {
            shards,
            engine,
            width,
            slice_width,
            depth,
            rows,
            cols,
            steps,
            seed,
            model,
            periodic,
            link_bits,
            grid,
            tier_bits,
            overlap,
            verify,
            checkpoint_dir,
            ckpt_every,
            resume,
        }),
        Command::Chaos { storms, rows, cols, steps, seed, rate, io_rate, serve } => {
            if serve {
                run_serve_chaos(storms, steps, seed, rate)
            } else {
                run_chaos(storms, rows, cols, steps, seed, rate, io_rate)
            }
        }
        Command::Serve { addr, checkpoint_dir, link_capacity, max_live } => {
            run_serve(addr, checkpoint_dir, link_capacity, max_live)
        }
        Command::Request { addr, line, timeout_secs, retries } => {
            run_request(&addr, &line, timeout_secs, retries)
        }
        Command::Bench {
            rows,
            cols,
            steps,
            seed,
            depth,
            shards,
            fault_rates,
            link_bits,
            grid,
            tier_bits,
            json,
            out,
            baseline,
            tolerance,
        } => run_bench(BenchArgs {
            rows,
            cols,
            steps,
            seed,
            depth,
            shards,
            fault_rates,
            link_bits,
            grid,
            tier_bits,
            json,
            out,
            baseline,
            tolerance,
        }),
        Command::Info => Ok(format!(
            "lattice-engines {} — engines, bounds, and gases from \
             'Performance of VLSI Engines for Lattice Computations' (1987).\n\
             Crates: core, gas, embed, vlsi, sim, pebbles, bench. See README.md.",
            env!("CARGO_PKG_VERSION")
        )),
    }
}

#[allow(clippy::too_many_arguments)]
fn run_gas(
    model: &str,
    rows: usize,
    cols: usize,
    steps: u64,
    density: f64,
    seed: u64,
    periodic: bool,
    save: Option<&str>,
) -> Result<String, CliError> {
    let shape = Shape::grid2(rows, cols).map_err(|e| CliError(e.to_string()))?;
    let boundary = if periodic { Boundary::Periodic } else { Boundary::null() };
    let (grid, obs_model) = match model {
        "hpp" => (
            init::random_hpp(shape, density, seed).map_err(|e| CliError(e.to_string()))?,
            Model::Hpp,
        ),
        "fhp1" | "fhp2" | "fhp3" => {
            let variant = match model {
                "fhp1" => FhpVariant::I,
                "fhp2" => FhpVariant::II,
                _ => FhpVariant::III,
            };
            (
                init::random_fhp(shape, variant, density, seed, periodic)
                    .map_err(|e| CliError(e.to_string()))?,
                Model::Fhp,
            )
        }
        other => return Err(CliError(format!("unknown gas model `{other}`"))),
    };
    let before = Observables::measure(&grid, obs_model);
    let mut ev = Evolver::new(grid, boundary, 0);
    match model {
        "hpp" => ev.run(&HppRule::new(), steps),
        "fhp1" => run_fhp(&mut ev, FhpVariant::I, seed, periodic, rows, cols, steps),
        "fhp2" => run_fhp(&mut ev, FhpVariant::II, seed, periodic, rows, cols, steps),
        _ => run_fhp(&mut ev, FhpVariant::III, seed, periodic, rows, cols, steps),
    }
    let after = Observables::measure(ev.grid(), obs_model);
    let mut out = format!(
        "{model} on {rows}x{cols} ({}), {steps} generations\n\
         mass:     {} -> {}\n\
         momentum: {:?} -> {:?}\n\
         density:  {:.4} -> {:.4}\n",
        if periodic { "torus" } else { "null boundary" },
        before.mass,
        after.mass,
        before.momentum,
        after.momentum,
        before.density,
        after.density,
    );
    if periodic && (after.mass != before.mass || after.momentum != before.momentum) {
        return Err(CliError("conservation violated — this is a bug".into()));
    }
    if let Some(path) = save {
        let bytes = checkpoint::save(ev.grid(), Ticks::new(steps));
        std::fs::write(path, &bytes).map_err(|e| CliError(format!("write {path}: {e}")))?;
        out.push_str(&format!("checkpoint: {path} ({} bytes)\n", bytes.len()));
    }
    Ok(out)
}

fn run_resume(
    load: &str,
    model: &str,
    steps: u64,
    seed: u64,
    periodic: bool,
    save: Option<&str>,
) -> Result<String, CliError> {
    let bytes = std::fs::read(load).map_err(|e| CliError(format!("read {load}: {e}")))?;
    let (grid, t0) = checkpoint::load::<u8>(&bytes).map_err(|e| CliError(e.to_string()))?;
    let t0 = t0.get();
    let shape = grid.shape();
    let (rows, cols) = (shape.rows(), shape.cols());
    let boundary = if periodic { Boundary::Periodic } else { Boundary::null() };
    let mut ev = Evolver::new(grid, boundary, t0);
    match model {
        "hpp" => ev.run(&HppRule::new(), steps),
        "fhp1" => run_fhp(&mut ev, FhpVariant::I, seed, periodic, rows, cols, steps),
        "fhp2" => run_fhp(&mut ev, FhpVariant::II, seed, periodic, rows, cols, steps),
        "fhp3" => run_fhp(&mut ev, FhpVariant::III, seed, periodic, rows, cols, steps),
        other => return Err(CliError(format!("unknown gas model `{other}`"))),
    }
    let mut out =
        format!("resumed {model} at generation {t0}, ran {steps} more (now at {})\n", ev.time());
    if let Some(path) = save {
        let bytes = checkpoint::save(ev.grid(), Ticks::new(ev.time()));
        std::fs::write(path, &bytes).map_err(|e| CliError(format!("write {path}: {e}")))?;
        out.push_str(&format!("checkpoint: {path} ({} bytes)\n", bytes.len()));
    }
    Ok(out)
}

fn run_fhp(
    ev: &mut Evolver<u8>,
    variant: FhpVariant,
    seed: u64,
    periodic: bool,
    rows: usize,
    cols: usize,
    steps: u64,
) {
    let rule = if periodic {
        FhpRule::new(variant, seed).with_wrap(rows, cols)
    } else {
        FhpRule::new(variant, seed)
    };
    ev.run(&rule, steps);
}

fn run_engine(
    arch: &str,
    width: usize,
    depth: usize,
    slice_width: usize,
    rows: usize,
    cols: usize,
    seed: u64,
) -> Result<String, CliError> {
    let shape = Shape::grid2(rows, cols).map_err(|e| CliError(e.to_string()))?;
    let grid = init::random_fhp(shape, FhpVariant::I, 0.3, seed, false)
        .map_err(|e| CliError(e.to_string()))?;
    let rule = FhpRule::new(FhpVariant::I, seed);
    let report = match arch {
        "serial" => Pipeline::serial(depth).run(&rule, &grid, 0),
        "wsa" => Pipeline::wide(width, depth).run(&rule, &grid, 0),
        "spa" => SpaEngine::new(slice_width, depth).run(&rule, &grid, 0),
        "wsae" => WsaePipeline::new(depth).run(&rule, &grid, 0),
        other => return Err(CliError(format!("unknown architecture `{other}`"))),
    }
    .map_err(|e| CliError(e.to_string()))?;
    let clock = Technology::paper_1987().clock();
    Ok(format!(
        "{arch} on {rows}x{cols} FHP-I, depth {depth}\n\
         ticks:            {}\n\
         updates/tick:     {:.2}\n\
         updates/s @10MHz: {:.2e}\n\
         memory bits/tick: {:.1}\n\
         SR cells/stage:   {}\n\
         utilization:      {:.3}\n",
        report.ticks,
        report.updates_per_tick(),
        report.updates_per_second(clock).get(),
        report.memory_bits_per_tick(),
        report.sr_cells_per_stage,
        report.utilization(),
    ))
}

fn run_image(chain: &str, rows: usize, cols: usize, seed: u64) -> Result<String, CliError> {
    use crate::image::morphology::{close, open, StructuringElement};
    use crate::image::{BoxBlur, Median3, Sobel, Threshold};
    use lattice_core::{evolve, Grid};
    let shape = Shape::grid2(rows, cols).map_err(|e| CliError(e.to_string()))?;
    // Synthetic scene: two bright blobs on a dark field plus noise.
    let mut img: Grid<u8> = Grid::from_fn(shape, |c| {
        let (r, k) = (c.row() as i32, c.col() as i32);
        let blob = |cr: i32, cc: i32, rad: i32| (r - cr).pow(2) + (k - cc).pow(2) <= rad * rad;
        let base: u8 = if blob(rows as i32 / 2, cols as i32 / 3, rows as i32 / 4)
            || blob(rows as i32 / 3, 2 * cols as i32 / 3, rows as i32 / 5)
        {
            200
        } else {
            30
        };
        let h = crate::gas::prng::site_hash((r * cols as i32 + k) as u64, 0, seed);
        if h.is_multiple_of(19) {
            255 - base
        } else {
            base
        }
    });
    let mut log = String::new();
    let se = StructuringElement::cross();
    for (t, stage) in chain.split(',').map(str::trim).enumerate() {
        img = match stage {
            "median" => evolve(&img, &Median3, Boundary::null(), t as u64, 1),
            "blur" => evolve(&img, &BoxBlur, Boundary::null(), t as u64, 1),
            "threshold" => evolve(&img, &Threshold(110), Boundary::null(), t as u64, 1),
            "sobel" => evolve(&img, &Sobel, Boundary::null(), t as u64, 1),
            "erode" | "dilate" | "open" | "close" => {
                // Binary morphology on the thresholded image.
                let bin = Grid::from_fn(shape, |c| img.get(c) >= 110);
                let out = match stage {
                    "erode" => {
                        evolve(&bin, &crate::image::Erode(se), Boundary::Fixed(true), t as u64, 1)
                    }
                    "dilate" => {
                        evolve(&bin, &crate::image::Dilate(se), Boundary::Fixed(false), t as u64, 1)
                    }
                    "open" => open(&bin, se),
                    _ => close(&bin, se),
                };
                Grid::from_fn(shape, |c| if out.get(c) { 255u8 } else { 0 })
            }
            other => return Err(CliError(format!("unknown image stage `{other}`"))),
        };
        log.push_str(&format!("applied {stage}\n"));
    }
    // ASCII render in 4 levels.
    for r in 0..rows {
        log.push_str("  ");
        for c in 0..cols {
            let p = img.get(crate::core::Coord::c2(r, c));
            log.push(match p {
                0..=63 => '.',
                64..=127 => ':',
                128..=191 => 'o',
                _ => '#',
            });
        }
        log.push('\n');
    }
    Ok(log)
}

fn run_design(l: u32, rate: f64, budget: u32) -> String {
    let tech = Technology::paper_1987();
    let wsa = Wsa::new(tech);
    let spa = Spa::new(tech);
    let wsae = Wsae::new(tech);
    let corner = wsa.corner();
    let chip = spa.corner();
    let need_upt = rate / tech.clock_hz;
    let mut out = format!("design space for L = {l}, target {rate:.2e} updates/s:\n");
    if l <= corner.l {
        out.push_str(&format!(
            "  WSA:   P = {}, {} chips, {} bits/tick\n",
            corner.p,
            ((need_upt / corner.p as f64).ceil() as u64).min(l as u64),
            corner.bandwidth
        ));
    } else {
        out.push_str(&format!("  WSA:   infeasible (L > {})\n", corner.l));
    }
    out.push_str(&format!(
        "  WSA-E: {} stages at {:.2} chip-areas each, 16 bits/tick\n",
        need_upt.ceil() as u64,
        wsae.design(l).stage_area
    ));
    let slices = spa.slices(l, chip.w);
    out.push_str(&format!(
        "  SPA:   W = {}, {} slices, {} bits/tick, chips of {}x{} PEs\n",
        chip.w,
        slices,
        spa.bandwidth(l, chip.w),
        chip.p_w,
        chip.p_k
    ));
    match crate::vlsi::compare::preferred_regime(
        tech,
        l,
        lattice_core::units::BitsPerTick::new(f64::from(budget)),
        need_upt,
        1024,
    ) {
        Some(r) => out.push_str(&format!("  recommended under {budget} bits/tick: {r:?}\n")),
        None => out.push_str(
            "  no architecture fits the budget — the paper's point: \
                              bandwidth, not processing, is the wall\n",
        ),
    }
    out
}

#[allow(clippy::too_many_arguments)]
fn run_fault_sim(
    rows: usize,
    cols: usize,
    width: usize,
    depth: usize,
    steps: u64,
    seed: u64,
    rate: f64,
    retries: u32,
    ckpt_every: u64,
    stuck_chip: Option<usize>,
) -> Result<String, CliError> {
    use crate::gas::audit::{AuditMode, ConservationAudit};
    use crate::sim::{
        Component, Fault, FaultKind, FaultPlan, HostLink, HostSystem, RecoveryConfig,
    };
    use lattice_core::{evolve, Grid};

    if depth == 0 || width == 0 {
        return Err(CliError("fault-sim: --width and --depth must be ≥ 1".into()));
    }
    if !(0.0..=1.0).contains(&rate) {
        return Err(CliError("fault-sim: --rate must be in [0, 1]".into()));
    }
    if ckpt_every == 0 {
        return Err(CliError("fault-sim: --ckpt-every must be ≥ 1".into()));
    }
    let margin = steps as usize;
    if rows <= 2 * margin || cols <= 2 * margin {
        return Err(CliError(format!(
            "fault-sim: the lattice must exceed 2x --steps per side \
             ({rows}x{cols} vs {steps} steps) so the gas cannot reach the \
             edge and conservation stays exact"
        )));
    }
    if let Some(chip) = stuck_chip {
        if chip >= depth {
            return Err(CliError(format!(
                "fault-sim: --stuck-chip {chip} out of range (depth {depth})"
            )));
        }
    }
    let shape = Shape::grid2(rows, cols).map_err(|e| CliError(e.to_string()))?;
    // Confine the gas to the center: with `steps` generations and
    // `steps` empty sites of margin, nothing reaches the edge, so the
    // Exact audit holds under the engines' null boundary and every
    // recovered run must match the reference evolution bit-for-bit.
    let full = init::random_hpp(shape, 0.3, seed).map_err(|e| CliError(e.to_string()))?;
    let grid = Grid::from_fn(shape, |c| {
        let inside = c.row() >= margin
            && c.row() < rows - margin
            && c.col() >= margin
            && c.col() < cols - margin;
        if inside {
            full.get(c)
        } else {
            0
        }
    });
    let rule = HppRule::new();
    let reference = evolve(&grid, &rule, Boundary::null(), 0, steps);
    let audit = ConservationAudit::new(Model::Hpp, AuditMode::Exact);
    let sys = HostSystem {
        engine: Pipeline::wide(width, depth),
        link: HostLink::new(1e9),
        clock_hz: 10e6,
    };
    let cfg = RecoveryConfig {
        max_retries: retries,
        checkpoint_every: ckpt_every,
        ..RecoveryConfig::default()
    };
    let victim = depth / 2;
    let sites = (rows * cols) as u64;

    let mut out = format!(
        "fault-sim: hpp on {rows}x{cols}, {steps} generations, width {width}, depth {depth}\n\
         transient bit-flips in chip {victim}'s shift register; audit = exact conservation;\n\
         checkpoint every {ckpt_every} pass(es), {retries} retries{}\n\n",
        match stuck_chip {
            Some(c) => format!("; stuck-at link bit on chip {c}"),
            None => String::new(),
        }
    );
    let table = SweepTable::new(&[
        ("rate", 9, Align::Left),
        ("injected", 8, Align::Right),
        ("detected", 8, Align::Right),
        ("rollbacks", 9, Align::Right),
        ("bypassed", 8, Align::Right),
        ("passes", 6, Align::Right),
        ("upd/fault", 9, Align::Right),
        ("result", 0, Align::Left),
    ]);
    out.push_str(&table.header());
    let mut unrecovered = 0u32;
    for mult in [0.0, 0.1, 1.0, 10.0] {
        let r = (rate * mult).min(1.0);
        let mut plan = FaultPlan::new(seed);
        if r > 0.0 {
            plan.push(Fault {
                component: Component::SrCell,
                chip: Some(victim),
                cell: None,
                kind: FaultKind::Transient { bit: 1, rate: r },
            });
        }
        if let Some(chip) = stuck_chip {
            plan.push(Fault {
                component: Component::Link,
                chip: Some(chip),
                cell: None,
                kind: FaultKind::StuckAt { bit: 0, value: true },
            });
        }
        let ft = sys
            .run_with_recovery(&rule, &grid, 0, steps, Some(&plan), &cfg, |b, a| audit.check(b, a));
        match ft {
            Ok(ft) => {
                let injected = ft.faults.total();
                let upd_per_fault = if injected == 0 {
                    "-".to_string()
                } else {
                    format!("{:.1e}", (steps * sites) as f64 / injected as f64)
                };
                let result = if ft.run.grid == reference {
                    "bit-exact"
                } else {
                    unrecovered += 1;
                    "WRONG"
                };
                out.push_str(&table.row(&[
                    format!("{r:.1e}"),
                    injected.to_string(),
                    ft.recovery.detected.to_string(),
                    ft.recovery.rollbacks.to_string(),
                    ft.recovery.bypassed_chips.to_string(),
                    ft.run.passes.to_string(),
                    upd_per_fault,
                    result.to_string(),
                ]));
            }
            Err(e) => {
                unrecovered += 1;
                out.push_str(&table.row(&[format!("{r:.1e}"), format!("gave up: {e}")]));
            }
        }
    }
    out.push_str(
        "\nupd/fault = mean committed site-updates between injected upsets (MTBF in\n\
         update units); `bit-exact` rows recovered to the fault-free reference lattice.\n",
    );
    if unrecovered > 0 {
        return Err(CliError(format!(
            "{out}\nfault-sim: {unrecovered} sweep cell(s) ended unrecovered"
        )));
    }
    Ok(out)
}

#[allow(clippy::too_many_arguments)]
fn run_farm_fault_sim(
    rows: usize,
    cols: usize,
    width: usize,
    depth: usize,
    steps: u64,
    seed: u64,
    rate: f64,
    retries: u32,
    ckpt_every: u64,
    farm_shards: &str,
    farm_grid: Option<(usize, usize)>,
    stuck_board: Option<usize>,
    overlap: bool,
) -> Result<String, CliError> {
    use crate::farm::{FarmDegradeConfig, FarmRecoveryConfig, LatticeFarm, ShardEngine};
    use crate::gas::audit::{AuditMode, ConservationAudit};
    use crate::sim::{Component, Fault, FaultKind, FaultPlan};
    use lattice_core::{evolve, Grid};

    if depth == 0 || width == 0 {
        return Err(CliError("fault-sim: --width and --depth must be ≥ 1".into()));
    }
    if !(0.0..=1.0).contains(&rate) {
        return Err(CliError("fault-sim: --rate must be in [0, 1]".into()));
    }
    if ckpt_every == 0 {
        return Err(CliError("fault-sim: --ckpt-every must be ≥ 1".into()));
    }
    // Each sweep layout is (shard count, optional R×C board grid);
    // `--farm-grid` replaces the columnar shard list with one grid leg
    // whose upsets hit both link tiers.
    let layouts: Vec<(usize, Option<(usize, usize)>)> = match farm_grid {
        Some((gr, gc)) => {
            if gr > rows || gc > cols {
                return Err(CliError(format!(
                    "fault-sim: --farm-grid {gr}x{gc} does not fit a {rows}x{cols} lattice"
                )));
            }
            vec![(gr * gc, Some((gr, gc)))]
        }
        None => farm_shards
            .split(',')
            .map(|s| {
                s.trim()
                    .parse::<usize>()
                    .ok()
                    .filter(|&n| n >= 1)
                    .map(|n| (n, None))
                    .ok_or_else(|| CliError(format!("fault-sim: bad --farm-shards entry `{s}`")))
            })
            .collect::<Result<_, _>>()?,
    };
    if layouts.is_empty() || layouts.iter().any(|&(s, g)| g.is_none() && s > cols) {
        return Err(CliError("fault-sim: --farm-shards must be 1..=cols".into()));
    }
    if let Some(b) = stuck_board {
        if let Some(&(smin, _)) = layouts.iter().min_by_key(|&&(s, _)| s) {
            if b >= smin {
                return Err(CliError(format!(
                    "fault-sim: --stuck-board {b} out of range for {smin} shard(s)"
                )));
            }
        }
    }
    let margin = steps as usize;
    if rows <= 2 * margin || cols <= 2 * margin {
        return Err(CliError(format!(
            "fault-sim: the lattice must exceed 2x --steps per side \
             ({rows}x{cols} vs {steps} steps) so the gas cannot reach the \
             edge and conservation stays exact"
        )));
    }
    let shape = Shape::grid2(rows, cols).map_err(|e| CliError(e.to_string()))?;
    // Same confinement trick as the chip-level sweep: the gas never
    // reaches the edge, so exact conservation holds and every recovered
    // run must equal the reference bit-for-bit.
    let full = init::random_hpp(shape, 0.3, seed).map_err(|e| CliError(e.to_string()))?;
    let grid = Grid::from_fn(shape, |c| {
        let inside = c.row() >= margin
            && c.row() < rows - margin
            && c.col() >= margin
            && c.col() < cols - margin;
        if inside {
            full.get(c)
        } else {
            0
        }
    });
    let rule = HppRule::new();
    let reference = evolve(&grid, &rule, Boundary::null(), 0, steps);
    let audit = ConservationAudit::new(Model::Hpp, AuditMode::Exact);
    let sites = (rows * cols) as u64;

    let mut out = format!(
        "fault-sim --farm: hpp on {rows}x{cols}, {steps} generations, \
         WSA boards width {width}, depth {depth}{}\n\
         transient bit-flips on every board's halo link; audit = exact conservation;\n\
         checkpoint every {ckpt_every} pass(es), {retries} global retries, \
         ladder = ARQ -> local -> global -> degrade{}\n\n",
        if overlap { ", overlapped exchange" } else { "" },
        match stuck_board {
            Some(b) => format!("; stuck-at halo-link bit on board {b}"),
            None => String::new(),
        }
    );
    let table = SweepTable::new(&[
        ("shards", 6, Align::Left),
        ("rate", 9, Align::Left),
        ("injected", 8, Align::Right),
        ("detected", 8, Align::Right),
        ("retrans", 7, Align::Right),
        ("local", 5, Align::Right),
        ("global", 6, Align::Right),
        ("degraded", 8, Align::Right),
        ("passes", 6, Align::Right),
        ("upd/fault", 9, Align::Right),
        ("result", 0, Align::Left),
    ]);
    out.push_str(&table.header());
    let mut unrecovered = 0u32;
    for &(s, g) in &layouts {
        let mut farm = LatticeFarm::new(s, ShardEngine::Wsa { width }, depth).with_overlap(overlap);
        if let Some((gr, gc)) = g {
            farm = farm.with_grid(gr, gc);
        }
        let label = match g {
            Some((gr, gc)) => format!("{gr}x{gc}"),
            None => s.to_string(),
        };
        // WSA boards: chip stride = depth at every reachable shard
        // count, so board b's intra halo link is chip s·depth + b and
        // (grid layouts) its inter-rack link is chip s·depth + s + b.
        let link_chip_base = s * depth;
        // Degraded re-partitioning is columnar, so multi-row grids run
        // without a degrade budget (the ladder tops out at global
        // rollback there).
        let can_degrade = s > 1 && g.is_none_or(|(gr, _)| gr == 1);
        let cfg = FarmRecoveryConfig {
            max_retries: retries,
            checkpoint_every: ckpt_every,
            degrade: if can_degrade {
                Some(FarmDegradeConfig { max_retired: s - 1 })
            } else {
                None
            },
            ..FarmRecoveryConfig::default()
        };
        for mult in [0.0, 0.1, 1.0, 10.0] {
            let r = (rate * mult).min(1.0);
            let mut plan = FaultPlan::new(seed);
            if r > 0.0 {
                for b in 0..s {
                    plan.push(Fault {
                        component: Component::Link,
                        chip: Some(link_chip_base + b),
                        cell: None,
                        kind: FaultKind::Transient { bit: 1, rate: r },
                    });
                    if g.is_some_and(|(gr, _)| gr > 1) {
                        plan.push(Fault {
                            component: Component::Link,
                            chip: Some(link_chip_base + s + b),
                            cell: None,
                            kind: FaultKind::Transient { bit: 1, rate: r },
                        });
                    }
                }
            }
            if let Some(b) = stuck_board {
                plan.push(Fault {
                    component: Component::Link,
                    chip: Some(link_chip_base + b),
                    cell: None,
                    kind: FaultKind::StuckAt { bit: 0, value: true },
                });
            }
            let ft = farm.run_with_recovery(&rule, &grid, 0, steps, Some(&plan), &cfg, |b, a| {
                audit.check(b, a)
            });
            match ft {
                Ok(ft) => {
                    let injected = ft.report.machine.faults.total();
                    let upd_per_fault = if injected == 0 {
                        "-".to_string()
                    } else {
                        format!("{:.1e}", (steps * sites) as f64 / injected as f64)
                    };
                    let result = if ft.report.grid() == &reference {
                        "bit-exact"
                    } else {
                        unrecovered += 1;
                        "WRONG"
                    };
                    out.push_str(&table.row(&[
                        label.clone(),
                        format!("{r:.1e}"),
                        injected.to_string(),
                        ft.recovery.detected.to_string(),
                        ft.recovery.retransmits.to_string(),
                        ft.recovery.local_rollbacks.to_string(),
                        ft.recovery.rollbacks.to_string(),
                        ft.recovery.boards_retired.to_string(),
                        ft.report.passes.to_string(),
                        upd_per_fault,
                        result.to_string(),
                    ]));
                }
                Err(e) => {
                    unrecovered += 1;
                    out.push_str(&table.row(&[
                        label.clone(),
                        format!("{r:.1e}"),
                        format!("gave up: {e}"),
                    ]));
                }
            }
        }
    }
    out.push_str(
        "\nupd/fault = mean committed site-updates between injected upsets (MTBF in\n\
         update units). Each detection is answered one ladder level up: retrans\n\
         (link ARQ), local (one board replays), global (all boards rewind),\n\
         degraded (board retired, lattice re-partitioned onto survivors).\n",
    );
    if unrecovered > 0 {
        return Err(CliError(format!(
            "{out}\nfault-sim: {unrecovered} sweep cell(s) ended unrecovered"
        )));
    }
    Ok(out)
}

/// Arguments for `lattice farm`, bundled to keep the call site readable.
struct FarmArgs {
    shards: usize,
    engine: String,
    width: usize,
    slice_width: usize,
    depth: usize,
    rows: usize,
    cols: usize,
    steps: u64,
    seed: u64,
    model: String,
    periodic: bool,
    link_bits: Option<f64>,
    grid: Option<(usize, usize)>,
    tier_bits: Option<f64>,
    overlap: bool,
    verify: bool,
    checkpoint_dir: Option<String>,
    ckpt_every: u64,
    resume: bool,
}

fn run_farm(a: FarmArgs) -> Result<String, CliError> {
    use crate::farm::{BoardLink, FarmRecoveryConfig, FarmReport, LatticeFarm, ShardEngine};
    use crate::vlsi::FarmModel;
    use lattice_core::{evolve, Grid, Rule};

    let FarmArgs {
        shards,
        engine,
        width,
        slice_width,
        depth,
        rows,
        cols,
        steps,
        seed,
        model,
        periodic,
        link_bits,
        grid,
        tier_bits,
        overlap,
        verify,
        checkpoint_dir,
        ckpt_every,
        resume,
    } = a;
    let (engine, model) = (engine.as_str(), model.as_str());
    let shape = Shape::grid2(rows, cols).map_err(|e| CliError(e.to_string()))?;
    let eng = match engine {
        "wsa" => ShardEngine::Wsa { width },
        "spa" => ShardEngine::Spa { slice_width },
        other => return Err(CliError(format!("unknown farm engine `{other}` (wsa, spa)"))),
    };
    let mut farm =
        LatticeFarm::new(shards, eng, depth).with_periodic(periodic).with_overlap(overlap);
    if let Some((gr, gc)) = grid {
        if gr > rows || gc > cols {
            return Err(CliError(format!(
                "farm: --grid {gr}x{gc} does not fit a {rows}x{cols} lattice"
            )));
        }
        farm = farm.with_grid(gr, gc);
    }
    if let Some(bits) = link_bits {
        if bits.is_nan() || bits <= 0.0 {
            return Err(CliError("farm: --link-bits must be positive".into()));
        }
        farm = farm.with_link(BoardLink::new(bits));
    }
    if let Some(bits) = tier_bits {
        if grid.is_none() {
            return Err(CliError(
                "farm: --tier-bits needs --grid — the inter-rack tier is idle on \
                 columnar layouts"
                    .into(),
            ));
        }
        if bits.is_nan() || bits <= 0.0 {
            return Err(CliError("farm: --tier-bits must be positive".into()));
        }
        farm = farm.with_tier_link(BoardLink::new(bits));
    }
    if resume && checkpoint_dir.is_none() {
        return Err(CliError("farm: --resume needs --checkpoint-dir".into()));
    }
    if ckpt_every == 0 {
        return Err(CliError("farm: --ckpt-every must be ≥ 1".into()));
    }

    fn drive<R: Rule<S = u8>>(
        farm: &LatticeFarm,
        rule: &R,
        grid: &Grid<u8>,
        steps: u64,
        periodic: bool,
        verify: bool,
    ) -> Result<(FarmReport<u8>, Option<bool>), CliError> {
        let report = farm.run(rule, grid, 0, steps).map_err(|e| CliError(e.to_string()))?;
        let exact = verify.then(|| {
            let boundary = if periodic { Boundary::Periodic } else { Boundary::null() };
            report.grid() == &evolve(grid, rule, boundary, 0, steps)
        });
        Ok((report, exact))
    }

    /// The durable path: run through the farm recovery ladder with
    /// persistence level 0, optionally resuming from the newest good
    /// generation in `dir`. `--verify` always compares against an
    /// uninterrupted reference from generation 0, so a kill-and-resume
    /// sequence is checked end to end.
    #[allow(clippy::too_many_arguments)]
    fn drive_durable<R: Rule<S = u8>>(
        farm: &LatticeFarm,
        rule: &R,
        g0: &Grid<u8>,
        steps: u64,
        periodic: bool,
        verify: bool,
        dir: &str,
        ckpt_every: u64,
        resume: bool,
    ) -> Result<(FarmReport<u8>, Option<bool>, String), CliError> {
        use crate::core::checkpoint::store::{reassemble, CheckpointStore, DiskBackend};
        let lat = |e: crate::core::LatticeError| CliError(e.to_string());
        let mut store = CheckpointStore::open(DiskBackend::open(dir).map_err(lat)?).map_err(lat)?;
        let (start, t0, fell_back) = if resume {
            let loaded = store
                .load_latest()
                .map_err(lat)?
                .ok_or_else(|| CliError(format!("farm: --resume found no snapshot in {dir}")))?;
            let (g, t) = reassemble::<u8>(&loaded.snapshot).map_err(lat)?;
            if g.shape() != g0.shape() {
                return Err(CliError(format!(
                    "farm: snapshot is {:?} but the command says {:?} — pass the \
                     original --rows/--cols",
                    g.shape().dims(),
                    g0.shape().dims()
                )));
            }
            if t.get() > steps {
                return Err(CliError(format!(
                    "farm: snapshot is already at generation {} > --steps {steps}",
                    t.get()
                )));
            }
            (g, t.get(), loaded.fell_back)
        } else {
            (g0.clone(), 0u64, false)
        };
        let cfg =
            FarmRecoveryConfig { checkpoint_every: ckpt_every, ..FarmRecoveryConfig::default() };
        let ft = farm
            .run_with_recovery_persistent(
                rule,
                &start,
                t0,
                steps - t0,
                None,
                &cfg,
                |_, _| Ok(()),
                |_, _, _| Ok(()),
                &mut store,
            )
            .map_err(lat)?;
        let exact = verify.then(|| {
            let boundary = if periodic { Boundary::Periodic } else { Boundary::null() };
            ft.report.grid() == &evolve(g0, rule, boundary, 0, steps)
        });
        let mut extra = format!(
            "checkpoint store:  {dir} ({} commit(s), {} bytes)\n",
            store.commits(),
            store.bytes_written()
        );
        if resume {
            extra.push_str(&format!(
                "resumed:           generation {t0} of {steps}{}\n",
                if fell_back { " (newest generation was corrupt; used last good)" } else { "" }
            ));
        }
        Ok((ft.report, exact, extra))
    }

    #[allow(clippy::too_many_arguments)]
    fn drive_any<R: Rule<S = u8>>(
        farm: &LatticeFarm,
        rule: &R,
        grid: &Grid<u8>,
        steps: u64,
        periodic: bool,
        verify: bool,
        durable: Option<(&str, u64, bool)>,
    ) -> Result<(FarmReport<u8>, Option<bool>, String), CliError> {
        match durable {
            None => {
                drive(farm, rule, grid, steps, periodic, verify).map(|(r, e)| (r, e, String::new()))
            }
            Some((dir, every, resume)) => {
                drive_durable(farm, rule, grid, steps, periodic, verify, dir, every, resume)
            }
        }
    }

    let durable = checkpoint_dir.as_deref().map(|d| (d, ckpt_every, resume));
    let (report, exact, extra) = match model {
        "hpp" => {
            let grid = init::random_hpp(shape, 0.3, seed).map_err(|e| CliError(e.to_string()))?;
            drive_any(&farm, &HppRule::new(), &grid, steps, periodic, verify, durable)?
        }
        "fhp1" | "fhp2" | "fhp3" => {
            let variant = match model {
                "fhp1" => FhpVariant::I,
                "fhp2" => FhpVariant::II,
                _ => FhpVariant::III,
            };
            let grid = init::random_fhp(shape, variant, 0.3, seed, periodic)
                .map_err(|e| CliError(e.to_string()))?;
            let rule = if periodic {
                FhpRule::new(variant, seed).with_wrap(rows, cols)
            } else {
                FhpRule::new(variant, seed)
            };
            drive_any(&farm, &rule, &grid, steps, periodic, verify, durable)?
        }
        other => return Err(CliError(format!("unknown gas model `{other}`"))),
    };

    let clock = Technology::paper_1987().clock();
    let layout = match grid {
        Some((gr, gc)) => format!("{gr}x{gc} board grid"),
        None => format!("{shards} board(s)"),
    };
    let mut out = format!(
        "farm: {model} on {rows}x{cols} ({}), {steps} generations, \
         {layout} x {engine}, k = {depth}{}\n\
         passes:            {}\n\
         machine ticks:     {} ({} compute + {} halo - {} overlapped)\n\
         useful upd/tick:   {:.2}\n\
         updates/s @10MHz:  {:.2e}\n\
         halo bits/tick:    {:.2}\n\
         redundancy:        {:.3}\n\
         compute fraction:  {:.3}\n\
         PE utilization:    {:.3}\n",
        if periodic { "torus" } else { "null boundary" },
        if overlap { ", overlapped exchange" } else { "" },
        report.passes,
        report.machine_ticks(),
        report.machine.ticks,
        report.halo_ticks,
        report.overlapped_ticks,
        report.updates_per_tick(),
        report.updates_per_second(clock).get(),
        report.halo_bits_per_tick(),
        report.redundancy(),
        report.compute_fraction(),
        report.utilization(),
    );
    out.push_str("shard  row0  rows  col0  cols  updates  ticks  halo-in bits\n");
    for s in &report.per_shard {
        out.push_str(&format!(
            "{:>5}  {:>4}  {:>4}  {:>4}  {:>4}  {:>7}  {:>5}  {:>12}\n",
            s.shard, s.row0, s.rows, s.col0, s.cols, s.updates, s.ticks, s.halo_in_bits
        ));
    }
    if engine == "wsa" {
        // The analytical board model mirrors the WSA pipeline.
        let mut m = FarmModel::new(Technology::paper_1987(), rows, cols, width as u32, depth)
            .with_periodic(periodic)
            .with_overlap(overlap)
            .with_link(link_bits.map_or(lattice_core::units::BitsPerTick::UNTHROTTLED, |b| {
                lattice_core::units::BitsPerTick::new(b)
            }));
        if let Some(bits) = tier_bits {
            m = m.with_tier_link(lattice_core::units::BitsPerTick::new(bits));
        }
        let meas_pass = report.machine_ticks().to_f64() / report.passes.max(1) as f64;
        match grid {
            Some(g) => out.push_str(&format!(
                "model: pass ticks {:.0} (measured {:.0}), binding tier \
                 {}, link demand {:.1} bits/tick on it\n",
                m.pass_ticks2(g),
                meas_pass,
                match m.binding_tier(g) {
                    crate::vlsi::LinkTier::Intra => "intra-rack",
                    crate::vlsi::LinkTier::Inter => "inter-rack",
                },
                m.binding_link_demand(g),
            )),
            None => out.push_str(&format!(
                "model: pass ticks {:.0} (measured {:.0}), strong-scaling \
                 efficiency {:.3}, link demand {:.1} bits/tick\n",
                m.pass_ticks(shards),
                meas_pass,
                m.strong_efficiency(shards),
                m.link_demand(shards),
            )),
        }
    }
    out.push_str(&extra);
    match exact {
        Some(true) => out.push_str("verify: bit-exact vs reference\n"),
        Some(false) => {
            return Err(CliError(
                "verify: farmed result diverged from the reference — this is a bug".into(),
            ))
        }
        None => {}
    }
    Ok(out)
}

/// `lattice chaos`: a deterministic soak of randomized storms, each
/// mixing fault classes from every layer the stack models — SR/PE/link
/// bit flips, worker panics and hangs, stuck boards retired by degraded
/// re-partitioning, and injected I/O faults under the durable
/// checkpoint store. After every storm the harness checks exact
/// conservation (bit-exact final lattice vs an uninterrupted
/// reference), the ladder-accounting invariant, and that whatever the
/// store still serves reassembles to a bit-exact committed generation
/// or fails as a structured error. Storm `i` derives everything from
/// `seed + i`, so any failure is reproduced by a single
/// `chaos --storms 1 --seed <seed+i>` line.
/// SplitMix64 — the same idiom the fault layers use, so a storm's
/// whole configuration is a pure function of its seed.
fn mix(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

fn run_chaos(
    storms: u64,
    rows: usize,
    cols: usize,
    steps: u64,
    seed: u64,
    rate: f64,
    io_rate: f64,
) -> Result<String, CliError> {
    use crate::core::checkpoint::store::{
        reassemble, CheckpointStore, FaultyBackend, IoFaultRates, MemBackend, ShardBlob,
        SnapshotSink,
    };
    use crate::core::LatticeError;
    use crate::farm::{
        FarmDegradeConfig, FarmRecoveryConfig, LatticeFarm, ShardEngine, WorkerFault,
        WorkerFaultSpec,
    };
    use crate::gas::audit::{AuditMode, ConservationAudit};
    use crate::sim::{Component, Fault, FaultKind, FaultPlan};
    use lattice_core::units::{u64_from_usize, usize_from_u64};
    use lattice_core::{evolve, Grid};
    use std::time::Duration;

    if storms == 0 || steps == 0 {
        return Err(CliError("chaos: --storms and --steps must be ≥ 1".into()));
    }
    if !(0.0..=1.0).contains(&rate) || !(0.0..=1.0).contains(&io_rate) {
        return Err(CliError("chaos: --rate and --io-rate must be in [0, 1]".into()));
    }
    let margin = steps as usize;
    if rows <= 2 * margin || cols <= 2 * margin {
        return Err(CliError(format!(
            "chaos: the lattice must exceed 2x --steps per side ({rows}x{cols} vs \
             {steps} steps) so the gas cannot reach the edge and conservation \
             stays exact"
        )));
    }

    /// Persistence under weather must not abort the run: commit errors
    /// are counted and swallowed — the generation protocol guarantees
    /// the previous good snapshot survives a failed commit.
    struct BestEffort<'a> {
        store: &'a mut CheckpointStore<FaultyBackend<MemBackend>>,
        refused: u64,
    }
    impl SnapshotSink for BestEffort<'_> {
        fn persist(&mut self, time: Ticks, shards: &[ShardBlob]) -> Result<(), LatticeError> {
            if self.store.commit(time, shards).is_err() {
                self.refused += 1;
            }
            Ok(())
        }
    }

    let audit = ConservationAudit::new(Model::Hpp, AuditMode::Exact);
    let rule = HppRule::new();
    let shape = Shape::grid2(rows, cols).map_err(|e| CliError(e.to_string()))?;

    let mut out = format!(
        "chaos: {storms} storm(s), hpp on {rows}x{cols}, {steps} generations each, \
         base seed {seed}\n\
         weather: SR/PE/link transients @ {rate:.1e}, worker die/hang, stuck \
         boards, I/O faults @ {io_rate:.1e} on every store op\n\
         invariants: exact conservation vs reference, ladder accounting, durable \
         snapshots reassemble bit-exact\n\n"
    );
    let table = SweepTable::new(&[
        ("storm", 5, Align::Right),
        ("seed", 20, Align::Left),
        ("cfg", 14, Align::Left),
        ("det", 3, Align::Right),
        ("rt", 2, Align::Right),
        ("loc", 3, Align::Right),
        ("glob", 4, Align::Right),
        ("ret", 3, Align::Right),
        ("io t/r/s/c", 10, Align::Right),
        ("ckpt ok/ref", 11, Align::Left),
        ("snapshot", 10, Align::Left),
        ("result", 0, Align::Left),
    ]);
    out.push_str(&table.header());
    let mut failed: Vec<u64> = Vec::new();
    for storm in 0..storms {
        let sseed = seed.wrapping_add(storm);
        let d = |salt: u64| mix(sseed ^ mix(salt));
        let shards = 2 + usize_from_u64(d(1) % 3);
        let depth = 1 + usize_from_u64(d(2) % 2);
        let overlap = d(3) % 2 == 0;
        let stuck = d(4) % 4 == 0;
        let passes = steps.div_ceil(u64_from_usize(depth));
        // Worker misbehavior: none / die / hang, on a derived board and
        // pass; a hang storm arms the watchdog so the stall is declared
        // dead instead of waited out.
        let worker = match d(5) % 3 {
            1 => Some((WorkerFault::Die, None)),
            2 => Some((WorkerFault::Hang { millis: 150 }, Some(Duration::from_millis(40)))),
            _ => None,
        };

        let full = init::random_hpp(shape, 0.3, sseed).map_err(|e| CliError(e.to_string()))?;
        let g0 = Grid::from_fn(shape, |c| {
            let inside = c.row() >= margin
                && c.row() < rows - margin
                && c.col() >= margin
                && c.col() < cols - margin;
            if inside {
                full.get(c)
            } else {
                0
            }
        });
        let reference = evolve(&g0, &rule, Boundary::null(), 0, steps);

        // The fault weather: transients on every board's halo link, one
        // SR cell and one PE latch going flaky inside derived boards
        // (silent to parity — only the conservation audit sees them, so
        // they exercise the rollback levels), plus an optional stuck
        // link that must climb the whole ladder into retirement.
        let link_chip_base = shards * depth;
        let mut plan = FaultPlan::new(sseed);
        if rate > 0.0 {
            for b in 0..shards {
                plan.push(Fault {
                    component: Component::Link,
                    chip: Some(link_chip_base + b),
                    cell: None,
                    kind: FaultKind::Transient { bit: 1, rate },
                });
            }
            // SR/PE flips pass through every site of their chip each
            // generation (not just halo frames), so they run an order
            // of magnitude cooler to keep rollback pressure bounded.
            plan.push(Fault {
                component: Component::SrCell,
                chip: Some(usize_from_u64(d(6) % u64_from_usize(shards * depth))),
                cell: None,
                kind: FaultKind::Transient { bit: (d(7) % 4) as u32, rate: rate / 8.0 },
            });
            plan.push(Fault {
                component: Component::PeOutput,
                chip: Some(usize_from_u64(d(8) % u64_from_usize(shards * depth))),
                cell: None,
                kind: FaultKind::Transient { bit: (d(9) % 4) as u32, rate: rate / 8.0 },
            });
        }
        if stuck {
            plan.push(Fault {
                component: Component::Link,
                chip: Some(link_chip_base + usize_from_u64(d(10) % u64_from_usize(shards))),
                cell: None,
                kind: FaultKind::StuckAt { bit: 0, value: true },
            });
        }

        let mut farm =
            LatticeFarm::new(shards, ShardEngine::Wsa { width: 1 }, depth).with_overlap(overlap);
        if let Some((fault, _)) = worker {
            farm = farm.with_worker_fault(WorkerFaultSpec {
                board: usize_from_u64(d(11) % u64_from_usize(shards)),
                pass: d(12) % passes,
                attempt: 0,
                fault,
            });
        }
        let cfg = FarmRecoveryConfig {
            max_retries: 20,
            checkpoint_every: 1,
            degrade: Some(FarmDegradeConfig { max_retired: shards - 1 }),
            watchdog: worker.and_then(|(_, w)| w),
            ..FarmRecoveryConfig::default()
        };

        let rates = IoFaultRates {
            torn_write: io_rate,
            bit_rot: io_rate,
            short_read: io_rate,
            crash_before_rename: io_rate,
        };
        let mut store =
            match CheckpointStore::open(FaultyBackend::new(MemBackend::new(), sseed, rates)) {
                Ok(s) => s,
                Err(e) => return Err(CliError(format!("chaos: store open failed: {e}"))),
            };
        let mut sink = BestEffort { store: &mut store, refused: 0 };

        let run = farm.run_with_recovery_persistent(
            &rule,
            &g0,
            0,
            steps,
            Some(&plan),
            &cfg,
            |b, a| audit.check(b, a),
            |_, _, _| Ok(()),
            &mut sink,
        );
        let refused = sink.refused;

        let cfg_str = format!(
            "{shards}b k{depth}{}{}{}",
            if overlap { " ov" } else { "" },
            if stuck { " stuck" } else { "" },
            match worker {
                Some((WorkerFault::Die, _)) => " die",
                Some((WorkerFault::Hang { .. }, _)) => " hang",
                None => "",
            },
        );
        let mut why: Option<String> = None;
        let mut ladder = ["-", "-", "-", "-", "-"].map(String::from);
        let mut snap_note = "none";
        match run {
            Err(e) => why = Some(format!("run gave up: {e}")),
            Ok(ft) => {
                let r = &ft.recovery;
                ladder = [
                    r.detected.to_string(),
                    r.retransmits.to_string(),
                    r.local_rollbacks.to_string(),
                    r.rollbacks.to_string(),
                    r.boards_retired.to_string(),
                ];
                if ft.report.grid() != &reference {
                    why = Some("final lattice diverged from reference".into());
                } else if r.detected
                    != r.retransmits + r.local_rollbacks + r.rollbacks + r.boards_retired
                {
                    why = Some(format!(
                        "ladder accounting broken: {} detected vs {}+{}+{}+{}",
                        r.detected, r.retransmits, r.local_rollbacks, r.rollbacks, r.boards_retired
                    ));
                }
                // Whatever the storm-battered store still serves must be
                // a bit-exact committed generation (possibly the
                // previous one, via fallback) or a structured error —
                // never fabricated physics.
                if why.is_none() && store.commits() > 0 {
                    match store.load_latest() {
                        Err(_) => snap_note = "rot->err",
                        Ok(None) => why = Some("committed snapshots vanished from store".into()),
                        Ok(Some(l)) => {
                            snap_note = if l.fell_back { "fell-back" } else { "newest" };
                            match reassemble::<u8>(&l.snapshot) {
                                Err(e) => why = Some(format!("snapshot reassembly failed: {e}")),
                                Ok((g, t)) => {
                                    if t.get() > steps {
                                        why = Some(format!("snapshot time {} > {steps}", t.get()));
                                    } else if g != evolve(&g0, &rule, Boundary::null(), 0, t.get())
                                    {
                                        why = Some(format!(
                                            "snapshot at generation {} is not bit-exact",
                                            t.get()
                                        ));
                                    }
                                }
                            }
                        }
                    }
                }
            }
        }
        let io = store.backend_mut().stats();
        let result = match &why {
            None => "ok".to_string(),
            Some(w) => {
                failed.push(storm);
                format!("FAIL: {w}")
            }
        };
        let [det, rt, loc, glob, ret] = ladder;
        out.push_str(&table.row(&[
            storm.to_string(),
            sseed.to_string(),
            cfg_str,
            det,
            rt,
            loc,
            glob,
            ret,
            format!("{}/{}/{}/{}", io.torn_writes, io.bit_rots, io.short_reads, io.crashes),
            format!("{}/{}", store.commits(), refused),
            snap_note.to_string(),
            result,
        ]));
    }
    out.push_str(
        "\ndet/rt/loc/glob/ret = recovery-ladder detections and the level that\n\
         answered each; io t/r/s/c = injected torn writes / bit rots / short\n\
         reads / crashes; ckpt ok/ref = snapshot commits accepted / refused\n\
         (a refused commit leaves the previous good generation intact).\n",
    );
    if failed.is_empty() {
        out.push_str(&format!("\nchaos: all {storms} storm(s) recovered, every invariant held\n"));
        Ok(out)
    } else {
        out.push_str(&format!("\nchaos: {} storm(s) FAILED; reproduce with:\n", failed.len()));
        for storm in &failed {
            out.push_str(&format!(
                "  lattice chaos --storms 1 --seed {} --rows {rows} --cols {cols} \
                 --steps {steps} --rate {rate} --io-rate {io_rate}\n",
                seed.wrapping_add(*storm)
            ));
        }
        Err(CliError(out))
    }
}

/// `lattice serve`: bind the daemon and block until a `shutdown` frame
/// arrives. The bound address is printed (and flushed) before the
/// accept loop starts, so scripts binding port 0 can discover it.
fn run_serve(
    addr: String,
    checkpoint_dir: Option<String>,
    link_capacity: Option<f64>,
    max_live: usize,
) -> Result<String, CliError> {
    use crate::serve::{Daemon, DaemonConfig};
    use std::io::Write;

    if max_live == 0 {
        return Err(CliError("serve: --max-live must be ≥ 1".into()));
    }
    if let Some(c) = link_capacity {
        if c.is_nan() || c <= 0.0 {
            return Err(CliError("serve: --link-capacity must be positive".into()));
        }
    }
    let daemon = Daemon::bind(&DaemonConfig { addr, checkpoint_dir, link_capacity, max_live })
        .map_err(|e| CliError(e.to_string()))?;
    println!("lattice-serve listening on {}", daemon.addr());
    let _ = std::io::stdout().flush();
    daemon.run().map_err(|e| CliError(e.to_string()))?;
    Ok("lattice-serve: shut down cleanly\n".into())
}

/// `lattice request`: one frame out, response line(s) back. The frame
/// is validated locally first so a typo fails with a protocol error
/// here instead of a round trip; a `stats` frame with `watch > 1`
/// reads the whole streamed window.
///
/// Failures are classified for [`exit_code`]: `request: transport:`
/// (exit 3) for connect/read/write errors, `request: timeout:` (exit
/// 4) when the `--timeout` deadline lapses, `request: daemon error:`
/// (exit 5) when the daemon answers with an error frame. Transport
/// failures and timeouts are retried `--retries` times with
/// exponential backoff + jitter; a retried `step` is stamped with a
/// request id first, so resending it is idempotent.
fn run_request(
    addr: &str,
    line: &str,
    timeout_secs: f64,
    retries: u32,
) -> Result<String, CliError> {
    use crate::serve::{is_timeout_error, Client, Request, Response};
    use std::time::Duration;

    if timeout_secs.is_nan() || timeout_secs <= 0.0 {
        return Err(CliError("request: --timeout must be positive seconds".into()));
    }
    let timeout = Duration::from_secs_f64(timeout_secs.min(3600.0));
    let mut request = Request::from_line(line).map_err(|e| CliError(format!("request: {e}")))?;
    if retries > 0 {
        if let Request::Step { id: id @ None, .. } = &mut request {
            // At-most-once under resends: the daemon caches the reply
            // per id and re-acknowledges instead of re-stepping.
            let nanos = std::time::SystemTime::now()
                .duration_since(std::time::UNIX_EPOCH)
                .map(|d| d.as_nanos() as u64)
                .unwrap_or(0);
            *id = Some(format!("cli-{}-{:016x}", std::process::id(), mix(nanos)));
        }
    }
    let classify = |e: &crate::core::LatticeError| {
        if is_timeout_error(e) {
            CliError(format!("request: timeout: {e}"))
        } else {
            CliError(format!("request: transport: {e}"))
        }
    };

    let mut last_err = None;
    for attempt in 0..=retries {
        if attempt > 0 {
            // 50ms, 100ms, 200ms... capped at 2s, plus up to half a
            // step of jitter so retry bursts from concurrent clients
            // don't stay synchronized.
            let base = 50u64.saturating_mul(1 << (attempt - 1).min(10)).min(2000);
            let nanos = std::time::SystemTime::now()
                .duration_since(std::time::UNIX_EPOCH)
                .map(|d| d.as_nanos() as u64)
                .unwrap_or(0);
            let jitter = mix(nanos ^ u64::from(attempt)) % (base / 2 + 1);
            std::thread::sleep(Duration::from_millis(base + jitter));
        }
        let round_trip = || -> Result<String, crate::core::LatticeError> {
            let mut client = Client::connect_with_timeout(addr, timeout)?;
            let mut out = client.call(&request.to_line())?;
            out.push('\n');
            if let Request::Stats { watch } = request {
                for _ in 1..watch {
                    match client.read_line()? {
                        Some(l) => {
                            out.push_str(&l);
                            out.push('\n');
                        }
                        None => break,
                    }
                }
            }
            Ok(out)
        };
        match round_trip() {
            Ok(out) => {
                // The round trip succeeded at the transport level; an
                // error *frame* is the daemon refusing the request, and
                // retrying a refusal would just be refused again.
                if let Ok(Response::Error { message }) =
                    Response::from_line(out.lines().next().unwrap_or(""))
                {
                    return Err(CliError(format!("request: daemon error: {message}")));
                }
                return Ok(out);
            }
            Err(e) => last_err = Some(classify(&e)),
        }
    }
    Err(last_err.unwrap_or_else(|| CliError("request: transport: no attempt ran".into())))
}

/// `lattice chaos --serve`: the daemon-level chaos soak. Each storm
/// derives a deterministic weather from its seed, then runs four
/// sessions — fault-free, ARQ-weathered, worker die/hang, and one
/// doomed to quarantine — through `LIVES` daemon lives (kill +
/// restart between each) while garbage, truncated, and oversized
/// frames are injected at the transport. After the final restart the
/// storm asserts: every surviving session is bit-exact vs a
/// fault-free direct `LatticeFarm` run, the doomed session is
/// `poisoned` (not a daemon crash), the PR 3 conservation invariant
/// holds on counters accumulated across restarts, and destroying
/// everything leaves zero session namespaces behind.
fn run_serve_chaos(storms: u64, steps: u64, seed: u64, rate: f64) -> Result<String, CliError> {
    use crate::gas::HppRule;
    use crate::serve::{
        build_farm, inject_raw, seed_grid, Client, Daemon, DaemonConfig, FaultSpec, Query, Request,
        Response, SessionSpec, MAX_FRAME_BYTES,
    };

    if storms == 0 || steps == 0 {
        return Err(CliError("chaos: --storms and --steps must be ≥ 1".into()));
    }
    if !(0.0..=1.0).contains(&rate) {
        return Err(CliError("chaos: --rate must be in [0, 1]".into()));
    }
    /// Daemon lives per storm: 1 initial + 3 kill/restart cycles,
    /// plus a final verification life spawned after the loop.
    const LIVES: u64 = 4;

    fn call(c: &mut Client, req: &Request) -> Result<Response, String> {
        let line = c.call(&req.to_line()).map_err(|e| format!("transport: {e}"))?;
        Response::from_line(&line).map_err(|e| format!("bad response frame: {e}"))
    }
    fn reference_cells(spec: &SessionSpec, gens: u64) -> Result<Vec<u8>, String> {
        let clean = SessionSpec { fault: None, ..spec.clone() };
        let grid = seed_grid(&clean).map_err(|e| e.to_string())?;
        let farm = build_farm(&clean).map_err(|e| e.to_string())?;
        let report = farm.run(&HppRule::new(), &grid, 0, gens).map_err(|e| e.to_string())?;
        Ok(report.grid().as_slice().to_vec())
    }

    /// One storm; returns (restarts, injections, ladder totals).
    fn storm(sseed: u64, steps: u64, rate: f64, dir: &str) -> Result<(u64, u64, [u64; 5]), String> {
        let d = |salt: u64| mix(sseed ^ mix(salt));
        let hang = d(20) % 2 == 1;
        let base = |name_seed: u64, fault: Option<FaultSpec>| SessionSpec {
            model: "hpp".into(),
            rows: 12,
            cols: 24,
            seed: name_seed,
            shards: 2,
            fault,
            ..SessionSpec::default()
        };
        // The cast: a control, two weathered survivors, one goner.
        let specs: [(&str, SessionSpec); 4] = [
            ("clean", base(sseed, None)),
            ("arq", base(sseed + 1, Some(FaultSpec { link_rate: rate, ..FaultSpec::default() }))),
            (
                "worker",
                base(
                    sseed + 2,
                    Some(FaultSpec {
                        fail_board: (d(21) % 2) as usize,
                        fail_pass: Some(1 + d(22) % 2),
                        fail_kind: if hang { "hang".into() } else { "die".into() },
                        hang_ms: 150,
                        watchdog_ms: if hang { Some(40) } else { None },
                        ..FaultSpec::default()
                    }),
                ),
            ),
            (
                "doomed",
                base(sseed + 3, Some(FaultSpec { stuck_link: Some(1), ..FaultSpec::default() })),
            ),
        ];
        let config = DaemonConfig {
            checkpoint_dir: Some(dir.to_string()),
            link_capacity: Some(f64::INFINITY),
            max_live: 4,
            ..DaemonConfig::default()
        };
        let mut gens: u64 = 0; // generations every surviving session has run
        let mut totals = [0u64; 5]; // det / rt / loc / glob / ret, across lives
        let mut restarts: u64 = 0;
        let mut injections: u64 = 0;

        for life in 0..LIVES {
            let (addr, handle) = Daemon::spawn(&config).map_err(|e| e.to_string())?;
            let addr = addr.to_string();
            if life > 0 {
                restarts += 1;
            }
            let mut c = Client::connect(&addr).map_err(|e| e.to_string())?;
            if life == 0 {
                for (name, spec) in &specs {
                    match call(
                        &mut c,
                        &Request::Create { session: (*name).into(), spec: spec.clone() },
                    )? {
                        Response::Created { admitted: true, .. } => {}
                        other => return Err(format!("create {name}: {other:?}")),
                    }
                }
                // The stuck link exhausts the whole ladder on first
                // touch: quarantined, never a daemon crash.
                match call(&mut c, &Request::Step { session: "doomed".into(), n: 1, id: None })? {
                    Response::Error { message } if message.contains("quarantined") => {}
                    other => return Err(format!("doomed step: {other:?}")),
                }
            }

            // Transport storm: malformed bytes (structured error, same
            // connection stays usable), a mid-frame connection drop,
            // and — once per storm — an oversized frame.
            match inject_raw(&addr, b"{\"op\":]garbage\n", true).map_err(|e| e.to_string())? {
                Some(line) => match Response::from_line(&line) {
                    Ok(Response::Error { .. }) => injections += 1,
                    other => return Err(format!("garbage frame got {other:?}")),
                },
                None => return Err("garbage frame: daemon hung up instead of erroring".into()),
            }
            inject_raw(&addr, b"{\"op\":\"stats\",\"wat", false).map_err(|e| e.to_string())?;
            injections += 1;
            if life == 1 {
                let mut big = vec![b'x'; MAX_FRAME_BYTES + 2];
                big.push(b'\n');
                match inject_raw(&addr, &big, true).map_err(|e| e.to_string())? {
                    Some(line) => match Response::from_line(&line) {
                        Ok(Response::Error { message }) if message.contains("limit") => {
                            injections += 1;
                        }
                        other => return Err(format!("oversized frame got {other:?}")),
                    },
                    None => return Err("oversized frame: daemon hung up".into()),
                }
            }
            // A malformed frame on an established connection must not
            // poison the connection for the next valid frame.
            let reply = c.call("{\"op\":\"no-such-op\"}").map_err(|e| e.to_string())?;
            match Response::from_line(&reply) {
                Ok(Response::Error { .. }) => injections += 1,
                other => return Err(format!("bad-op frame got {other:?}")),
            }

            // Step the survivors, re-sending one step id to prove
            // at-most-once application under client retries.
            let n = 1 + d(100 + life) % steps;
            for (k, name) in ["clean", "arq", "worker"].iter().enumerate() {
                let id = format!("chaos-{sseed}-{life}-{k}");
                let req = Request::Step { session: (*name).into(), n, id: Some(id.clone()) };
                let first = call(&mut c, &req)?;
                let Response::Stepped { time, .. } = first else {
                    return Err(format!("step {name} life {life}: {first:?}"));
                };
                if time != gens + n {
                    return Err(format!("step {name} life {life}: time {time} != {}", gens + n));
                }
                if d(200 + life * 8 + k as u64) % 2 == 0 {
                    match call(&mut c, &req)? {
                        Response::Stepped { time: t2, .. } if t2 == time => {}
                        other => return Err(format!("retried step {name} re-applied: {other:?}")),
                    }
                }
            }
            gens += n;

            // Fold this life's recovery counters into the cross-restart
            // tally (the daemon's in-memory counters die with it).
            for name in ["clean", "arq", "worker"] {
                match call(
                    &mut c,
                    &Request::QueryReq { session: name.into(), what: Query::Report },
                )? {
                    Response::Report(r) => {
                        totals[0] += r.detected;
                        totals[1] += r.retransmits;
                        totals[2] += r.local_rollbacks;
                        totals[3] += r.rollbacks;
                        totals[4] += r.boards_retired;
                    }
                    other => return Err(format!("report {name}: {other:?}")),
                }
            }
            match call(&mut c, &Request::Shutdown)? {
                Response::Bye => {}
                other => return Err(format!("shutdown: {other:?}")),
            }
            handle.join().map_err(|_| "daemon panicked".to_string())?.map_err(|e| e.to_string())?;
        }

        // Final life: restart once more and audit what survived.
        let (addr, handle) = Daemon::spawn(&config).map_err(|e| e.to_string())?;
        let addr = addr.to_string();
        restarts += 1;
        let mut c = Client::connect(&addr).map_err(|e| e.to_string())?;
        match call(&mut c, &Request::Stats { watch: 1 })? {
            Response::Stats(frame) => {
                if frame.sessions.len() != 4 {
                    return Err(format!("expected 4 sessions after restart: {frame:?}"));
                }
                if frame.poisoned != 1 {
                    return Err(format!("quarantine lost across restarts: {frame:?}"));
                }
            }
            other => return Err(format!("stats: {other:?}")),
        }
        // Survivors are bit-exact vs the fault-free direct farm run.
        for (name, spec) in &specs {
            if *name == "doomed" {
                continue;
            }
            let what = Query::Region { row0: 0, col0: 0, rows: spec.rows, cols: spec.cols };
            match call(&mut c, &Request::QueryReq { session: (*name).into(), what })? {
                Response::Region { time, cells, .. } => {
                    if time != gens {
                        return Err(format!("{name} at generation {time}, expected {gens}"));
                    }
                    if cells != reference_cells(spec, gens)? {
                        return Err(format!("{name} diverged from fault-free reference"));
                    }
                }
                other => return Err(format!("region {name}: {other:?}")),
            }
        }
        // The goner is still fenced off.
        match call(&mut c, &Request::Step { session: "doomed".into(), n: 1, id: None })? {
            Response::Error { message } if message.contains("quarantined") => {}
            other => return Err(format!("poisoned step after restarts: {other:?}")),
        }
        // Ladder accounting survives kill+restart cycles.
        if totals[0] != totals[1] + totals[2] + totals[3] + totals[4] {
            return Err(format!(
                "conservation broke across restarts: {} detected vs {}+{}+{}+{}",
                totals[0], totals[1], totals[2], totals[3], totals[4]
            ));
        }
        // Destroy everything: zero leaked session namespaces.
        for (name, _) in &specs {
            match call(&mut c, &Request::Destroy { session: (*name).into() })? {
                Response::Destroyed { .. } => {}
                other => return Err(format!("destroy {name}: {other:?}")),
            }
        }
        match call(&mut c, &Request::Stats { watch: 1 })? {
            Response::Stats(frame) if frame.sessions.is_empty() => {}
            other => return Err(format!("leaked session namespaces: {other:?}")),
        }
        match call(&mut c, &Request::Shutdown)? {
            Response::Bye => {}
            other => return Err(format!("final shutdown: {other:?}")),
        }
        handle.join().map_err(|_| "daemon panicked".to_string())?.map_err(|e| e.to_string())?;
        Ok((restarts, injections, totals))
    }

    let mut out = format!(
        "chaos --serve: {storms} storm(s), 4 sessions x {} daemon lives each, base seed {seed}\n\
         weather: halo-link transients @ {rate:.1e}, worker die/hang, one stuck link \
         (quarantine), transport garbage/truncation/oversize\n\
         invariants: survivors bit-exact vs direct farm, quarantine contained and durable, \
         ladder accounting across restarts, no leaked namespaces\n\n",
        LIVES + 1
    );
    let table = SweepTable::new(&[
        ("storm", 5, Align::Right),
        ("seed", 20, Align::Left),
        ("restarts", 8, Align::Right),
        ("inject", 6, Align::Right),
        ("det", 3, Align::Right),
        ("rt", 2, Align::Right),
        ("loc", 3, Align::Right),
        ("glob", 4, Align::Right),
        ("ret", 3, Align::Right),
        ("result", 0, Align::Left),
    ]);
    out.push_str(&table.header());
    let mut failed: Vec<u64> = Vec::new();
    for i in 0..storms {
        let sseed = seed.wrapping_add(i);
        let dir = std::env::temp_dir()
            .join(format!("lattice-chaos-serve-{}-{i}", std::process::id()))
            .to_string_lossy()
            .into_owned();
        // Scratch store for this storm's daemon lives — created fresh
        // and torn down here, not durable-store state.
        let _ = std::fs::remove_dir_all(&dir); // lattice-lint: allow(fs-write)
        std::fs::create_dir_all(&dir) // lattice-lint: allow(fs-write)
            .map_err(|e| CliError(format!("chaos: mkdir {dir}: {e}")))?;
        let outcome = storm(sseed, steps, rate, &dir);
        let _ = std::fs::remove_dir_all(&dir); // lattice-lint: allow(fs-write)
        let (restarts, injections, ladder, result) = match outcome {
            Ok((r, j, l)) => (r, j, l, "ok".to_string()),
            Err(why) => {
                failed.push(i);
                (0, 0, [0; 5], format!("FAIL: {why}"))
            }
        };
        out.push_str(&table.row(&[
            i.to_string(),
            sseed.to_string(),
            restarts.to_string(),
            injections.to_string(),
            ladder[0].to_string(),
            ladder[1].to_string(),
            ladder[2].to_string(),
            ladder[3].to_string(),
            ladder[4].to_string(),
            result,
        ]));
    }
    if failed.is_empty() {
        out.push_str(&format!(
            "\nchaos --serve: all {storms} storm(s) held every invariant across restarts\n"
        ));
        Ok(out)
    } else {
        out.push_str(&format!(
            "\nchaos --serve: {} storm(s) FAILED; reproduce with:\n",
            failed.len()
        ));
        for i in &failed {
            out.push_str(&format!(
                "  lattice chaos --serve --storms 1 --seed {} --steps {steps} --rate {rate}\n",
                seed.wrapping_add(*i)
            ));
        }
        Err(CliError(out))
    }
}

/// Today's date as `YYYY-MM-DD` (UTC), via Howard Hinnant's
/// civil-from-days algorithm — no calendar dependency.
fn bench_date() -> String {
    let secs = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.as_secs())
        .unwrap_or(0);
    let z = (secs / 86_400) as i64 + 719_468;
    let era = z.div_euclid(146_097);
    let doe = z.rem_euclid(146_097);
    let yoe = (doe - doe / 1460 + doe / 36_524 - doe / 146_096) / 365;
    let doy = doe - (365 * yoe + yoe / 4 - yoe / 100);
    let mp = (5 * doy + 2) / 153;
    let d = doy - (153 * mp + 2) / 5 + 1;
    let m = if mp < 10 { mp + 3 } else { mp - 9 };
    let y = yoe + era * 400 + i64::from(m <= 2);
    format!("{y:04}-{m:02}-{d:02}")
}

/// Arguments to [`run_bench`] — one struct instead of ten positional
/// parameters.
struct BenchArgs {
    rows: usize,
    cols: usize,
    steps: u64,
    seed: u64,
    depth: usize,
    shards: String,
    fault_rates: String,
    link_bits: f64,
    grid: Option<(usize, usize)>,
    tier_bits: Option<f64>,
    json: bool,
    out: Option<String>,
    baseline: Option<String>,
    tolerance: f64,
}

/// `lattice bench`: sweep HPP through engine x shards x overlap and
/// report throughput at the paper's 10 MHz clock; `--json` emits the
/// same numbers as a machine-readable artifact for trend tracking,
/// and `--baseline` turns the run into a regression ratchet against a
/// checked-in artifact. `--fault-rates` adds WSA sweeps that push
/// link-transient faults through the recovery ladder, so the artifact
/// also tracks link utilization and the tick cost of recovery.
fn run_bench(args: BenchArgs) -> Result<String, CliError> {
    use crate::farm::{BoardLink, FarmDegradeConfig, FarmRecoveryConfig, LatticeFarm, ShardEngine};
    use crate::gas::audit::{AuditMode, ConservationAudit};
    use crate::serve::json::Value;
    use crate::sim::{Component, Fault, FaultKind, FaultPlan};

    let BenchArgs {
        rows,
        cols,
        steps,
        seed,
        depth,
        shards,
        fault_rates,
        link_bits,
        grid: board_grid,
        tier_bits,
        json,
        out,
        baseline,
        tolerance,
    } = args;
    let (shards_list, out_path) = (shards.as_str(), out.as_deref());
    if depth == 0 || steps == 0 {
        return Err(CliError("bench: --depth and --steps must be ≥ 1".into()));
    }
    if !(0.0..1.0).contains(&tolerance) {
        return Err(CliError("bench: --tolerance must be in [0, 1)".into()));
    }
    if link_bits.is_nan() || link_bits <= 0.0 {
        return Err(CliError("bench: --link-bits must be positive".into()));
    }
    if let Some((gr, gc)) = board_grid {
        if gr > rows || gc > cols {
            return Err(CliError(format!(
                "bench: --grid {gr}x{gc} does not fit a {rows}x{cols} lattice"
            )));
        }
    }
    if tier_bits.is_some() && board_grid.is_none() {
        return Err(CliError(
            "bench: --tier-bits needs --grid — the inter-rack tier is idle on \
             columnar layouts"
                .into(),
        ));
    }
    if tier_bits.is_some_and(|b| b.is_nan() || b <= 0.0) {
        return Err(CliError("bench: --tier-bits must be positive".into()));
    }
    let shard_counts: Vec<usize> = shards_list
        .split(',')
        .map(|s| {
            s.trim()
                .parse::<usize>()
                .ok()
                .filter(|&n| n >= 1 && n <= cols)
                .ok_or_else(|| CliError(format!("bench: bad --shards entry `{s}` (1..=cols)")))
        })
        .collect::<Result<_, _>>()?;
    let rate_list: Vec<f64> = fault_rates
        .split(',')
        .map(str::trim)
        .filter(|s| !s.is_empty())
        .map(|s| {
            s.parse::<f64>()
                .ok()
                .filter(|r| (0.0..=1.0).contains(r))
                .ok_or_else(|| CliError(format!("bench: bad --fault-rates entry `{s}` (0..=1)")))
        })
        .collect::<Result<_, _>>()?;
    let shape = Shape::grid2(rows, cols).map_err(|e| CliError(e.to_string()))?;
    let grid = init::random_hpp(shape, 0.3, seed).map_err(|e| CliError(e.to_string()))?;
    let rule = HppRule::new();
    let clock = Technology::paper_1987().clock();

    let table = SweepTable::new(&[
        ("engine", 6, Align::Left),
        ("shards", 6, Align::Right),
        ("overlap", 7, Align::Left),
        ("fault", 6, Align::Right),
        ("sites/sec", 12, Align::Right),
        ("upd/tick", 8, Align::Right),
        ("halo bits/tick", 14, Align::Right),
        ("link util", 9, Align::Right),
        ("rec cost", 8, Align::Right),
        ("ticks", 8, Align::Right),
    ]);
    let mut out = format!(
        "bench: hpp on {rows}x{cols}, {steps} generations, k = {depth}, seed {seed}, \
         clock {:.1e} Hz\n",
        clock.get()
    );
    out.push_str(&table.header());
    let mut results: Vec<Value> = Vec::new();

    // Scalar row shared by the clean and faulted sweeps so both render
    // and serialize identically.
    struct BenchRow {
        engine: &'static str,
        shards: usize,
        grid: Option<(usize, usize)>,
        overlap: bool,
        fault_rate: f64,
        sps: f64,
        upd_per_tick: f64,
        halo_bits: f64,
        link_util: f64,
        rec_cost: f64,
        ticks: u64,
        passes: u64,
    }
    let mut push_row = |r: BenchRow| {
        out.push_str(&table.row(&[
            r.engine.to_string(),
            match r.grid {
                Some((gr, gc)) => format!("{gr}x{gc}"),
                None => r.shards.to_string(),
            },
            if r.overlap { "yes" } else { "no" }.to_string(),
            format!("{:.3}", r.fault_rate),
            format!("{:.3e}", r.sps),
            format!("{:.2}", r.upd_per_tick),
            format!("{:.2}", r.halo_bits),
            format!("{:.3}", r.link_util),
            format!("{:.3}", r.rec_cost),
            r.ticks.to_string(),
        ]));
        // Every row carries its own wire width so the ratchet key can
        // fold it in: two baselines that differ only in `--link-bits`
        // must never be compared row-for-row.
        let mut obj = vec![
            ("engine".into(), Value::Str(r.engine.into())),
            ("shards".into(), Value::num_usize(r.shards)),
            ("overlap".into(), Value::Bool(r.overlap)),
            ("fault_rate".into(), Value::Num(r.fault_rate)),
            ("link_bits".into(), Value::Num(link_bits)),
            ("sites_per_sec".into(), Value::Num(r.sps)),
            ("updates_per_tick".into(), Value::Num(r.upd_per_tick)),
            ("halo_bits_per_tick".into(), Value::Num(r.halo_bits)),
            ("link_utilization".into(), Value::Num(r.link_util)),
            ("recovery_cost".into(), Value::Num(r.rec_cost)),
            ("machine_ticks".into(), Value::num_u64(r.ticks)),
            ("passes".into(), Value::num_u64(r.passes)),
        ];
        if let Some((gr, gc)) = r.grid {
            obj.push(("grid_rows".into(), Value::num_usize(gr)));
            obj.push(("grid_cols".into(), Value::num_usize(gc)));
            obj.push(("tier_bits".into(), Value::Num(tier_bits.unwrap_or(link_bits))));
        }
        results.push(Value::Obj(obj));
    };

    for ename in ["wsa", "spa"] {
        for &s in &shard_counts {
            for overlap in [false, true] {
                let eng = match ename {
                    "wsa" => ShardEngine::Wsa { width: 2 },
                    _ => ShardEngine::Spa { slice_width: 1 },
                };
                let farm = LatticeFarm::new(s, eng, depth)
                    .with_overlap(overlap)
                    .with_link(BoardLink::new(link_bits));
                let report =
                    farm.run(&rule, &grid, 0, steps).map_err(|e| CliError(e.to_string()))?;
                let mt = report.machine_ticks();
                push_row(BenchRow {
                    engine: ename,
                    shards: s,
                    grid: None,
                    overlap,
                    fault_rate: 0.0,
                    sps: report.updates_per_second(clock).get(),
                    upd_per_tick: report.updates_per_tick().get(),
                    halo_bits: report.halo_bits_per_tick().get(),
                    link_util: if mt.is_zero() { 0.0 } else { report.halo_ticks.ratio(mt) },
                    rec_cost: if mt.is_zero() { 0.0 } else { report.retransmit_ticks.ratio(mt) },
                    ticks: mt.get(),
                    passes: report.passes,
                });
            }
        }
    }

    if let Some((gr, gc)) = board_grid {
        // Grid legs: the same lattice on an R×C board grid with both
        // link tiers throttled; WSA only (the model the grid rows are
        // ratcheted against mirrors the WSA pipeline).
        for overlap in [false, true] {
            let farm = LatticeFarm::new(gr * gc, ShardEngine::Wsa { width: 2 }, depth)
                .with_grid(gr, gc)
                .with_overlap(overlap)
                .with_link(BoardLink::new(link_bits))
                .with_tier_link(BoardLink::new(tier_bits.unwrap_or(link_bits)));
            let report = farm.run(&rule, &grid, 0, steps).map_err(|e| CliError(e.to_string()))?;
            let mt = report.machine_ticks();
            push_row(BenchRow {
                engine: "wsa",
                shards: gr * gc,
                grid: Some((gr, gc)),
                overlap,
                fault_rate: 0.0,
                sps: report.updates_per_second(clock).get(),
                upd_per_tick: report.updates_per_tick().get(),
                halo_bits: report.halo_bits_per_tick().get(),
                link_util: if mt.is_zero() { 0.0 } else { report.halo_ticks.ratio(mt) },
                rec_cost: if mt.is_zero() { 0.0 } else { report.retransmit_ticks.ratio(mt) },
                ticks: mt.get(),
                passes: report.passes,
            });
        }
    }

    if !rate_list.is_empty() {
        // Same confinement trick as `fault-sim --farm`: keep the gas
        // away from the edge so the exact-conservation audit that
        // drives fault detection never false-positives on boundary
        // loss.
        let margin = steps as usize;
        if rows <= 2 * margin || cols <= 2 * margin {
            return Err(CliError(format!(
                "bench: --fault-rates needs the lattice to exceed 2x --steps per side \
                 ({rows}x{cols} vs {steps} steps) so the conservation audit stays exact"
            )));
        }
        let confined = lattice_core::Grid::from_fn(shape, |c| {
            let inside = c.row() >= margin
                && c.row() < rows - margin
                && c.col() >= margin
                && c.col() < cols - margin;
            if inside {
                grid.get(c)
            } else {
                0
            }
        });
        let audit = ConservationAudit::new(Model::Hpp, AuditMode::Exact);
        for &rate in &rate_list {
            for &s in &shard_counts {
                for overlap in [false, true] {
                    let farm = LatticeFarm::new(s, ShardEngine::Wsa { width: 2 }, depth)
                        .with_overlap(overlap)
                        .with_link(BoardLink::new(link_bits));
                    // WSA boards: chip stride = depth, so board b's
                    // halo link is chip s·depth + b.
                    let link_chip_base = s * depth;
                    let mut plan = FaultPlan::new(seed);
                    if rate > 0.0 {
                        for b in 0..s {
                            plan.push(Fault {
                                component: Component::Link,
                                chip: Some(link_chip_base + b),
                                cell: None,
                                kind: FaultKind::Transient { bit: 1, rate },
                            });
                        }
                    }
                    let cfg = FarmRecoveryConfig {
                        max_retries: 3,
                        checkpoint_every: 2,
                        degrade: if s > 1 {
                            Some(FarmDegradeConfig { max_retired: s - 1 })
                        } else {
                            None
                        },
                        ..FarmRecoveryConfig::default()
                    };
                    let ft = farm
                        .run_with_recovery(&rule, &confined, 0, steps, Some(&plan), &cfg, |b, a| {
                            audit.check(b, a)
                        })
                        .map_err(|e| {
                            CliError(format!("bench: faulted run (wsa x{s} rate {rate}): {e}"))
                        })?;
                    let report = ft.report;
                    let mt = report.machine_ticks();
                    push_row(BenchRow {
                        engine: "wsa",
                        shards: s,
                        grid: None,
                        overlap,
                        fault_rate: rate,
                        sps: report.updates_per_second(clock).get(),
                        upd_per_tick: report.updates_per_tick().get(),
                        halo_bits: report.halo_bits_per_tick().get(),
                        link_util: if mt.is_zero() { 0.0 } else { report.halo_ticks.ratio(mt) },
                        rec_cost: if mt.is_zero() {
                            0.0
                        } else {
                            report.retransmit_ticks.ratio(mt)
                        },
                        ticks: mt.get(),
                        passes: report.passes,
                    });
                }
            }
        }
    }
    if json {
        let date = bench_date();
        let path = match out_path {
            Some(p) => p.to_string(),
            None => format!("BENCH_{date}.json"),
        };
        let doc = Value::Obj(vec![
            ("date".into(), Value::Str(date)),
            ("model".into(), Value::Str("hpp".into())),
            ("rows".into(), Value::num_usize(rows)),
            ("cols".into(), Value::num_usize(cols)),
            ("steps".into(), Value::num_u64(steps)),
            ("seed".into(), Value::num_u64(seed)),
            ("depth".into(), Value::num_usize(depth)),
            ("link_bits".into(), Value::Num(link_bits)),
            ("clock_hz".into(), Value::Num(clock.get())),
            ("results".into(), Value::Arr(results.clone())),
        ]);
        std::fs::write(&path, doc.render() + "\n")
            .map_err(|e| CliError(format!("bench: write {path}: {e}")))?;
        out.push_str(&format!("wrote {path}\n"));
    }
    if let Some(bpath) = baseline {
        out.push_str(&ratchet_against_baseline(&bpath, tolerance, &results)?);
    }
    Ok(out)
}

/// The `lattice bench --baseline` gate: every `(engine, shards,
/// overlap, fault_rate)` configuration present in both the baseline
/// artifact and this run must be within `tolerance` of the baseline
/// on three axes: sites/sec (lower is a regression), link utilization
/// and recovery cost (higher is a regression). The model-derived tick
/// counts make the comparison deterministic; the tolerance only
/// absorbs float-formatting drift. Improvement is reported, never
/// failed — the ratchet tightens by re-generating the artifact.
/// Baselines written before the fault columns existed compare as
/// `fault_rate = 0` with the cost axes skipped.
fn ratchet_against_baseline(
    bpath: &str,
    tolerance: f64,
    results: &[crate::serve::json::Value],
) -> Result<String, CliError> {
    use crate::serve::json::{self, Value};

    // The configuration key: engine × layout × overlap × fault rate ×
    // wire width. `link_bits` keys in millibits/tick so the tuple
    // stays Eq; rows written before the per-row column existed fall
    // back to the artifact's top-level value (`default_link`), so a
    // baseline recorded at one wire width is never compared against a
    // run at another — same sweep, different wire, different physics.
    let key = |v: &Value, default_link: f64| -> Option<(String, String, bool, u64, u64)> {
        // fault_rate keys as parts-per-million so the tuple stays Eq;
        // absent (pre-fault-column baselines) means the clean sweep.
        let rate = v.get("fault_rate").and_then(Value::as_f64).unwrap_or(0.0);
        let link = v.get("link_bits").and_then(Value::as_f64).unwrap_or(default_link);
        // Grid rows key by shape so a 2x2 grid never collides with a
        // columnar 4-shard row.
        let layout = match (
            v.get("grid_rows").and_then(Value::as_u64),
            v.get("grid_cols").and_then(Value::as_u64),
        ) {
            (Some(gr), Some(gc)) => format!("{gr}x{gc}"),
            _ => v.get("shards")?.as_u64()?.to_string(),
        };
        Some((
            v.get("engine")?.as_str()?.to_string(),
            layout,
            v.get("overlap")?.as_bool()?,
            (rate * 1e6).round() as u64,
            (link * 1e3).round() as u64,
        ))
    };
    let text = std::fs::read_to_string(bpath)
        .map_err(|e| CliError(format!("bench: read baseline {bpath}: {e}")))?;
    let doc = json::parse(&text)
        .map_err(|e| CliError(format!("bench: baseline {bpath} is not valid JSON: {e}")))?;
    let base_link = doc.get("link_bits").and_then(Value::as_f64).unwrap_or(16.0);
    let cur_link = results
        .iter()
        .find_map(|r| r.get("link_bits").and_then(Value::as_f64))
        .unwrap_or(base_link);
    let rows = doc
        .get("results")
        .and_then(Value::as_arr)
        .ok_or_else(|| CliError(format!("bench: baseline {bpath} has no `results` array")))?;

    let mut compared = 0usize;
    let mut regressions: Vec<String> = Vec::new();
    for base in rows {
        let Some(k) = key(base, base_link) else { continue };
        let Some(base_sps) = base.get("sites_per_sec").and_then(Value::as_f64) else { continue };
        let Some(cur) = results.iter().find(|r| key(r, cur_link).as_ref() == Some(&k)) else {
            continue;
        };
        let Some(cur_sps) = cur.get("sites_per_sec").and_then(Value::as_f64) else { continue };
        compared += 1;
        let tag = format!("{} x{} overlap={} fault={:.3}", k.0, k.1, k.2, k.3 as f64 / 1e6);
        if cur_sps < base_sps * (1.0 - tolerance) {
            regressions.push(format!(
                "  {tag}: {cur_sps:.3e} sites/sec vs baseline {base_sps:.3e} ({:+.1}%)",
                (cur_sps / base_sps - 1.0) * 100.0
            ));
        }
        // Cost axes: higher-than-baseline is the regression. Skipped
        // when the baseline predates the columns.
        for metric in ["link_utilization", "recovery_cost"] {
            let Some(base_m) = base.get(metric).and_then(Value::as_f64) else { continue };
            let Some(cur_m) = cur.get(metric).and_then(Value::as_f64) else { continue };
            if cur_m > base_m * (1.0 + tolerance) + 1e-9 {
                regressions.push(format!(
                    "  {tag}: {metric} {cur_m:.4} vs baseline {base_m:.4} ({:+.1}%)",
                    if base_m == 0.0 { f64::INFINITY } else { (cur_m / base_m - 1.0) * 100.0 }
                ));
            }
        }
    }
    if compared == 0 {
        return Err(CliError(format!(
            "bench: baseline {bpath} shares no configuration with this run — \
             regenerate it with the same --shards/--depth/--link-bits sweep"
        )));
    }
    if regressions.is_empty() {
        Ok(format!(
            "ratchet: {compared} configuration(s) within {:.0}% of {bpath}\n",
            tolerance * 100.0
        ))
    } else {
        Err(CliError(format!(
            "bench: {} configuration(s) regressed beyond {:.0}% of {bpath}:\n{}\n",
            regressions.len(),
            tolerance * 100.0,
            regressions.join("\n")
        )))
    }
}

fn run_pebble(d: usize, r: usize, t: usize, s: usize) -> Result<String, CliError> {
    if d == 0 || d > 3 {
        return Err(CliError("pebble: --d must be 1, 2, or 3".into()));
    }
    let graph = LatticeGraph::new(d, r, t);
    let n = graph.n_vertices() as u64;
    let lb = io_lower_bound(n, d, s);
    let tau = tau_upper_bound(d, s);
    let mut out = format!(
        "C_{d} on {r}^{d} x {t} generations: {n} vertices, S = {s}\n\
         Hong-Kung I/O lower bound: {lb:.0} site values\n\
         rate ceiling τ(2S) = {tau:.1} updates per I/O\n"
    );
    match tiled_schedule(&graph, s, None) {
        Ok(st) => out.push_str(&format!(
            "tiled schedule:  q = {} ({:.2} I/O per update, {:.2} updates per I/O)\n",
            st.io_moves,
            st.io_per_update(),
            1.0 / st.io_per_update()
        )),
        Err(e) => out.push_str(&format!("tiled schedule:  infeasible at this S ({e})\n")),
    }
    match naive_sweep(&graph, s) {
        Ok(st) => out.push_str(&format!(
            "naive schedule:  q = {} ({:.2} I/O per update)\n",
            st.io_moves,
            st.io_per_update()
        )),
        Err(e) => out.push_str(&format!("naive schedule:  infeasible ({e})\n")),
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn argv(s: &str) -> Vec<String> {
        s.split_whitespace().map(String::from).collect()
    }

    #[test]
    fn parse_gas_defaults_and_flags() {
        let cmd = parse(&argv("gas")).unwrap();
        assert!(matches!(cmd, Command::Gas { rows: 64, cols: 64, steps: 100, .. }));
        let cmd = parse(&argv(
            "gas --model fhp3 --rows 32 --cols 48 --steps 10 --density 0.5 --seed 7 --periodic",
        ))
        .unwrap();
        match cmd {
            Command::Gas { model, rows, cols, steps, density, seed, periodic, save } => {
                assert_eq!(model, "fhp3");
                assert_eq!((rows, cols, steps, seed), (32, 48, 10, 7));
                assert!((density - 0.5).abs() < 1e-12);
                assert!(periodic);
                assert!(save.is_none());
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn parse_grid_and_tier_bits_flags() {
        match parse(&argv("farm --grid 2x3 --tier-bits 4")).unwrap() {
            Command::Farm { shards, grid, tier_bits, .. } => {
                // `--grid RxC` implies R·C boards.
                assert_eq!((shards, grid, tier_bits), (6, Some((2, 3)), Some(4.0)));
            }
            other => panic!("{other:?}"),
        }
        match parse(&argv("farm --grid 2x3 --shards 6")).unwrap() {
            Command::Farm { shards, grid, .. } => assert_eq!((shards, grid), (6, Some((2, 3)))),
            other => panic!("{other:?}"),
        }
        assert!(parse(&argv("farm --grid 2x3 --shards 5")).is_err());
        assert!(parse(&argv("farm --grid 0x3")).is_err());
        assert!(parse(&argv("farm --grid 2by3")).is_err());
        assert!(parse(&argv("bench --grid 2x")).is_err());
        match parse(&argv("bench --grid 2X2 --tier-bits 8")).unwrap() {
            Command::Bench { grid, tier_bits, .. } => {
                assert_eq!((grid, tier_bits), (Some((2, 2)), Some(8.0)));
            }
            other => panic!("{other:?}"),
        }
        match parse(&argv("fault-sim --farm --farm-grid 3x2")).unwrap() {
            Command::FaultSim { farm_grid, .. } => assert_eq!(farm_grid, Some((3, 2))),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn parse_equals_form_and_errors() {
        let cmd = parse(&argv("pebble --d=3 --r=16 --t=8 --s=128")).unwrap();
        assert_eq!(cmd, Command::Pebble { d: 3, r: 16, t: 8, s: 128 });
        assert!(parse(&argv("bogus")).is_err());
        assert!(parse(&argv("gas --rows notanumber")).is_err());
        assert!(parse(&argv("gas stray")).is_err());
        assert!(parse(&[]).is_err());
        assert!(parse(&argv("help")).unwrap_err().0.contains("USAGE"));
    }

    #[test]
    fn execute_gas_conserves_on_torus() {
        let out = execute(Command::Gas {
            model: "fhp1".into(),
            rows: 16,
            cols: 16,
            steps: 20,
            density: 0.4,
            seed: 1,
            periodic: true,
            save: None,
        })
        .unwrap();
        assert!(out.contains("torus"));
        assert!(out.contains("mass"));
    }

    #[test]
    fn execute_gas_rejects_unknown_model() {
        let err = execute(Command::Gas {
            model: "bogus".into(),
            rows: 8,
            cols: 8,
            steps: 1,
            density: 0.3,
            seed: 1,
            periodic: false,
            save: None,
        })
        .unwrap_err();
        assert!(err.0.contains("unknown gas model"));
    }

    #[test]
    fn execute_engine_all_archs() {
        for arch in ["serial", "wsa", "spa", "wsae"] {
            let out = execute(Command::Engine {
                arch: arch.into(),
                width: 2,
                depth: 2,
                slice_width: 16,
                rows: 16,
                cols: 32,
                seed: 3,
            })
            .unwrap();
            assert!(out.contains("updates/tick"), "{arch}");
        }
        assert!(execute(Command::Engine {
            arch: "vax".into(),
            width: 1,
            depth: 1,
            slice_width: 8,
            rows: 8,
            cols: 8,
            seed: 0,
        })
        .is_err());
    }

    #[test]
    fn execute_design_both_regimes() {
        let small = execute(Command::Design { l: 500, rate: 5e7, budget: 64 }).unwrap();
        assert!(small.contains("WSA:   P = 4"));
        let big = execute(Command::Design { l: 2000, rate: 5e7, budget: 64 }).unwrap();
        assert!(big.contains("infeasible"));
    }

    #[test]
    fn execute_pebble_reports_bounds() {
        let out = execute(Command::Pebble { d: 2, r: 12, t: 6, s: 128 }).unwrap();
        assert!(out.contains("lower bound"));
        assert!(out.contains("tiled schedule"));
        assert!(execute(Command::Pebble { d: 9, r: 4, t: 2, s: 16 }).is_err());
    }

    #[test]
    fn execute_gas_saves_checkpoint() {
        let path = std::env::temp_dir().join("lattice_cli_test.lgc");
        let out = execute(Command::Gas {
            model: "hpp".into(),
            rows: 8,
            cols: 8,
            steps: 5,
            density: 0.3,
            seed: 2,
            periodic: true,
            save: Some(path.to_string_lossy().into_owned()),
        })
        .unwrap();
        assert!(out.contains("checkpoint"));
        let bytes = std::fs::read(&path).unwrap();
        let (grid, t) = checkpoint::load::<u8>(&bytes).unwrap();
        assert_eq!(t, Ticks::new(5));
        assert_eq!(grid.shape().dims(), &[8, 8]);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn resume_reproduces_uninterrupted_run() {
        use crate::core::{evolve, Boundary, Shape};
        use crate::gas::{init, FhpRule, FhpVariant};
        let dir = std::env::temp_dir();
        let p1 = dir.join("lattice_cli_resume_a.lgc");
        let p2 = dir.join("lattice_cli_resume_b.lgc");
        // Run 4 gens + save, resume 4 more + save.
        execute(Command::Gas {
            model: "fhp1".into(),
            rows: 10,
            cols: 12,
            steps: 4,
            density: 0.4,
            seed: 42,
            periodic: true,
            save: Some(p1.to_string_lossy().into_owned()),
        })
        .unwrap();
        execute(Command::Resume {
            load: p1.to_string_lossy().into_owned(),
            model: "fhp1".into(),
            steps: 4,
            seed: 42,
            periodic: true,
            save: Some(p2.to_string_lossy().into_owned()),
        })
        .unwrap();
        let (resumed, t) = checkpoint::load::<u8>(&std::fs::read(&p2).unwrap()).unwrap();
        assert_eq!(t, Ticks::new(8));
        // Equals one uninterrupted 8-generation run.
        let shape = Shape::grid2(10, 12).unwrap();
        let g0 = init::random_fhp(shape, FhpVariant::I, 0.4, 42, true).unwrap();
        let rule = FhpRule::new(FhpVariant::I, 42).with_wrap(10, 12);
        let straight = evolve(&g0, &rule, Boundary::Periodic, 0, 8);
        assert_eq!(resumed, straight);
        let _ = std::fs::remove_file(&p1);
        let _ = std::fs::remove_file(&p2);
    }

    #[test]
    fn resume_requires_load_flag() {
        assert!(parse(&argv("resume")).is_err());
        assert!(parse(&argv("resume --load /tmp/x.lgc")).is_ok());
    }

    #[test]
    fn image_chain_runs_and_rejects_unknown_stages() {
        let out = execute(Command::Image {
            chain: "median,blur,threshold,open".into(),
            rows: 12,
            cols: 20,
            seed: 3,
        })
        .unwrap();
        assert!(out.contains("applied median"));
        assert!(out.contains("applied open"));
        assert!(out.contains('#') || out.contains('.'));
        assert!(execute(Command::Image {
            chain: "median,sharpen".into(),
            rows: 8,
            cols: 8,
            seed: 1,
        })
        .is_err());
        assert!(parse(&argv("image --chain sobel")).is_ok());
    }

    #[test]
    fn waveform_renders_and_verifies() {
        let out = execute(Command::Waveform { width: 2, depth: 3, rows: 12, cols: 16 }).unwrap();
        assert!(out.contains("stage0"));
        assert!(out.contains("wavefront"));
    }

    #[test]
    fn fault_sim_parses_and_recovers_bit_exact() {
        let cmd = parse(&argv("fault-sim --rows 30 --cols 40 --depth 2 --rate 2e-4")).unwrap();
        match &cmd {
            Command::FaultSim { rows: 30, cols: 40, depth: 2, stuck_chip: None, .. } => {}
            other => panic!("{other:?}"),
        }
        let out = execute(Command::FaultSim {
            rows: 30,
            cols: 40,
            width: 1,
            depth: 2,
            steps: 6,
            seed: 5,
            rate: 2e-5,
            retries: 6,
            ckpt_every: 1,
            stuck_chip: None,
            farm: false,
            farm_shards: "1,2,4".into(),
            farm_grid: None,
            stuck_board: None,
            overlap: false,
        })
        .unwrap();
        assert!(out.contains("upd/fault"), "{out}");
        assert!(out.contains("bit-exact"), "{out}");
        assert!(!out.contains("WRONG"), "{out}");
    }

    #[test]
    fn fault_sim_exits_nonzero_when_a_sweep_cell_ends_unrecovered() {
        // A flip rate hot enough that count-conserving multi-flip passes
        // slip past the exact audit (or exhaust the retry budget): the
        // sweep must not bury that in a table row — the command fails.
        let err = execute(Command::FaultSim {
            rows: 30,
            cols: 40,
            width: 1,
            depth: 2,
            steps: 6,
            seed: 5,
            rate: 2e-4,
            retries: 6,
            ckpt_every: 1,
            stuck_chip: None,
            farm: false,
            farm_shards: "1,2,4".into(),
            farm_grid: None,
            stuck_board: None,
            overlap: false,
        })
        .unwrap_err();
        assert!(err.0.contains("ended unrecovered"), "{}", err.0);
    }

    #[test]
    fn fault_sim_stuck_link_bypasses_the_chip_and_stays_exact() {
        let out = execute(Command::FaultSim {
            rows: 26,
            cols: 30,
            width: 1,
            depth: 3,
            steps: 4,
            seed: 9,
            rate: 0.0,
            retries: 1,
            ckpt_every: 1,
            stuck_chip: Some(1),
            farm: false,
            farm_shards: "1,2,4".into(),
            farm_grid: None,
            stuck_board: None,
            overlap: false,
        })
        .unwrap();
        assert!(!out.contains("WRONG"), "{out}");
        assert!(!out.contains("gave up"), "{out}");
        let row = out.lines().find(|l| l.ends_with("bit-exact")).unwrap();
        // rate injected detected rollbacks bypassed passes upd/fault result
        let fields: Vec<&str> = row.split_whitespace().collect();
        assert_eq!(fields[4], "1", "expected one bypassed chip: {row}");
    }

    #[test]
    fn fault_sim_rejects_bad_geometry() {
        // Margin smaller than the generation count: exactness is not
        // guaranteed, so the command must refuse.
        assert!(execute(Command::FaultSim {
            rows: 10,
            cols: 10,
            width: 1,
            depth: 2,
            steps: 8,
            seed: 1,
            rate: 1e-4,
            retries: 3,
            ckpt_every: 1,
            stuck_chip: None,
            farm: false,
            farm_shards: "1,2,4".into(),
            farm_grid: None,
            stuck_board: None,
            overlap: false,
        })
        .is_err());
        assert!(parse(&argv("fault-sim --stuck-chip nope")).is_err());
        assert!(parse(&argv("fault-sim --stuck-board nope")).is_err());
    }

    #[test]
    fn farm_fault_sim_sweeps_the_ladder_and_stays_exact() {
        let cmd = parse(&argv(
            "fault-sim --farm --rows 26 --cols 36 --depth 2 --steps 6 \
             --farm-shards 1,2 --rate 2e-3 --seed 11",
        ))
        .unwrap();
        match &cmd {
            Command::FaultSim { farm: true, farm_shards, stuck_board: None, .. } => {
                assert_eq!(farm_shards, "1,2");
            }
            other => panic!("{other:?}"),
        }
        let out = execute(cmd).unwrap();
        assert!(out.contains("retrans"), "{out}");
        assert!(out.contains("degraded"), "{out}");
        assert!(out.contains("bit-exact"), "{out}");
        assert!(!out.contains("WRONG"), "{out}");
        assert!(!out.contains("gave up"), "{out}");
        // The single-board row has no halo links, so a link-rate sweep
        // injects nothing there; the 2-board rows see real weather.
        assert!(out.lines().filter(|l| l.ends_with("bit-exact")).count() >= 8, "{out}");
    }

    #[test]
    fn farm_fault_sim_stuck_board_degrades_and_stays_exact() {
        let out = execute(Command::FaultSim {
            rows: 26,
            cols: 36,
            width: 1,
            depth: 2,
            steps: 6,
            seed: 11,
            rate: 0.0,
            retries: 1,
            ckpt_every: 1,
            stuck_chip: None,
            farm: true,
            farm_shards: "2".into(),
            farm_grid: None,
            stuck_board: Some(1),
            overlap: false,
        })
        .unwrap();
        assert!(!out.contains("WRONG"), "{out}");
        assert!(!out.contains("gave up"), "{out}");
        // Every row retires the stuck board exactly once.
        for row in out.lines().filter(|l| l.ends_with("bit-exact")) {
            let fields: Vec<&str> = row.split_whitespace().collect();
            // shards rate injected detected retrans local global degraded ...
            assert_eq!(fields[7], "1", "expected one retired board: {row}");
        }
        // An out-of-range stuck board is refused.
        assert!(execute(Command::FaultSim {
            rows: 26,
            cols: 36,
            width: 1,
            depth: 2,
            steps: 6,
            seed: 11,
            rate: 0.0,
            retries: 1,
            ckpt_every: 1,
            stuck_chip: None,
            farm: true,
            farm_shards: "2,4".into(),
            farm_grid: None,
            stuck_board: Some(2),
            overlap: false,
        })
        .is_err());
    }

    #[test]
    fn farm_parses_defaults_and_flags() {
        let cmd = parse(&argv("farm")).unwrap();
        assert!(matches!(
            cmd,
            Command::Farm {
                shards: 4,
                depth: 2,
                link_bits: None,
                grid: None,
                tier_bits: None,
                overlap: false,
                verify: false,
                ..
            }
        ));
        let cmd = parse(&argv(
            "farm --shards 3 --engine spa --slice-width 1 --rows 12 --cols 30 \
             --steps 4 --model hpp --link-bits 8 --overlap --verify --periodic",
        ))
        .unwrap();
        match cmd {
            Command::Farm {
                shards,
                engine,
                slice_width,
                model,
                periodic,
                link_bits,
                overlap,
                verify,
                ..
            } => {
                assert_eq!((shards, slice_width), (3, 1));
                assert_eq!(engine, "spa");
                assert_eq!(model, "hpp");
                assert!(periodic && verify && overlap);
                assert_eq!(link_bits, Some(8.0));
            }
            other => panic!("{other:?}"),
        }
        assert!(parse(&argv("farm --link-bits fast")).is_err());
        // fault-sim picks the flag up too (farm fault matrix runs both modes).
        assert!(matches!(
            parse(&argv("fault-sim --farm --overlap")).unwrap(),
            Command::FaultSim { farm: true, overlap: true, .. }
        ));
    }

    #[test]
    fn farm_executes_and_verifies_bit_exact() {
        let out = execute(Command::Farm {
            shards: 3,
            engine: "wsa".into(),
            width: 2,
            slice_width: 1,
            depth: 2,
            rows: 16,
            cols: 30,
            steps: 4,
            seed: 5,
            model: "fhp1".into(),
            periodic: false,
            link_bits: None,
            grid: None,
            tier_bits: None,
            overlap: false,
            verify: true,
            checkpoint_dir: None,
            ckpt_every: 1,
            resume: false,
        })
        .unwrap();
        assert!(out.contains("verify: bit-exact vs reference"), "{out}");
        assert!(out.contains("model: pass ticks"), "{out}");
        assert!(out.contains("shard  row0  rows  col0"), "{out}");
    }

    #[test]
    fn farm_overlap_hides_halo_time_and_verifies_bit_exact() {
        let out = execute(Command::Farm {
            shards: 4,
            engine: "wsa".into(),
            width: 2,
            slice_width: 1,
            depth: 2,
            rows: 16,
            cols: 64,
            steps: 8,
            seed: 5,
            model: "fhp1".into(),
            periodic: false,
            link_bits: Some(4.0),
            grid: None,
            tier_bits: None,
            overlap: true,
            verify: true,
            checkpoint_dir: None,
            ckpt_every: 1,
            resume: false,
        })
        .unwrap();
        assert!(out.contains("overlapped exchange"), "{out}");
        assert!(out.contains("verify: bit-exact vs reference"), "{out}");
        assert!(!out.contains("- 0 overlapped"), "throttled overlap must hide link time: {out}");
    }

    #[test]
    fn farm_fault_sim_overlap_mode_stays_exact() {
        let out = execute(Command::FaultSim {
            rows: 26,
            cols: 36,
            width: 1,
            depth: 2,
            steps: 6,
            seed: 11,
            rate: 2e-3,
            retries: 6,
            ckpt_every: 1,
            stuck_chip: None,
            farm: true,
            farm_shards: "2".into(),
            farm_grid: None,
            stuck_board: None,
            overlap: true,
        })
        .unwrap();
        assert!(out.contains("overlapped exchange"), "{out}");
        assert!(out.contains("bit-exact"), "{out}");
        assert!(!out.contains("WRONG"), "{out}");
        assert!(!out.contains("gave up"), "{out}");
    }

    #[test]
    fn farm_spa_torus_with_throttled_links() {
        let out = execute(Command::Farm {
            shards: 2,
            engine: "spa".into(),
            width: 1,
            slice_width: 1,
            depth: 2,
            rows: 12,
            cols: 20,
            steps: 4,
            seed: 9,
            model: "hpp".into(),
            periodic: true,
            link_bits: Some(4.0),
            grid: None,
            tier_bits: None,
            overlap: true,
            verify: true,
            checkpoint_dir: None,
            ckpt_every: 1,
            resume: false,
        })
        .unwrap();
        assert!(out.contains("torus"), "{out}");
        assert!(out.contains("verify: bit-exact"), "{out}");
        assert!(!out.contains("+ 0 halo"), "throttled links must cost ticks: {out}");
    }

    #[test]
    fn farm_rejects_bad_configs() {
        let base = Command::Farm {
            shards: 2,
            engine: "wsa".into(),
            width: 1,
            slice_width: 1,
            depth: 1,
            rows: 8,
            cols: 12,
            steps: 2,
            seed: 1,
            model: "hpp".into(),
            periodic: false,
            link_bits: None,
            grid: None,
            tier_bits: None,
            overlap: false,
            verify: false,
            checkpoint_dir: None,
            ckpt_every: 1,
            resume: false,
        };
        let with = |f: &dyn Fn(&mut Command)| {
            let mut c = base.clone();
            f(&mut c);
            execute(c)
        };
        assert!(with(&|c| {
            if let Command::Farm { engine, .. } = c {
                *engine = "dataflow".into();
            }
        })
        .is_err());
        assert!(with(&|c| {
            if let Command::Farm { model, .. } = c {
                *model = "bogus".into();
            }
        })
        .is_err());
        assert!(with(&|c| {
            if let Command::Farm { shards, .. } = c {
                *shards = 99;
            }
        })
        .is_err());
        assert!(with(&|c| {
            if let Command::Farm { link_bits, .. } = c {
                *link_bits = Some(-1.0);
            }
        })
        .is_err());
        assert!(execute(base).is_ok());
    }

    #[test]
    fn farm_checkpoint_flags_parse() {
        let cmd = parse(&argv("farm --checkpoint-dir /tmp/ck --ckpt-every 2 --resume")).unwrap();
        match cmd {
            Command::Farm { checkpoint_dir: Some(d), ckpt_every: 2, resume: true, .. } => {
                assert_eq!(d, "/tmp/ck");
            }
            other => panic!("{other:?}"),
        }
        // Defaults: no persistence.
        assert!(matches!(
            parse(&argv("farm")).unwrap(),
            Command::Farm { checkpoint_dir: None, ckpt_every: 1, resume: false, .. }
        ));
        // Resuming without a store directory is a config error.
        let err = execute(parse(&argv("farm --resume")).unwrap()).unwrap_err();
        assert!(err.0.contains("--checkpoint-dir"), "{}", err.0);
    }

    #[test]
    fn farm_checkpoint_and_resume_roundtrip_is_bit_exact() {
        let dir = std::env::temp_dir()
            .join(format!("lattice-cli-resume-{}", std::process::id()))
            .to_string_lossy()
            .into_owned();
        let _ = std::fs::remove_dir_all(&dir);
        let base = |steps: u64, resume: bool| Command::Farm {
            shards: 3,
            engine: "wsa".into(),
            width: 1,
            slice_width: 1,
            depth: 2,
            rows: 12,
            cols: 27,
            steps,
            seed: 11,
            model: "fhp3".into(),
            periodic: false,
            link_bits: None,
            grid: None,
            tier_bits: None,
            overlap: false,
            verify: true,
            checkpoint_dir: Some(dir.clone()),
            ckpt_every: 1,
            resume,
        };
        // Leg 1 stops at generation 6 of the eventual 10 ("killed").
        let out = execute(base(6, false)).unwrap();
        assert!(out.contains("checkpoint store:"), "{out}");
        // Leg 2 resumes from disk alone and must still verify bit-exact
        // against the uninterrupted 10-generation reference.
        let out = execute(base(10, true)).unwrap();
        assert!(out.contains("resumed:           generation 6 of 10"), "{out}");
        assert!(out.contains("verify: bit-exact vs reference"), "{out}");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn chaos_parses_with_defaults_and_flags() {
        assert!(matches!(
            parse(&argv("chaos")).unwrap(),
            Command::Chaos { storms: 4, rows: 36, cols: 40, steps: 6, seed: 42, .. }
        ));
        match parse(&argv("chaos --storms 2 --seed 7 --io-rate 0.25")).unwrap() {
            Command::Chaos { storms: 2, seed: 7, io_rate, .. } => assert_eq!(io_rate, 0.25),
            other => panic!("{other:?}"),
        }
        assert!(execute(parse(&argv("chaos --rate 1.5")).unwrap()).is_err());
        assert!(execute(parse(&argv("chaos --steps 30")).unwrap()).is_err());
    }

    #[test]
    fn chaos_soak_recovers_every_storm_at_the_pinned_seed() {
        // The CI soak in miniature: same seed derivation, smaller
        // lattice. Deterministic — this either always passes or never.
        let out = execute(Command::Chaos {
            storms: 2,
            rows: 20,
            cols: 22,
            steps: 4,
            seed: 42,
            rate: 2e-3,
            io_rate: 0.1,
            serve: false,
        })
        .unwrap();
        assert!(out.contains("all 2 storm(s) recovered"), "{out}");
    }

    #[test]
    fn sweep_table_pads_and_spills() {
        let t = SweepTable::new(&[
            ("a", 3, Align::Left),
            ("bb", 4, Align::Right),
            ("c", 0, Align::Left),
        ]);
        assert_eq!(t.header(), "a    bb    c\n");
        assert_eq!(t.row(&["x".into(), "9".into(), "end".into()]), "x       9  end\n");
        // A short row spills its last cell across the remaining columns.
        assert_eq!(t.row(&["x".into(), "gave up".into()]), "x    gave up\n");
    }

    #[test]
    fn serve_request_and_bench_parse() {
        match parse(&argv("serve --addr 127.0.0.1:0 --max-live 2 --link-capacity 96")).unwrap() {
            Command::Serve { addr, checkpoint_dir: None, link_capacity: Some(c), max_live: 2 } => {
                assert_eq!(addr, "127.0.0.1:0");
                assert_eq!(c, 96.0);
            }
            other => panic!("{other:?}"),
        }
        assert!(execute(parse(&argv("serve --max-live 0")).unwrap()).is_err());
        assert!(execute(parse(&argv("serve --link-capacity -1")).unwrap()).is_err());
        // `request` demands both halves of the conversation.
        assert!(parse(&argv("request --addr 127.0.0.1:1")).is_err());
        assert!(parse(&argv("request")).is_err());
        match parse(&argv("bench --shards 1,2 --json")).unwrap() {
            Command::Bench { json: true, shards, out: None, .. } => assert_eq!(shards, "1,2"),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn request_drives_a_live_daemon_end_to_end() {
        use crate::serve::{Daemon, DaemonConfig};
        let (addr, handle) = Daemon::spawn(&DaemonConfig::default()).unwrap();
        let addr = addr.to_string();
        let req = |line: &str| {
            execute(Command::Request {
                addr: addr.clone(),
                line: line.into(),
                timeout_secs: 10.0,
                retries: 0,
            })
        };

        // A malformed frame fails locally, before any round trip.
        assert!(req("{nope").is_err());

        let out = req(r#"{"op":"create","session":"t0","spec":{"model":"hpp","rows":12,"cols":24,"shards":2}}"#)
            .unwrap();
        assert!(out.contains(r#""admitted":true"#), "{out}");
        let out = req(r#"{"op":"step","session":"t0","n":3}"#).unwrap();
        assert!(out.contains(r#""time":3"#), "{out}");
        // A streamed stats window comes back as one line per sample.
        let out = req(r#"{"op":"stats","watch":2}"#).unwrap();
        assert_eq!(out.lines().count(), 2, "{out}");
        let out = req(r#"{"op":"shutdown"}"#).unwrap();
        assert!(out.contains(r#""ok":true"#), "{out}");
        handle.join().unwrap().unwrap();
    }

    #[test]
    fn bench_sweeps_the_grid_and_writes_the_artifact() {
        let dir = std::env::temp_dir().join(format!("lattice-bench-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("bench.json").to_string_lossy().into_owned();
        let out = execute(Command::Bench {
            rows: 16,
            cols: 24,
            steps: 4,
            seed: 3,
            depth: 2,
            shards: "1,2".into(),
            fault_rates: "0.02".into(),
            link_bits: 16.0,
            grid: Some((2, 2)),
            tier_bits: Some(8.0),
            json: true,
            out: Some(path.clone()),
            baseline: None,
            tolerance: 0.02,
        })
        .unwrap();
        assert!(out.contains("sites/sec"), "{out}");
        // 2 engines x 2 shard counts x 2 overlap modes, plus the grid
        // legs (2x2 x 2 overlap modes) and the faulted WSA sweep:
        // 1 rate x 2 shard counts x 2 overlap.
        let cells = out.lines().filter(|l| l.starts_with("wsa") || l.starts_with("spa")).count();
        assert_eq!(cells, 14, "{out}");
        assert!(out.contains("2x2"), "{out}");
        let doc = std::fs::read_to_string(&path).unwrap();
        assert!(doc.contains("\"sites_per_sec\""), "{doc}");
        assert!(doc.contains("\"link_utilization\""), "{doc}");
        assert!(doc.contains("\"recovery_cost\""), "{doc}");
        assert!(doc.contains("\"fault_rate\":0.02"), "{doc}");
        // Grid rows carry their shape and both wire widths so the
        // ratchet keys them apart from the columnar 4-shard rows.
        assert!(doc.contains("\"grid_rows\":2"), "{doc}");
        assert!(doc.contains("\"grid_cols\":2"), "{doc}");
        assert!(doc.contains("\"tier_bits\":8"), "{doc}");
        assert!(doc.contains("\"link_bits\":16"), "{doc}");
        assert!(doc.contains("\"results\""), "{doc}");
        assert!(execute(parse(&argv("bench --steps 0")).unwrap()).is_err());
        assert!(execute(parse(&argv("bench --shards 0,2")).unwrap()).is_err());
        assert!(execute(parse(&argv("bench --fault-rates 2.0")).unwrap()).is_err());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn info_banner() {
        let out = execute(Command::Info).unwrap();
        assert!(out.contains("1987"));
    }

    #[test]
    fn request_flags_parse_and_exit_codes_classify() {
        match parse(&argv("request --addr 127.0.0.1:1 --line {} --timeout 2.5 --retries 3"))
            .unwrap()
        {
            Command::Request { timeout_secs, retries, .. } => {
                assert_eq!(timeout_secs, 2.5);
                assert_eq!(retries, 3);
            }
            other => panic!("{other:?}"),
        }
        // Defaults: 30 s deadline, no retries.
        assert!(matches!(
            parse(&argv("request --addr a --line b")).unwrap(),
            Command::Request { retries: 0, .. }
        ));
        assert_eq!(exit_code(&CliError("request: timeout: read timed out".into())), 4);
        assert_eq!(exit_code(&CliError("request: transport: connection refused".into())), 3);
        assert_eq!(exit_code(&CliError("request: daemon error: no such session".into())), 5);
        assert_eq!(exit_code(&CliError("bench: --steps must be ≥ 1".into())), 2);
    }

    #[test]
    fn request_classifies_transport_daemon_and_timeout_failures() {
        use crate::serve::{Daemon, DaemonConfig};
        // Nothing listens on port 1 (tcpmux needs root): connection
        // refused is a transport failure, exit class 3, even with
        // retries.
        let err = execute(Command::Request {
            addr: "127.0.0.1:1".into(),
            line: r#"{"op":"stats","watch":1}"#.into(),
            timeout_secs: 2.0,
            retries: 1,
        })
        .unwrap_err();
        assert_eq!(exit_code(&err), 3, "{err}");

        // A live daemon refusing the request is a daemon error, exit 5,
        // and must NOT be retried into a second refusal round trip.
        let (addr, handle) = Daemon::spawn(&DaemonConfig::default()).unwrap();
        let addr = addr.to_string();
        let err = execute(Command::Request {
            addr: addr.clone(),
            line: r#"{"op":"step","session":"ghost","n":1}"#.into(),
            timeout_secs: 5.0,
            retries: 2,
        })
        .unwrap_err();
        assert!(err.0.starts_with("request: daemon error:"), "{err}");
        assert_eq!(exit_code(&err), 5);
        execute(Command::Request {
            addr,
            line: r#"{"op":"shutdown"}"#.into(),
            timeout_secs: 5.0,
            retries: 0,
        })
        .unwrap();
        handle.join().unwrap().unwrap();
    }

    #[test]
    fn serve_chaos_storm_holds_every_invariant_at_the_pinned_seed() {
        // The CI `chaos-serve` job in miniature: one storm, the same
        // derivation. Deterministic weather — always passes or never.
        let out = execute(Command::Chaos {
            storms: 1,
            rows: 36,
            cols: 40,
            steps: 3,
            seed: 42,
            rate: 0.05,
            io_rate: 0.1,
            serve: true,
        })
        .unwrap();
        assert!(out.contains("all 1 storm(s) held"), "{out}");
        // ≥ 3 daemon kill+restart cycles per storm (acceptance floor),
        // and the weather must actually fire: a soak whose ladder
        // counters are all zero holds conservation vacuously.
        let row = out.lines().find(|l| l.trim_start().starts_with('0')).unwrap();
        let restarts: u64 = row.split_whitespace().nth(2).unwrap().parse().unwrap();
        assert!(restarts >= 3, "storm must survive ≥ 3 restarts: {row}");
        let detected: u64 = row.split_whitespace().nth(4).unwrap().parse().unwrap();
        assert!(detected >= 1, "no hardware fault fired during the storm: {row}");
    }

    #[test]
    fn bench_baseline_ratchet_passes_itself_and_catches_regressions() {
        let dir = std::env::temp_dir().join(format!("lattice-ratchet-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("baseline.json").to_string_lossy().into_owned();
        let bench_at = |baseline: Option<String>, link_bits: f64| {
            execute(Command::Bench {
                rows: 16,
                cols: 24,
                steps: 4,
                seed: 3,
                depth: 2,
                shards: "1,2".into(),
                fault_rates: "0.02".into(),
                link_bits,
                grid: None,
                tier_bits: None,
                json: baseline.is_none(),
                out: Some(path.clone()),
                baseline,
                tolerance: 0.02,
            })
        };
        let bench = |baseline: Option<String>| bench_at(baseline, 16.0);
        // Generate the artifact, then ratchet the identical run
        // against it: deterministic ticks, so it must pass.
        bench(None).unwrap();
        let out = bench(Some(path.clone())).unwrap();
        assert!(out.contains("ratchet: 12 configuration(s) within 2%"), "{out}");
        // The wire width is part of the configuration key: the same
        // sweep on a wider wire shares nothing with the baseline, so
        // the ratchet refuses the comparison instead of mis-ratcheting
        // faster link-bound numbers against slower ones.
        let err = bench_at(Some(path.clone()), 32.0).unwrap_err();
        assert!(err.0.contains("shares no configuration"), "{err}");
        // Baselines written before the per-row column still compare:
        // rows inherit the artifact's top-level link_bits.
        let doc = std::fs::read_to_string(&path).unwrap();
        assert!(doc.contains("\"link_bits\":16"), "rows must carry the wire width: {doc}");
        std::fs::write(&path, doc.replace(",\"link_bits\":16,", ",")).unwrap();
        let out = bench(Some(path.clone())).unwrap();
        assert!(out.contains("ratchet: 12 configuration(s) within 2%"), "{out}");
        // Inflate the baseline: every current number now "regresses".
        let doc = std::fs::read_to_string(&path).unwrap();
        std::fs::write(&path, doc.replace("\"sites_per_sec\":", "\"sites_per_sec\":9e99,\"was\":"))
            .unwrap();
        let err = bench(Some(path.clone())).unwrap_err();
        assert!(err.0.contains("regressed beyond"), "{err}");
        // Cost axes ratchet the other way: shrink the baseline's link
        // utilization and the identical run now reads as a regression.
        bench(None).unwrap();
        let doc = std::fs::read_to_string(&path).unwrap();
        std::fs::write(
            &path,
            doc.replace("\"link_utilization\":", "\"link_utilization\":0.0,\"was\":"),
        )
        .unwrap();
        let err = bench(Some(path.clone())).unwrap_err();
        assert!(err.0.contains("link_utilization"), "{err}");
        // A baseline from a disjoint sweep is refused, not vacuously passed.
        std::fs::write(
            &path,
            r#"{"results":[{"engine":"wsa","shards":64,"overlap":false,"sites_per_sec":1.0}]}"#,
        )
        .unwrap();
        let err = bench(Some(path.clone())).unwrap_err();
        assert!(err.0.contains("shares no configuration"), "{err}");
        std::fs::remove_dir_all(&dir).ok();
    }
}
