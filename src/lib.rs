//! Umbrella crate for the `lattice-engines` workspace.
//!
//! Re-exports the public API of every member crate so that examples,
//! integration tests, and downstream users can depend on a single crate.
//!
//! See `DESIGN.md` for the system inventory and `EXPERIMENTS.md` for the
//! paper-reproduction index.

pub mod cli;

pub use lattice_core as core;
pub use lattice_embed as embed;
pub use lattice_engines_sim as sim;
pub use lattice_farm as farm;
pub use lattice_gas as gas;
pub use lattice_image as image;
pub use lattice_pebbles as pebbles;
pub use lattice_serve as serve;
pub use lattice_vlsi as vlsi;
